#!/usr/bin/env bash
# Tier-1 verify: hermetic offline build + full test suite.
#
# Fails on any compiler warning (RUSTFLAGS -D warnings) and never
# touches the network (CARGO_NET_OFFLINE): the workspace must build
# from path-local crates alone.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

cargo build --release --workspace --all-targets
cargo test -q --workspace

echo "verify: OK"
