#!/usr/bin/env bash
# Tier-1 verify: hermetic offline build + full test suite.
#
# Fails on any compiler warning (RUSTFLAGS -D warnings) and never
# touches the network (CARGO_NET_OFFLINE): the workspace must build
# from path-local crates alone.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

cargo build --release --workspace --all-targets
cargo test -q --workspace

# End-to-end telemetry: a fully-traced incast's exported artifacts must
# reconcile exactly with the simulator's ground truth.
cargo test -q -p tfc-repro --test telemetry

# Six-way scheduler equivalence: reference heap, timing wheel, wheel
# with batched dispatch, and the sharded backend at 1/2/4 threads must
# export byte-identical artifacts — including the open-loop streaming
# scenario, where flow retirement recycles ids mid-run and same-seed
# re-runs (heap and sharded@4) must reproduce the whole bundle byte
# for byte, and the ECMP+churn fat-tree scenario, where multipath spray
# and selection-time reroute must not leak the backend or thread count
# into a single artifact byte. (Also part of the workspace suite above;
# run explicitly so a failure names the gate.)
cargo test -q -p tfc-repro --test sched_equivalence

# Multipath regression: ECMP spray, counted no-route drops, and
# link-down reroute onto surviving equal-cost members.
cargo test -q -p tfc-repro --test ecmp

# tfc-trace must summarize a smoke-run artifact bundle from the files
# alone (exported into a scratch dir so committed results/ stay put).
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- --smoke
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- "$TRACE_DIR/smoke-incast" >/dev/null

# Chaos smoke: fixed-seed link-flap + host-stall runs export fault
# telemetry, and tfc-trace renders the recovery summary (fault windows,
# goodput dip, token reclamation) from the artifacts alone.
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- --chaos-smoke
# (plain grep, not -q: -q closes the pipe at first match and the
# still-printing tracer dies of SIGPIPE under pipefail)
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- "$TRACE_DIR/smoke-chaos-flap" | grep "tokens reclaimed" >/dev/null
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- "$TRACE_DIR/smoke-chaos-stall" | grep "fault windows:" >/dev/null

# ECMP smoke: a fixed-seed multipath reroute run (k=4 fat-tree, edge
# uplink flap) exports artifacts, and tfc-trace renders the per-port
# spray balance plus the selection-time reroute records from them.
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- --ecmp-smoke | tee "$TRACE_DIR/ecmpsmoke.out" >/dev/null
grep "per-port spray balance" "$TRACE_DIR/ecmpsmoke.out" >/dev/null
grep "reroutes (selection-time ECMP repair):" "$TRACE_DIR/ecmpsmoke.out" >/dev/null

# Zero-overhead tracing gate: TraceConfig::Off must record nothing and
# leave artifacts byte-identical to a traced run's non-span files.
cargo test -q -p tfc-repro --test spans

# Run-diff self-test: two same-seed full-trace runs must compare clean,
# and a perturbed seed must yield a first-divergence report.
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- --diff-smoke | tee "$TRACE_DIR/diffsmoke.out"
grep "no divergence" "$TRACE_DIR/diffsmoke.out" >/dev/null
grep "first divergence" "$TRACE_DIR/diffsmoke.out" >/dev/null

# Scale-bench smoke: the quick suite must run all six scheduling
# variants (heap, wheel, wheel+batching, sharded at 1/2/4 threads) to
# identical outcomes — including the fat-tree and ECMP-multipath
# scenarios — and write a well-formed BENCH_scale.json (schema key,
# host-parallelism manifest, non-zero events/sec — the binary itself
# asserts positivity and outcome identity).
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-scale-bench -- --quick >/dev/null
test -s "$TRACE_DIR/bench/BENCH_scale.json"
grep '"schema": "tfc-bench-scale/v6"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"available_parallelism"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"active_threads"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"heap_events_per_sec"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"wheel_nobatch_events_per_sec"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"wheel_events_per_sec"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"batch_speedup"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"sharded4_events_per_sec"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"sharded_speedup"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"name": "fat_tree"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"name": "fat_tree_multipath"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null

# Sharded-determinism gate: two same-seed 4-thread sharded chaos
# leaf-spine runs (full telemetry, profiling off) must export
# byte-identical artifact bundles under tfc-trace diff.
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-scale-bench -- --sharded-det >/dev/null
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- diff \
  "$TRACE_DIR/sharded-det-a" "$TRACE_DIR/sharded-det-b" | grep "no divergence" >/dev/null

# Streaming smoke: tfc-million --quick validates its sketches against
# an exact oracle, completes 100k open-loop flows with bounded slab and
# arena high-water marks (asserted by the binary), and merges a
# well-formed "million" block into BENCH_scale.json.
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-million -- --quick >/dev/null
grep '"million"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"flows_per_sec"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"slab_capacity"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"oracle_classes_checked"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
# The scale-bench rows must survive the merge (and vice versa: a
# re-run of scale-bench preserves the million block).
grep '"schema": "tfc-bench-scale/v6"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null
grep '"batch_speedup"' "$TRACE_DIR/bench/BENCH_scale.json" >/dev/null

# tfc-trace --flows: the per-class retired table must render from the
# v2 flows.json alone (self-test), and the streaming run's artifacts
# must summarize cleanly.
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- --flows-smoke >/dev/null
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- --flows "$TRACE_DIR/million-quick" | grep "retired flows:" >/dev/null

# Tracing-overhead smoke: flow-sampled tracing on the leaf-spine run
# must stay within 10% of the untraced events/sec (ratio <= 1.10).
OVERHEAD="$(grep -m1 '"trace_overhead"' "$TRACE_DIR/bench/BENCH_scale.json" | sed 's/[^0-9.]*//g')"
awk -v o="$OVERHEAD" 'BEGIN { exit !(o > 0 && o <= 1.10) }' \
  || { echo "verify: trace overhead $OVERHEAD exceeds 1.10" >&2; exit 1; }

echo "verify: OK"
