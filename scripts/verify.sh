#!/usr/bin/env bash
# Tier-1 verify: hermetic offline build + full test suite.
#
# Fails on any compiler warning (RUSTFLAGS -D warnings) and never
# touches the network (CARGO_NET_OFFLINE): the workspace must build
# from path-local crates alone.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

cargo build --release --workspace --all-targets
cargo test -q --workspace

# End-to-end telemetry: a fully-traced incast's exported artifacts must
# reconcile exactly with the simulator's ground truth.
cargo test -q -p tfc-repro --test telemetry

# tfc-trace must summarize a smoke-run artifact bundle from the files
# alone (exported into a scratch dir so committed results/ stay put).
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- --smoke
TFC_RESULTS_DIR="$TRACE_DIR" cargo run --release -q -p tfc-bench --bin tfc-trace -- "$TRACE_DIR/smoke-incast" >/dev/null

echo "verify: OK"
