//! Umbrella crate for the TFC reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use
//! a single dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the system inventory.
//!
//! # Examples
//!
//! Run two TFC flows over a shared bottleneck:
//!
//! ```
//! use tfc_repro::simnet::app::NullApp;
//! use tfc_repro::simnet::endpoint::FlowSpec;
//! use tfc_repro::simnet::sim::{SimConfig, Simulator};
//! use tfc_repro::simnet::topology::star;
//! use tfc_repro::simnet::units::{Bandwidth, Dur};
//! use tfc_repro::tfc::config::TfcSwitchConfig;
//! use tfc_repro::tfc::{TfcStack, TfcSwitchPolicy};
//!
//! let (topo, hosts, _) = star(3, Bandwidth::gbps(1), Dur::micros(1));
//! let net = topo.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
//! let mut sim = Simulator::new(
//!     net,
//!     Box::new(TfcStack::default()),
//!     NullApp,
//!     SimConfig::default(),
//! );
//! let flow = sim
//!     .core_mut()
//!     .start_flow(FlowSpec::sized(hosts[0], hosts[2], 100_000));
//! sim.run();
//! assert_eq!(sim.core().flow(flow).delivered, 100_000);
//! assert_eq!(sim.core().total_drops(), 0);
//! ```

pub use experiments;
pub use metrics;
pub use simnet;
pub use tfc;
pub use transport;
pub use workloads;
