//! Incast shoot-out: the partition/aggregate pattern that motivates the
//! paper (§1, §6.1.2). A receiver requests 256 KB blocks from many
//! senders at once; TCP collapses, DCTCP survives longer, TFC stays
//! loss-free at full goodput.
//!
//! Run with `cargo run --release --example incast [senders]`.

use experiments::incast::{run, IncastExpConfig};
use experiments::Proto;

fn main() {
    let senders: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let rounds = 5;
    println!("incast: {senders} senders x 256 KB blocks x {rounds} rounds, 1 Gbps fabric");
    println!("proto  | goodput   | max timeouts/block | drops | max queue");
    for proto in Proto::ALL {
        let r = run(&IncastExpConfig::testbed(proto, senders, rounds));
        println!(
            "{:<6} | {:>7.0} Mbps | {:>18.2} | {:>5} | {:>6} KB",
            proto.label(),
            r.goodput_bps / 1e6,
            r.max_timeouts_per_block,
            r.drops,
            r.max_queue_bytes / 1024,
        );
    }
    println!();
    println!("(paper Fig. 12: TFC flat at 800-900 Mbps; TCP collapses past ~10 senders)");
}
