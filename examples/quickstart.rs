//! Quickstart: build a tiny TFC network, run two flows, and inspect the
//! paper's headline properties (full utilisation, near-zero queueing,
//! zero loss).
//!
//! Run with `cargo run --release --example quickstart`.

use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};

fn main() {
    // Three hosts on one switch; two of them send 2 MB each to the third.
    let (topo, hosts, switch) = star(3, Bandwidth::gbps(1), Dur::micros(1));
    let net = topo.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig::default(),
    );

    let receiver = hosts[2];
    let flows: Vec<_> = hosts[..2]
        .iter()
        .map(|&src| {
            sim.core_mut().start_flow(FlowSpec {
                src,
                dst: receiver,
                bytes: Some(2_000_000),
                weight: 1,
            })
        })
        .collect();

    sim.run();

    println!("TFC quickstart: 2 x 2 MB over a shared 1 Gbps bottleneck");
    for flow in flows {
        let st = sim.core().flow(flow);
        let fct = st
            .receiver_done_at
            .expect("flow completed")
            .since(st.started_at);
        let mbps = st.delivered as f64 * 8.0 / fct.as_secs_f64() / 1e6;
        println!(
            "  flow {flow:?}: {} bytes in {fct} ({mbps:.0} Mbps, {} timeouts, {} retransmits)",
            st.delivered, st.timeouts, st.retransmits
        );
    }
    let port = sim.core().route_of(switch, receiver).expect("route");
    let stats = sim.core().port_stats(switch, port);
    let (max_q, drops) = (stats.max_queue_bytes, stats.drops);
    println!("  bottleneck: max queue {max_q} bytes, {drops} drops");
    assert_eq!(drops, 0, "TFC must not drop packets");
}
