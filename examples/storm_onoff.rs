//! Storm-style on-off flows (§2, §4.2): connections stay open but
//! transmit intermittently. The switch's effective-flow count must track
//! only the *active* flows, so silent flows donate their bandwidth
//! instantly — the paper's answer to D3-style SYN/FIN counting.
//!
//! Run with `cargo run --release --example storm_onoff`.

use simnet::sim::{SimConfig, Simulator};
use simnet::topology::testbed;
use simnet::units::{Dur, Time};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};
use workloads::{OnOffApp, OnOffFlow};

fn main() {
    let (topo, hosts, switches) = testbed(Dur::nanos(500));
    let cfg = TfcSwitchConfig {
        trace: true,
        ..Default::default()
    };
    let net = topo.build(TfcSwitchPolicy::factory(cfg));

    // Two executors exchange messages continuously; three more wake for
    // 30 ms bursts, one after another — an on-off pattern like Storm's.
    let step = Dur::millis(30).as_nanos();
    let horizon = 8 * step;
    let h6 = hosts[5];
    let mut flows = vec![
        OnOffFlow {
            src: hosts[3],
            dst: h6,
            active: vec![(0, horizon)],
        },
        OnOffFlow {
            src: hosts[4],
            dst: h6,
            active: vec![(0, horizon)],
        },
    ];
    for i in 0..3u64 {
        flows.push(OnOffFlow {
            src: hosts[0],
            dst: h6,
            active: vec![((i + 1) * step, (i + 2) * step)],
        });
    }
    let app = OnOffApp::new(flows, 64 * 1024).with_meters(Dur::millis(5));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        app,
        SimConfig {
            end: Some(Time(horizon)),
            ..Default::default()
        },
    );
    sim.run();

    // Print the measured effective-flow count per 30 ms phase.
    let nf2 = switches[2];
    let port = sim.core().route_of(nf2, h6).expect("route");
    let key = format!("tfc.s{}.p{}.ne", nf2.0, port);
    let ne = sim.core().trace().get(&key).expect("ne trace");
    println!("phase | active flows | measured Ne (switch)");
    for w in 0..8u64 {
        let vals: Vec<f64> = ne
            .window(w * step, (w + 1) * step)
            .map(|(_, v)| v)
            .collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let active = 2 + u64::from((1..=3).contains(&w));
        println!("{w:>5} | {active:>12} | {mean:>8.2}");
    }
    println!();
    println!("The silent flows vanish from Ne within one slot — their");
    println!("bandwidth flows back to the active executors (paper Fig. 7).");
}
