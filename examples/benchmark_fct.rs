//! Realistic data-center mix (§6.1.2): query incasts, short messages,
//! and heavy-tailed background flows, comparing flow completion times
//! across TFC, DCTCP, and TCP on the 9-host testbed.
//!
//! Run with `cargo run --release --example benchmark_fct`.

use experiments::benchmark::{run, BenchExpConfig};
use experiments::Proto;

fn main() {
    println!("web-search-style mix on the Fig. 4 testbed (2 KB query fan-ins,");
    println!("50 KB - 1 MB short messages, heavy-tailed background flows)\n");
    for proto in Proto::ALL {
        let r = run(&BenchExpConfig::testbed(proto));
        let q = r.query.expect("query flows completed");
        println!(
            "{:<6} query FCT: mean {:>8.1} µs | p99 {:>9.1} µs | p99.99 {:>10.1} µs | drops {}",
            proto.label(),
            q.mean_us,
            q.p99_us,
            q.p9999_us,
            r.drops,
        );
        let bins = r
            .background_bins
            .iter()
            .map(|(b, us)| format!("{}={:.1}ms", b.label(), us / 1e3))
            .collect::<Vec<_>>()
            .join(" ");
        println!("       background 99.9th: {bins}");
    }
    println!();
    println!("(paper Fig. 13: TFC's mean and tail query FCT sit far below");
    println!(" DCTCP's; TCP's 99.99th percentile hits the 200 ms RTO)");
}
