//! Two extensions in one demo: the weighted-allocation policy (§4.1's
//! "any allocation policies") and a MapReduce-style all-to-all shuffle.
//!
//! First, two competing flows with weights 1 and 3 split the bottleneck
//! 1:3 with zero loss. Then a 4×4 shuffle runs over TFC and TCP and
//! reports job completion time.
//!
//! Run with `cargo run --release --example weighted_shuffle`.

use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};
use transport::TcpStack;
use workloads::{ShuffleApp, ShuffleConfig};

fn weighted_demo() {
    let (t, hosts, _) = star(3, Bandwidth::gbps(1), Dur::micros(20));
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            end: Some(Time(Dur::millis(100).as_nanos())),
            ..Default::default()
        },
    );
    let f1 = sim
        .core_mut()
        .start_flow(FlowSpec::open_ended(hosts[0], hosts[2]).with_weight(1));
    let f2 = sim
        .core_mut()
        .start_flow(FlowSpec::open_ended(hosts[1], hosts[2]).with_weight(3));
    sim.core_mut().push_data(f1, 64 << 20);
    sim.core_mut().push_data(f2, 64 << 20);
    sim.run();
    let d1 = sim.core().flow(f1).delivered;
    let d2 = sim.core().flow(f2).delivered;
    println!("weighted allocation (weights 1 : 3) over one bottleneck:");
    println!(
        "  flow A: {:>4.0} Mbps   flow B: {:>4.0} Mbps   ratio {:.2}   drops {}",
        d1 as f64 * 8.0 / 0.1 / 1e6,
        d2 as f64 * 8.0 / 0.1 / 1e6,
        d2 as f64 / d1 as f64,
        sim.core().total_drops(),
    );
}

fn shuffle_demo() {
    println!("\n4 mappers -> 4 reducers, 1 MB partitions (16 MB shuffle):");
    for (name, tfc) in [("TFC", true), ("TCP", false)] {
        let (t, hosts, _) = star(8, Bandwidth::gbps(1), Dur::micros(1));
        let net = if tfc {
            t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()))
        } else {
            t.build(|_, _| Box::new(simnet::policy::DropTail))
        };
        let app = ShuffleApp::new(ShuffleConfig {
            mappers: hosts[..4].to_vec(),
            reducers: hosts[4..].to_vec(),
            partition_bytes: 1_000_000,
            per_mapper_parallelism: 2,
        });
        let stack: Box<dyn simnet::ProtocolStack> = if tfc {
            Box::new(TfcStack::default())
        } else {
            Box::new(TcpStack::default())
        };
        let mut sim = Simulator::new(net, stack, app, SimConfig::default());
        sim.run();
        let done = sim.app().finished_at().expect("shuffle finished");
        println!(
            "  {name}: job completed in {done} ({:.0} Mbps aggregate, {} drops)",
            sim.app().goodput_bps() / 1e6,
            sim.core().total_drops(),
        );
    }
}

fn main() {
    weighted_demo();
    shuffle_demo();
}
