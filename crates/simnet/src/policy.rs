//! Switch port policies.
//!
//! A policy observes and may rewrite every packet crossing a switch.
//! Drop-tail and ECN marking live here; the TFC port engine implements
//! the same trait in the `tfc` crate.

use crate::packet::{Flags, Packet};
use crate::units::{Bandwidth, Dur, Time};

/// Effects a policy can request from its switch.
#[derive(Debug, Default)]
pub struct PolicyFx {
    /// Timers to arm: fire after `Dur` carrying the token.
    pub timers: Vec<(Dur, u64)>,
    /// Tokens of previously armed timers to cancel. Best-effort, like
    /// [`crate::endpoint::Effects::cancels`]: unknown tokens are
    /// ignored, stale-generation checks in the policy remain the source
    /// of truth, and cancels apply before this effect set's `timers`.
    pub cancels: Vec<u64>,
    /// Packets to (re)inject into the switch's egress path; each will be
    /// routed and enqueued as if it had just arrived, but without another
    /// ingress-hook pass.
    pub inject: Vec<Packet>,
    /// Named trace samples `(series, value)` recorded at the current
    /// simulation time.
    pub traces: Vec<(String, f64)>,
    /// TFC per-port gauge samples emitted at slot close. The simulator
    /// stamps the time and forwards them to the telemetry layer (which
    /// discards them unless gauge collection is enabled).
    pub slot_samples: Vec<telemetry::PortSlotSample>,
    /// Token/window acquire waits `(flow, nanos)` reported when the TFC
    /// delay arbiter releases a held ACK. Routed into the lifecycle-span
    /// tracker (which discards them unless span tracing is enabled).
    pub token_waits: Vec<(u64, u64)>,
}

impl PolicyFx {
    /// Creates an empty effect sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a policy timer.
    pub fn timer(&mut self, after: Dur, token: u64) {
        self.timers.push((after, token));
    }

    /// Cancels the pending policy timer carrying `token`, if any.
    pub fn cancel_timer(&mut self, token: u64) {
        self.cancels.push(token);
    }

    /// Re-injects a packet into the egress path.
    pub fn inject(&mut self, pkt: Packet) {
        self.inject.push(pkt);
    }

    /// Records a trace sample.
    pub fn trace(&mut self, series: impl Into<String>, value: f64) {
        self.traces.push((series.into(), value));
    }

    /// Emits a TFC slot gauge sample.
    pub fn slot_sample(&mut self, sample: telemetry::PortSlotSample) {
        self.slot_samples.push(sample);
    }

    /// Reports how long the delay arbiter held `flow`'s ACK before
    /// releasing it (the token/window acquire wait).
    pub fn token_wait(&mut self, flow: u64, waited_ns: u64) {
        self.token_waits.push((flow, waited_ns));
    }
}

/// Outcome of the ingress hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressVerdict {
    /// Continue normal forwarding.
    Forward,
    /// The policy consumed the packet (e.g. TFC delay queue); it may be
    /// re-injected later via [`PolicyFx::inject`].
    Consume,
}

/// Outcome of the egress hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressVerdict {
    /// Enqueue the (possibly rewritten) packet.
    Enqueue,
    /// Drop the packet (policy-initiated, e.g. an AQM).
    Drop,
}

/// Per-switch packet-processing policy.
///
/// Hooks are invoked by the switch core:
///
/// * [`on_ingress`](SwitchPolicy::on_ingress) when a packet arrives on a
///   port, before routing — this is where TFC's delay arbiter lives,
///   because an RMA ACK arrives on exactly the port its data stream
///   egresses from;
/// * [`on_egress`](SwitchPolicy::on_egress) after routing, before the
///   packet joins the egress FIFO — this is where arrival accounting,
///   window stamping, and ECN marking happen;
/// * [`on_timer`](SwitchPolicy::on_timer) when a policy timer fires.
pub trait SwitchPolicy: Send {
    /// Inspects a packet arriving on `in_port`.
    fn on_ingress(
        &mut self,
        in_port: usize,
        pkt: &mut Packet,
        now: Time,
        fx: &mut PolicyFx,
    ) -> IngressVerdict {
        let _ = (in_port, pkt, now, fx);
        IngressVerdict::Forward
    }

    /// Inspects a packet about to join the FIFO of `out_port`, whose
    /// current backlog is `queue_bytes`.
    fn on_egress(
        &mut self,
        out_port: usize,
        pkt: &mut Packet,
        queue_bytes: u64,
        now: Time,
        fx: &mut PolicyFx,
    ) -> EgressVerdict {
        let _ = (out_port, pkt, queue_bytes, now, fx);
        EgressVerdict::Enqueue
    }

    /// Handles a previously armed policy timer.
    fn on_timer(&mut self, token: u64, now: Time, fx: &mut PolicyFx) {
        let _ = (token, now, fx);
    }

    /// Wipes the policy's soft state for `port`, as after a control-plane
    /// reboot (the `PolicyReset` fault). `rate` is the port's current
    /// line rate, so a policy that sizes its state off the link (TFC's
    /// token engine) rebuilds against post-renegotiation reality.
    ///
    /// Stateless policies need not override this.
    fn reset_port(&mut self, port: usize, rate: Bandwidth, now: Time, fx: &mut PolicyFx) {
        let _ = (port, rate, now, fx);
    }
}

/// Plain drop-tail: no marking, no rewriting. Overflow drops are handled
/// by the switch core's capacity check.
#[derive(Debug, Default, Clone, Copy)]
pub struct DropTail;

impl SwitchPolicy for DropTail {}

/// ECN threshold marking, the switch half of DCTCP.
///
/// Marks Congestion Experienced on ECN-capable packets when the egress
/// queue exceeds `k_bytes` at enqueue time (instantaneous queue, as DCTCP
/// prescribes; the paper's testbed used K = 32 KB at 1 Gbps).
#[derive(Debug, Clone, Copy)]
pub struct EcnMark {
    /// Marking threshold in bytes of queue backlog.
    pub k_bytes: u64,
}

impl EcnMark {
    /// Creates a marker with threshold `k_bytes`.
    pub fn new(k_bytes: u64) -> Self {
        Self { k_bytes }
    }
}

impl SwitchPolicy for EcnMark {
    fn on_egress(
        &mut self,
        _out_port: usize,
        pkt: &mut Packet,
        queue_bytes: u64,
        _now: Time,
        _fx: &mut PolicyFx,
    ) -> EgressVerdict {
        if queue_bytes > self.k_bytes && pkt.flags.contains(Flags::ECT) {
            pkt.flags.set(Flags::CE);
        }
        EgressVerdict::Enqueue
    }
}

/// Deterministic periodic loss: drops every `period`-th data packet at
/// egress (1-indexed). A test utility for exercising loss recovery —
/// not a model of real loss.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicLoss {
    /// Drop every `period`-th data packet (`0` disables).
    pub period: u64,
    count: u64,
}

impl PeriodicLoss {
    /// Creates a dropper with the given period.
    pub fn new(period: u64) -> Self {
        Self { period, count: 0 }
    }
}

impl SwitchPolicy for PeriodicLoss {
    fn on_egress(
        &mut self,
        _out_port: usize,
        pkt: &mut Packet,
        _queue_bytes: u64,
        _now: Time,
        _fx: &mut PolicyFx,
    ) -> EgressVerdict {
        if self.period == 0 || !pkt.is_data() {
            return EgressVerdict::Enqueue;
        }
        self.count += 1;
        if self.count.is_multiple_of(self.period) {
            EgressVerdict::Drop
        } else {
            EgressVerdict::Enqueue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId};

    fn data_pkt(ect: bool) -> Packet {
        let mut p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1460);
        if ect {
            p.flags.set(Flags::ECT);
        }
        p
    }

    #[test]
    fn drop_tail_never_interferes() {
        let mut p = DropTail;
        let mut pkt = data_pkt(false);
        let mut fx = PolicyFx::new();
        assert_eq!(
            p.on_ingress(0, &mut pkt, Time::ZERO, &mut fx),
            IngressVerdict::Forward
        );
        assert_eq!(
            p.on_egress(0, &mut pkt, 1_000_000, Time::ZERO, &mut fx),
            EgressVerdict::Enqueue
        );
        assert!(!pkt.flags.contains(Flags::CE));
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut p = EcnMark::new(32_000);
        let mut fx = PolicyFx::new();
        let mut below = data_pkt(true);
        p.on_egress(0, &mut below, 32_000, Time::ZERO, &mut fx);
        assert!(!below.flags.contains(Flags::CE));
        let mut above = data_pkt(true);
        p.on_egress(0, &mut above, 32_001, Time::ZERO, &mut fx);
        assert!(above.flags.contains(Flags::CE));
    }

    #[test]
    fn ecn_ignores_non_ect() {
        let mut p = EcnMark::new(0);
        let mut fx = PolicyFx::new();
        let mut pkt = data_pkt(false);
        p.on_egress(0, &mut pkt, 1_000_000, Time::ZERO, &mut fx);
        assert!(!pkt.flags.contains(Flags::CE));
    }

    #[test]
    fn periodic_loss_drops_every_nth_data_packet() {
        let mut p = PeriodicLoss::new(3);
        let mut fx = PolicyFx::new();
        let mut verdicts = Vec::new();
        for _ in 0..6 {
            let mut pkt = data_pkt(false);
            verdicts.push(p.on_egress(0, &mut pkt, 0, Time::ZERO, &mut fx));
        }
        use EgressVerdict::{Drop, Enqueue};
        assert_eq!(
            verdicts,
            vec![Enqueue, Enqueue, Drop, Enqueue, Enqueue, Drop]
        );
        // ACKs are never dropped.
        let mut ack = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 0);
        assert_eq!(p.on_egress(0, &mut ack, 0, Time::ZERO, &mut fx), Enqueue);
    }

    #[test]
    fn policy_fx_collects() {
        let mut fx = PolicyFx::new();
        fx.timer(Dur::micros(1), 9);
        fx.trace("q", 3.0);
        fx.inject(data_pkt(false));
        assert_eq!(fx.timers.len(), 1);
        assert_eq!(fx.traces.len(), 1);
        assert_eq!(fx.inject.len(), 1);
    }
}
