//! Bounded-memory flow retirement.
//!
//! The closed-loop experiment drivers keep every [`crate::sim::FlowState`]
//! alive for the whole run and post-process the dense tables afterwards.
//! That is fine for a few thousand flows and hopeless for millions: the
//! streaming workload engine instead *retires* a flow the moment both
//! sides are done (receiver holds the byte stream, sender saw its FIN
//! acknowledged). Retirement folds the flow's scalars — FCT, bytes,
//! retransmit count, slowdown — into per-class [`QuantileSketch`]es,
//! tears down the endpoint and timer state, and quarantines the flow id
//! for a grace period before the slab hands it out again.
//!
//! The quarantine matters because packets carry a bare [`FlowId`]
//! without a generation: a straggler of the dead flow (a duplicated or
//! reordered packet still crossing the fabric) must drain before the id
//! can name a new tenant. Both endpoints being done bounds straggler
//! lifetime to roughly one RTT plus residual queueing, so the default
//! grace of 2 ms is conservative for data-center scales. Host-side
//! lookups already treat unknown flows as stale packets and consume
//! them, so a quarantined id is harmless by construction.
//!
//! Memory is O(peak active flows): the flow slab, the per-flow timer
//! table, and the endpoint tables all recycle slots, the sketches are
//! fixed-size, and the id quarantine holds at most
//! `arrival_rate x reuse_after` entries.

use metrics::{FctCollector, FlowRecord, QuantileSketch};
use telemetry::export::{RetiredClass, RetiredFlows};

use crate::sim::FlowState;
use crate::units::{Bandwidth, Dur};

/// Scale factor for slowdown samples: a sketch clamps values below 1.0
/// into its zero bucket, and slowdowns hug 1.0 from above, so they are
/// recorded in thousandths to keep the relative-error guarantee.
pub const SLOWDOWN_SCALE: f64 = 1_000.0;

/// Configuration of the retirement pipeline (off unless
/// [`crate::sim::SimConfig::retire`] is set).
#[derive(Debug, Clone)]
pub struct RetireConfig {
    /// Relative-error bound of the per-class sketches.
    pub alpha: f64,
    /// Quarantine before a retired flow id may be reused.
    pub reuse_after: Dur,
    /// Base round-trip time of the fabric, the latency term of the
    /// ideal FCT that slowdown normalises against.
    pub base_rtt: Dur,
    /// Bottleneck line rate, the serialisation term of the ideal FCT.
    pub line_rate: Bandwidth,
    /// Class names, indexed by the `class` tag set via
    /// [`crate::sim::SimCore::set_flow_class`] (class 0 is the default
    /// tag; untagged flows land there).
    pub classes: Vec<String>,
    /// Additionally keep exact per-class [`FlowRecord`]s. Unbounded
    /// memory — only for small oracle runs validating the sketches.
    pub keep_exact: bool,
}

impl Default for RetireConfig {
    fn default() -> Self {
        Self {
            alpha: 0.01,
            reuse_after: Dur::millis(2),
            base_rtt: Dur::micros(100),
            line_rate: Bandwidth::gbps(10),
            classes: vec!["all".to_string()],
            keep_exact: false,
        }
    }
}

impl RetireConfig {
    /// Ideal completion time of a `bytes`-sized flow: one base RTT plus
    /// serialisation at the configured line rate. The lower bound the
    /// slowdown quantiles are measured against.
    pub fn ideal_fct_ns(&self, bytes: u64) -> u64 {
        self.base_rtt.as_nanos() + self.line_rate.serialize(bytes).as_nanos()
    }
}

/// Streaming statistics of one flow class.
#[derive(Debug)]
pub struct ClassStats {
    /// Class name (from [`RetireConfig::classes`]).
    pub name: String,
    /// Flows retired into this class.
    pub count: u64,
    /// FCT samples in nanoseconds (start to receiver-done).
    pub fct_ns: QuantileSketch,
    /// Transferred bytes per flow.
    pub bytes: QuantileSketch,
    /// Retransmitted packets per flow.
    pub retransmits: QuantileSketch,
    /// Slowdown (FCT over ideal FCT) in thousandths; see
    /// [`SLOWDOWN_SCALE`].
    pub slowdown_milli: QuantileSketch,
    /// Exact records, kept only under [`RetireConfig::keep_exact`].
    pub exact: FctCollector,
}

impl ClassStats {
    fn new(name: String, alpha: f64) -> Self {
        Self {
            name,
            count: 0,
            fct_ns: QuantileSketch::new(alpha),
            bytes: QuantileSketch::new(alpha),
            retransmits: QuantileSketch::new(alpha),
            slowdown_milli: QuantileSketch::new(alpha),
            exact: FctCollector::new(),
        }
    }
}

/// Folds completed flows into per-class sketches as the simulator frees
/// their state. Owned by [`crate::sim::SimCore`] when retirement is on.
#[derive(Debug)]
pub struct FlowRetirer {
    cfg: RetireConfig,
    classes: Vec<ClassStats>,
    total: u64,
}

impl FlowRetirer {
    /// Builds a retirer with one stats bucket per configured class.
    pub fn new(cfg: RetireConfig) -> Self {
        let classes = cfg
            .classes
            .iter()
            .map(|n| ClassStats::new(n.clone(), cfg.alpha))
            .collect();
        Self {
            cfg,
            classes,
            total: 0,
        }
    }

    /// The configuration the retirer was built with.
    pub fn config(&self) -> &RetireConfig {
        &self.cfg
    }

    /// Total flows retired.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-class statistics, indexed by class tag.
    pub fn classes(&self) -> &[ClassStats] {
        &self.classes
    }

    /// Statistics of one class tag, if any flow carried it.
    pub fn class(&self, class: u8) -> Option<&ClassStats> {
        self.classes.get(class as usize)
    }

    /// Folds a finished flow's scalars into its class bucket. Called by
    /// the simulator with the state it is about to free.
    pub fn retire(&mut self, state: &FlowState) {
        let class = state.class as usize;
        let alpha = self.cfg.alpha;
        while self.classes.len() <= class {
            let name = format!("class{}", self.classes.len());
            self.classes.push(ClassStats::new(name, alpha));
        }
        let done = state
            .receiver_done_at
            .expect("retired flow has receiver-done time");
        let fct_ns = done.since(state.started_at).as_nanos();
        let bytes = state.spec.bytes.unwrap_or(state.delivered);
        let slowdown = fct_ns as f64 / self.cfg.ideal_fct_ns(bytes).max(1) as f64;
        let c = &mut self.classes[class];
        c.count += 1;
        c.fct_ns.record(fct_ns as f64);
        c.bytes.record(bytes as f64);
        c.retransmits.record(state.retransmits as f64);
        c.slowdown_milli.record(slowdown * SLOWDOWN_SCALE);
        if self.cfg.keep_exact {
            c.exact.record(FlowRecord {
                bytes,
                start_ns: state.started_at.nanos(),
                end_ns: done.nanos(),
            });
        }
        self.total += 1;
    }

    /// Snapshot in the exporter's shape, with the flow-slab high-water
    /// marks the caller reads off the slab itself.
    pub fn to_export(&self, slab_capacity: u64, slab_peak: u64) -> RetiredFlows {
        RetiredFlows {
            alpha: self.cfg.alpha,
            total: self.total,
            slab_capacity,
            slab_peak,
            classes: self
                .classes
                .iter()
                .enumerate()
                .map(|(i, c)| RetiredClass {
                    class: i as u8,
                    name: c.name.clone(),
                    count: c.count,
                    fct_ns: c.fct_ns.clone(),
                    bytes: c.bytes.clone(),
                    retransmits: c.retransmits.clone(),
                    slowdown_milli: c.slowdown_milli.clone(),
                })
                .collect(),
        }
    }
}
