//! The simulation scheduler: a hierarchical timing wheel behind the
//! classic `schedule`/`pop` queue API, with cancellable timer handles.
//!
//! Discrete-event simulation at 10 Gbps / 360-host scale produces dense
//! timestamp distributions (packet serialisation is sub-microsecond)
//! plus a long tail of far-future timers (RTOs, chaos faults). A binary
//! heap pays O(log n) per operation, and n is inflated by every stale
//! retransmission timer still waiting to expire. The calendar-queue /
//! timing-wheel family is the textbook fix: O(1) amortized insert and
//! pop for near-term events, an overflow tier for the far future, and
//! lazy deletion so rescheduled timers stop churning the structure.
//!
//! # Layout
//!
//! Time is bucketed at 256 ns granularity ([`GRAN_BITS`]): one *tick*
//! is `at.nanos() >> 8`. Four levels of 64 slots each cover, per level,
//! ~16.4 µs, ~1.05 ms, ~67 ms, and ~4.3 s of ticks ahead of the cursor;
//! anything further out (or crossing the top-level page boundary) waits
//! in a min-heap overflow tier until the cursor gets close enough to
//! place it precisely. Expiring a higher-level slot *cascades*: its
//! entries re-place into strictly lower levels, so each entry moves at
//! most [`LEVELS`] times over its lifetime.
//!
//! # Determinism
//!
//! Every entry carries a global insertion sequence number and the wheel
//! pops in exact `(time, seq)` order: level-0 buckets hold a single
//! tick and are sorted on drain, ticks are visited in order, and the
//! cursor cascades coarser buckets *before* draining a same-start
//! level-0 bucket so co-scheduled entries always merge first. The pop
//! sequence is therefore identical to the reference heap's — which is
//! what the byte-identical artifact equivalence tests assert.
//!
//! # Cancellation
//!
//! [`EventQueue::schedule_cancellable`] returns a generation-checked
//! [`TimerHandle`]; [`EventQueue::cancel`] marks the entry dead in a
//! slab and the queue discards it lazily on pop, for O(1) cancellation
//! without disturbing bucket order. Both backends share the slab, so a
//! cancelled timer is invisible under either scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::event::Event;
use crate::units::Time;

/// Log2 of the tick granularity in nanoseconds (256 ns per tick).
pub const GRAN_BITS: u32 = 8;
/// Log2 of the slot count per wheel level.
pub const LEVEL_BITS: u32 = 6;
/// Number of wheel levels before the overflow tier takes over.
pub const LEVELS: usize = 4;

const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Ticks spanned by the whole wheel; beyond this, entries overflow.
const HORIZON_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// Which scheduler backend a simulation drives its event loop with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel: O(1) amortized schedule/pop.
    #[default]
    Wheel,
    /// The pre-refactor global binary heap: O(log n) schedule/pop.
    /// Kept as the reference implementation for equivalence tests and
    /// as the baseline in the scale benchmarks.
    RefHeap,
    /// Per-shard timing wheels partitioned by node (switch plus its
    /// hosts), drained window-by-window under conservative lookahead
    /// with `threads` worker threads. Pop order is still the exact
    /// global `(time, seq)` order, so artifacts stay byte-identical to
    /// the single-threaded wheel.
    Sharded {
        /// Worker threads (also the shard count); clamped to at least 1.
        threads: usize,
    },
}

/// A cancellable-timer handle returned by
/// [`EventQueue::schedule_cancellable`]. Generation-checked: a handle
/// goes stale once its timer fires or is cancelled, and stale handles
/// are rejected by [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    gen: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Free,
    Armed,
    Cancelled,
}

#[derive(Debug, Clone, Copy)]
struct TimerSlot {
    gen: u32,
    state: SlotState,
}

/// An event with its activation time, tie-breaking sequence number,
/// and (for cancellable timers) slab handle.
#[derive(Debug, Clone)]
struct Entry {
    at: Time,
    seq: u64,
    event: Event,
    handle: Option<TimerHandle>,
}

impl Entry {
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

/// Min-order wrapper for [`BinaryHeap`] (which is a max-heap).
#[derive(Debug)]
struct HeapEntry(Entry);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so the earliest (time, seq) pops first; ties break
        // by insertion order for determinism.
        other.0.key().cmp(&self.0.key())
    }
}

/// The hierarchical timing wheel.
#[derive(Debug)]
struct Wheel {
    /// Tick of the most recent pop; buckets behind it are empty.
    now_tick: u64,
    /// The tick currently being drained, sorted *descending* by
    /// `(at, seq)` so pops come off the cheap end.
    current: Vec<Entry>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// `LEVELS * SLOTS` FIFO buckets, level-major.
    buckets: Vec<Vec<Entry>>,
    /// Entries beyond the wheel horizon, min-ordered by `(at, seq)`.
    overflow: BinaryHeap<HeapEntry>,
    /// Live entries across `current`, `buckets`, and `overflow`.
    len: usize,
    /// Recycled bucket storage for cascades, to avoid re-allocating.
    cascade_buf: Vec<Entry>,
}

impl Wheel {
    fn new() -> Self {
        Wheel {
            now_tick: 0,
            current: Vec::new(),
            occupied: [0; LEVELS],
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            len: 0,
            cascade_buf: Vec::new(),
        }
    }

    fn push(&mut self, e: Entry) {
        self.len += 1;
        let tick = e.at.nanos() >> GRAN_BITS;
        if tick <= self.now_tick {
            // Lands on (or before) the tick being drained: merge into
            // the live run, keeping it sorted descending by key.
            let key = e.key();
            let pos = self.current.partition_point(|x| x.key() > key);
            self.current.insert(pos, e);
            return;
        }
        self.place_future(e, tick);
    }

    /// Places an entry with `tick > now_tick` into a bucket or the
    /// overflow tier.
    fn place_future(&mut self, e: Entry, tick: u64) {
        let x = tick ^ self.now_tick;
        debug_assert!(x != 0);
        let level = ((63 - x.leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(HeapEntry(e));
            return;
        }
        let slot = ((tick >> (level as u32 * LEVEL_BITS)) & SLOT_MASK) as usize;
        self.buckets[level * SLOTS + slot].push(e);
        self.occupied[level] |= 1 << slot;
    }

    /// Re-places an entry during a cascade or overflow migration, when
    /// `current` is empty. Same-tick entries go to the level-0 bucket
    /// under the cursor so they drain (and sort) together with any
    /// bucket-mates instead of bypassing them.
    fn place_internal(&mut self, e: Entry) {
        let tick = e.at.nanos() >> GRAN_BITS;
        debug_assert!(tick >= self.now_tick);
        if tick == self.now_tick {
            let slot = (tick & SLOT_MASK) as usize;
            self.buckets[slot].push(e);
            self.occupied[0] |= 1 << slot;
            return;
        }
        self.place_future(e, tick);
    }

    /// First occupied slot at `level` at or after the cursor, with the
    /// absolute start tick of the range it covers. Slots behind the
    /// cursor are empty by construction (they were drained before the
    /// cursor passed them), so one masked scan per level suffices.
    fn candidate(&self, level: usize) -> Option<(usize, u64)> {
        let shift = level as u32 * LEVEL_BITS;
        let cur = (self.now_tick >> shift) & SLOT_MASK;
        debug_assert_eq!(
            self.occupied[level] & !(!0u64 << cur),
            0,
            "occupied slot behind the cursor at level {level}"
        );
        let occ = self.occupied[level] & (!0u64 << cur);
        if occ == 0 {
            return None;
        }
        let slot = occ.trailing_zeros() as u64;
        let base = (self.now_tick >> shift) & !SLOT_MASK;
        Some(((slot as usize), (base | slot) << shift))
    }

    fn pop(&mut self) -> Option<Entry> {
        loop {
            if let Some(e) = self.current.pop() {
                self.len -= 1;
                return Some(e);
            }
            if self.len == 0 {
                return None;
            }
            // Pick the earliest bucket. Scanning coarse-to-fine with a
            // strict `<` makes ties prefer the coarser level, so a
            // same-start cascade merges into level 0 before the drain.
            let mut best: Option<(u64, usize, usize)> = None;
            for level in (0..LEVELS).rev() {
                if let Some((slot, start)) = self.candidate(level) {
                    if best.map_or(true, |(bs, _, _)| start < bs) {
                        best = Some((start, level, slot));
                    }
                }
            }
            let Some((start, level, slot)) = best else {
                // Wheel empty: the overflow minimum is the global
                // minimum, so return it directly instead of routing it
                // through a bucket it would leave on the very next
                // iteration. The cursor jumps to its tick and the
                // remaining overflow entries sharing the new top-level
                // page migrate into the wheel: an entry at exactly the
                // wheel horizon lands in a bucket here rather than
                // ping-ponging through the heap on later pops.
                // Same-tick page-mates join `current` (the live run, as
                // `push` would) so a subsequent push at this tick cannot
                // jump ahead of them.
                let e = self
                    .overflow
                    .pop()
                    .expect("non-empty scheduler has a candidate")
                    .0;
                let oft = e.at.nanos() >> GRAN_BITS;
                debug_assert!(oft >= self.now_tick);
                self.now_tick = oft;
                while let Some(h) = self.overflow.peek() {
                    let t = h.0.at.nanos() >> GRAN_BITS;
                    if (t ^ self.now_tick) >> HORIZON_BITS != 0 {
                        break;
                    }
                    let m = self.overflow.pop().expect("peeked").0;
                    if t == self.now_tick {
                        // Heap pops in (at, seq) order, so these arrive
                        // sorted ascending; current is sorted descending.
                        let key = m.key();
                        let pos = self.current.partition_point(|x| x.key() > key);
                        self.current.insert(pos, m);
                    } else {
                        self.place_future(m, t);
                    }
                }
                self.len -= 1;
                return Some(e);
            };
            debug_assert!(start >= self.now_tick);
            self.now_tick = start;
            let idx = level * SLOTS + slot;
            self.occupied[level] &= !(1u64 << slot);
            if level == 0 {
                // Swap keeps the drained bucket's allocation for reuse.
                std::mem::swap(&mut self.buckets[idx], &mut self.current);
                self.current
                    .sort_unstable_by(|a, b| b.key().cmp(&a.key()));
                continue;
            }
            // Cascade: entries re-place at strictly lower levels.
            let mut tmp = std::mem::take(&mut self.cascade_buf);
            std::mem::swap(&mut tmp, &mut self.buckets[idx]);
            for e in tmp.drain(..) {
                self.place_internal(e);
            }
            self.cascade_buf = tmp;
        }
    }

    fn peek_key(&self) -> Option<(Time, u64)> {
        let mut best = self.current.last().map(Entry::key);
        for level in 0..LEVELS {
            if let Some((slot, _)) = self.candidate(level) {
                for e in &self.buckets[level * SLOTS + slot] {
                    if best.map_or(true, |b| e.key() < b) {
                        best = Some(e.key());
                    }
                }
            }
        }
        if let Some(h) = self.overflow.peek() {
            if best.map_or(true, |b| h.0.key() < b) {
                best = Some(h.0.key());
            }
        }
        best
    }

    /// Pops the earliest entry with `at < end`, or `None` when no such
    /// entry remains — the sharded backend's window drain. Unlike
    /// [`pop`](Self::pop), the cursor never advances past the window:
    /// buckets whose range starts beyond `end` stay untouched, so a
    /// later push cannot land "behind" the cursor and degenerate into
    /// a sorted insert on the live run.
    fn pop_before(&mut self, end: u64) -> Option<Entry> {
        let end_tick = end >> GRAN_BITS;
        loop {
            // The live run's tail is the exact minimum over the whole
            // wheel (buckets sit at strictly later ticks): below `end`
            // it pops, at or beyond it the window is dry.
            match self.current.last() {
                Some(e) if e.at.nanos() < end => {
                    self.len -= 1;
                    return self.current.pop();
                }
                Some(_) => return None,
                None => {}
            }
            if self.len == 0 {
                return None;
            }
            let mut best: Option<(u64, usize, usize)> = None;
            for level in (0..LEVELS).rev() {
                if let Some((slot, start)) = self.candidate(level) {
                    if best.map_or(true, |(bs, _, _)| start < bs) {
                        best = Some((start, level, slot));
                    }
                }
            }
            let Some((start, level, slot)) = best else {
                // Only the overflow tier remains. Migrate its head page
                // into the wheel when it may intersect the window;
                // entries land in `current`/buckets and the loop
                // re-examines them (the head itself may still be at or
                // beyond a mid-tick `end`).
                let oft = self.overflow.peek().expect("len > 0").0.at.nanos() >> GRAN_BITS;
                if oft > end_tick {
                    return None;
                }
                debug_assert!(oft >= self.now_tick);
                self.now_tick = oft;
                while let Some(h) = self.overflow.peek() {
                    let t = h.0.at.nanos() >> GRAN_BITS;
                    if (t ^ self.now_tick) >> HORIZON_BITS != 0 {
                        break;
                    }
                    let m = self.overflow.pop().expect("peeked").0;
                    if t == self.now_tick {
                        let key = m.key();
                        let pos = self.current.partition_point(|x| x.key() > key);
                        self.current.insert(pos, m);
                    } else {
                        self.place_future(m, t);
                    }
                }
                continue;
            };
            if start > end_tick {
                // Everything left starts beyond the window; leave the
                // cursor where it is.
                return None;
            }
            debug_assert!(start >= self.now_tick);
            self.now_tick = start;
            let idx = level * SLOTS + slot;
            self.occupied[level] &= !(1u64 << slot);
            if level == 0 {
                std::mem::swap(&mut self.buckets[idx], &mut self.current);
                self.current
                    .sort_unstable_by(|a, b| b.key().cmp(&a.key()));
                continue;
            }
            let mut tmp = std::mem::take(&mut self.cascade_buf);
            std::mem::swap(&mut tmp, &mut self.buckets[idx]);
            for e in tmp.drain(..) {
                self.place_internal(e);
            }
            self.cascade_buf = tmp;
        }
    }

    /// Cheap lower bound on the earliest pending time: exact when the
    /// live run or only the overflow tier is non-empty, tick-granular
    /// otherwise (coarse levels round down to their slot's start). The
    /// sharded window planner needs a conservative bound, never an
    /// overestimate; an open window that turns out to start early just
    /// drains nothing and re-plans off the tightened bound.
    fn next_time_lb(&self) -> Option<u64> {
        if let Some(e) = self.current.last() {
            return Some(e.at.nanos());
        }
        if self.len == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            if let Some((_, start)) = self.candidate(level) {
                let t = start << GRAN_BITS;
                if best.map_or(true, |b| t < b) {
                    best = Some(t);
                }
            }
        }
        if let Some(h) = self.overflow.peek() {
            let t = h.0.at.nanos();
            if best.map_or(true, |b| t < b) {
                best = Some(t);
            }
        }
        best
    }
}

/// Per-shard counters maintained by the sharded backend, exported into
/// `counters.json` under the wall-clock profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardCounters {
    /// Entries routed into this shard's wheel.
    pub pushes: u64,
    /// Entries this shard surrendered to merged ready windows.
    pub drained: u64,
}

/// One partition of the sharded backend: a private timing wheel plus a
/// cached lower bound on its earliest pending time, so window planning
/// never pays the wheel's bucket-scan peek.
#[derive(Debug)]
struct Shard {
    wheel: Wheel,
    /// Conservative bound on the earliest `at` (ns) among entries in
    /// `wheel`: exact after a push, tick-granular after a window drain
    /// that left only coarse buckets. Never an overestimate; `None`
    /// when the wheel is empty.
    next_at: Option<u64>,
    stats: ShardCounters,
}

impl Shard {
    fn new() -> Self {
        Shard {
            wheel: Wheel::new(),
            next_at: None,
            stats: ShardCounters::default(),
        }
    }

    fn push(&mut self, e: Entry) {
        let at = e.at.nanos();
        self.next_at = Some(self.next_at.map_or(at, |m| m.min(at)));
        self.stats.pushes += 1;
        self.wheel.push(e);
    }

    /// Moves every entry with `at < end` out of the wheel into `out`
    /// (in shard-local `(at, seq)` order) and refreshes `next_at` from
    /// what remains. The wheel's cursor stops inside the window, so
    /// entries at or beyond `end` are never popped and re-inserted —
    /// re-insertion after an overshoot would drag the cursor to the
    /// shard's next (possibly far-future) entry and turn every later
    /// push into a sorted insert on the live run.
    fn drain_window(&mut self, end: u64, out: &mut Vec<Entry>) {
        while let Some(e) = self.wheel.pop_before(end) {
            self.stats.drained += 1;
            out.push(e);
        }
        self.next_at = self.wheel.next_time_lb();
    }
}

/// The sharded backend: per-shard wheels behind a merged ready heap.
///
/// The fabric is partitioned by node (`shard_of`); the link propagation
/// delay across the cut is the conservative lookahead `L`. When the
/// ready heap runs dry, the backend opens a window `[t0, t0 + L)` at the
/// earliest pending time `t0` and every shard extracts its slice of the
/// window concurrently (disjoint `&mut` chunks under `std::thread::scope`
/// — the epoch barrier is the scope join). The slices merge into one
/// binary heap keyed by the global `(time, seq)` pair, which is unique
/// per entry, so the merged pop order is independent of both thread
/// interleaving and shard assignment: byte-identical to the
/// single-threaded wheel.
///
/// Entries scheduled *into* the open window (handlers firing at
/// `now + serialisation`, cross-shard arrivals at `now + link delay`)
/// land directly in the ready heap; the lookahead guarantees nothing in
/// any wheel precedes them. Everything later is routed to its shard's
/// wheel for a future window.
#[derive(Debug)]
struct Sharded {
    shards: Vec<Shard>,
    /// `shard_of[node]` — shard index per node id. Unknown nodes and
    /// events with no node affinity go to shard 0.
    shard_of: Vec<u32>,
    /// Worker threads used per window drain (clamped to shard count).
    threads: usize,
    /// Conservative lookahead: window width in nanoseconds.
    lookahead: u64,
    /// Merged current window, min-ordered by `(at, seq)`. Invariant:
    /// every entry in every shard wheel has `at >= window_end`, and
    /// every ready entry has `at < window_end`.
    ready: BinaryHeap<HeapEntry>,
    /// Exclusive end of the current window (ns).
    window_end: u64,
    /// Windows that extracted at least one entry.
    windows: u64,
    /// Reused merge buffer.
    scratch: Vec<Entry>,
    /// Reused per-worker drain buffers.
    bufs: Vec<Vec<Entry>>,
}

/// Default lookahead before a shard map is configured: one wheel tick,
/// which makes the unconfigured single shard behave like the plain
/// wheel's tick-at-a-time drain.
const DEFAULT_LOOKAHEAD: u64 = 1 << GRAN_BITS;

impl Sharded {
    fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Sharded {
            shards: vec![Shard::new()],
            shard_of: Vec::new(),
            threads,
            lookahead: DEFAULT_LOOKAHEAD,
            ready: BinaryHeap::new(),
            window_end: 0,
            windows: 0,
            scratch: Vec::new(),
            bufs: vec![Vec::new(); threads],
        }
    }

    fn configure(&mut self, shard_of: Vec<u32>, shards: usize, lookahead_ns: u64) {
        debug_assert!(
            self.ready.is_empty() && self.shards.iter().all(|s| s.next_at.is_none()),
            "shard map must be configured before any event is scheduled"
        );
        debug_assert!(shard_of.iter().all(|&s| (s as usize) < shards.max(1)));
        self.shards = (0..shards.max(1)).map(|_| Shard::new()).collect();
        self.shard_of = shard_of;
        self.lookahead = lookahead_ns.max(1);
    }

    fn shard_idx(&self, ev: &Event) -> usize {
        ev.node_affinity()
            .and_then(|n| self.shard_of.get(n.0 as usize))
            .map_or(0, |&s| s as usize)
    }

    fn push(&mut self, e: Entry) {
        if e.at.nanos() < self.window_end {
            // Inside the open window: by the lookahead invariant no
            // wheel entry precedes it, so it joins the ready heap at
            // its (time, seq) slot.
            self.ready.push(HeapEntry(e));
            return;
        }
        let idx = self.shard_idx(&e.event);
        self.shards[idx].push(e);
    }

    /// Opens windows until the ready heap holds the next events: plans
    /// `[t0, t0 + lookahead)` off the per-shard `next_at` bounds,
    /// drains participating shards (in parallel when configured), and
    /// heapifies the union. A window planned off a tick-granular lower
    /// bound can come up dry; the loop then re-plans off the bounds the
    /// drain just tightened, which strictly advance, so it terminates.
    /// No-op when every wheel is empty.
    fn refill(&mut self) {
        while self.ready.is_empty() {
            let Some(t0) = self.shards.iter().filter_map(|s| s.next_at).min() else {
                return;
            };
            let end = t0
                .saturating_add(self.lookahead)
                .max(t0.saturating_add(1));
            self.window_end = end;
            // Thread the drain across shards that actually intersect
            // the window; spawning for idle shards is pure overhead.
            let active = self
                .shards
                .iter()
                .filter(|s| s.next_at.is_some_and(|a| a < end))
                .count();
            let workers = self.threads.min(active).max(1);
            if workers == 1 {
                let scratch = &mut self.scratch;
                for sh in &mut self.shards {
                    if sh.next_at.is_some_and(|a| a < end) {
                        sh.drain_window(end, scratch);
                    }
                }
            } else {
                let chunk = self.shards.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    for (shards, buf) in self.shards.chunks_mut(chunk).zip(self.bufs.iter_mut()) {
                        scope.spawn(move || {
                            for sh in shards {
                                if sh.next_at.is_some_and(|a| a < end) {
                                    sh.drain_window(end, buf);
                                }
                            }
                        });
                    }
                });
                for buf in &mut self.bufs {
                    self.scratch.append(buf);
                }
            }
            if self.scratch.is_empty() {
                continue;
            }
            self.windows += 1;
            // Rebuild the heap in place, reusing its allocation;
            // `(at, seq)` keys are globally unique, so the heap order —
            // and therefore the pop sequence — does not depend on the
            // order the worker buffers were appended in.
            let mut entries = std::mem::take(&mut self.ready).into_vec();
            entries.extend(self.scratch.drain(..).map(HeapEntry));
            self.ready = BinaryHeap::from(entries);
        }
    }

    fn pop(&mut self) -> Option<Entry> {
        if self.ready.is_empty() {
            self.refill();
        }
        self.ready.pop().map(|e| e.0)
    }

    fn peek_key(&self) -> Option<(Time, u64)> {
        if let Some(h) = self.ready.peek() {
            return Some(h.0.key());
        }
        // Between windows the caches hold a conservative bound on the
        // earliest wheel time (exact straight after a push); the seq
        // component is unknown but only the time is observable through
        // this path, and no simulation decision depends on it.
        self.shards
            .iter()
            .filter_map(|s| s.next_at)
            .min()
            .map(|t| (Time(t), 0))
    }
}

#[derive(Debug)]
enum Backend {
    Wheel(Wheel),
    Heap(BinaryHeap<HeapEntry>),
    Sharded(Box<Sharded>),
}

impl Backend {
    fn push(&mut self, e: Entry) {
        match self {
            Backend::Wheel(w) => w.push(e),
            Backend::Heap(h) => h.push(HeapEntry(e)),
            Backend::Sharded(s) => s.push(e),
        }
    }

    fn pop(&mut self) -> Option<Entry> {
        match self {
            Backend::Wheel(w) => w.pop(),
            Backend::Heap(h) => h.pop().map(|e| e.0),
            Backend::Sharded(s) => s.pop(),
        }
    }

    fn peek_key(&self) -> Option<(Time, u64)> {
        match self {
            Backend::Wheel(w) => w.peek_key(),
            Backend::Heap(h) => h.peek().map(|e| e.0.key()),
            Backend::Sharded(s) => s.peek_key(),
        }
    }

    /// O(1) peek at the next entry *if it is immediately available* —
    /// no bucket cascades, no scans. For the wheel that means the live
    /// same-tick run (`current`); `None` says the next entry (if any)
    /// first needs queue maintenance, not that the queue is empty. The
    /// heap's top is always immediate.
    fn peek_head(&self) -> Option<&Entry> {
        match self {
            Backend::Wheel(w) => w.current.last(),
            Backend::Heap(h) => h.peek().map(|e| &e.0),
            // The ready heap's top is the global head while a window is
            // open; between windows the next entry needs a refill first.
            Backend::Sharded(s) => s.ready.peek().map(|e| &e.0),
        }
    }
}

/// A deterministic min-queue of timestamped events.
///
/// Events popped at equal timestamps come out in insertion order, which
/// makes every simulation run bit-reproducible for a given seed — under
/// either backend, since both respect the same `(time, seq)` total
/// order.
///
/// # Examples
///
/// ```
/// use tfc_simnet::event::{Event, EventQueue};
/// use tfc_simnet::units::Time;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time(20), Event::AppTimer { token: 2 });
/// q.schedule(Time(10), Event::AppTimer { token: 1 });
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, Time(10));
/// matches!(ev, Event::AppTimer { token: 1 });
/// ```
///
/// Cancellable timers are discarded lazily:
///
/// ```
/// use tfc_simnet::event::{Event, EventQueue};
/// use tfc_simnet::units::Time;
///
/// let mut q = EventQueue::new();
/// let h = q.schedule_cancellable(Time(10), Event::AppTimer { token: 1 });
/// q.schedule(Time(20), Event::AppTimer { token: 2 });
/// assert!(q.cancel(h));
/// assert!(!q.cancel(h)); // stale handle
/// let (t, _) = q.pop().unwrap();
/// assert_eq!(t, Time(20));
/// ```
#[derive(Debug)]
pub struct EventQueue {
    backend: Backend,
    kind: SchedulerKind,
    next_seq: u64,
    slots: Vec<TimerSlot>,
    free: Vec<u32>,
    live: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue on the default (timing-wheel) backend.
    pub fn new() -> Self {
        Self::with_kind(SchedulerKind::default())
    }

    /// Creates an empty queue on the given backend.
    pub fn with_kind(kind: SchedulerKind) -> Self {
        let backend = match kind {
            SchedulerKind::Wheel => Backend::Wheel(Wheel::new()),
            SchedulerKind::RefHeap => Backend::Heap(BinaryHeap::new()),
            SchedulerKind::Sharded { threads } => {
                Backend::Sharded(Box::new(Sharded::new(threads)))
            }
        };
        EventQueue {
            backend,
            kind,
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Installs the shard map for the sharded backend: `shard_of[node]`
    /// names each node's shard (of `shards` total) and `lookahead_ns`
    /// is the conservative window width — the minimum link propagation
    /// delay across the shard cut. Must be called before any event is
    /// scheduled; a no-op on the other backends.
    pub fn configure_shards(&mut self, shard_of: Vec<u32>, shards: usize, lookahead_ns: u64) {
        if let Backend::Sharded(s) = &mut self.backend {
            debug_assert_eq!(self.live, 0, "configure_shards on a non-empty queue");
            s.configure(shard_of, shards, lookahead_ns);
        }
    }

    /// Per-shard queue counters `(windows opened, per-shard stats)` for
    /// the sharded backend; `None` on the other backends.
    pub fn shard_stats(&self) -> Option<(u64, Vec<ShardCounters>)> {
        match &self.backend {
            Backend::Sharded(s) => {
                Some((s.windows, s.shards.iter().map(|sh| sh.stats).collect()))
            }
            _ => None,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: Time, event: Event) {
        self.push(at, event, None);
    }

    /// Schedules `event` at `at` and returns a handle that can cancel
    /// it before it fires.
    pub fn schedule_cancellable(&mut self, at: Time, event: Event) -> TimerHandle {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(TimerSlot {
                    gen: 0,
                    state: SlotState::Free,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let s = &mut self.slots[slot as usize];
        debug_assert_eq!(s.state, SlotState::Free);
        s.state = SlotState::Armed;
        let handle = TimerHandle { slot, gen: s.gen };
        self.push(at, event, Some(handle));
        handle
    }

    /// Cancels a pending cancellable event. Returns `false` for stale
    /// handles (already fired, or already cancelled). The entry is
    /// discarded lazily when the queue reaches it.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let Some(s) = self.slots.get_mut(handle.slot as usize) else {
            return false;
        };
        if s.gen != handle.gen || s.state != SlotState::Armed {
            return false;
        }
        s.state = SlotState::Cancelled;
        self.live -= 1;
        true
    }

    fn push(&mut self, at: Time, event: Event, handle: Option<TimerHandle>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.backend.push(Entry {
            at,
            seq,
            event,
            handle,
        });
    }

    /// Pops the earliest live event, or `None` when empty. Cancelled
    /// entries are reaped (their handle slots recycled) transparently.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        loop {
            let e = self.backend.pop()?;
            if let Some(h) = e.handle {
                let s = &mut self.slots[h.slot as usize];
                debug_assert_eq!(s.gen, h.gen);
                let cancelled = s.state == SlotState::Cancelled;
                s.state = SlotState::Free;
                s.gen = s.gen.wrapping_add(1);
                self.free.push(h.slot);
                if cancelled {
                    continue;
                }
            }
            self.live -= 1;
            return Some((e.at, e.event));
        }
    }

    /// Pops the next event only when it is immediately at hand *and*
    /// `pred` accepts it — the dispatch loop's same-tick batch
    /// lookahead. Costs one O(1) peek when it declines.
    ///
    /// "Immediately at hand" is backend-dependent: the heap's top
    /// always is, while the wheel only offers the live same-tick run,
    /// so `None` may simply mean the next event needs bucket
    /// maintenance first. Callers must treat `None` as "no batch",
    /// never "queue empty". Since a declined event stays put at its
    /// `(time, seq)` key, pop order is unaffected either way; batching
    /// opportunities within one tick are never missed, because a tick's
    /// run shares one bucket. Lazily-cancelled entries at the head are
    /// reaped here the same way [`pop`](Self::pop) reaps them.
    pub fn pop_if(&mut self, pred: impl Fn(Time, &Event) -> bool) -> Option<(Time, Event)> {
        loop {
            let head = self.backend.peek_head()?;
            let cancelled = head.handle.is_some_and(|h| {
                let s = &self.slots[h.slot as usize];
                debug_assert_eq!(s.gen, h.gen);
                s.state == SlotState::Cancelled
            });
            if !cancelled && !pred(head.at, &head.event) {
                return None;
            }
            let e = self.backend.pop().expect("peeked entry pops");
            if let Some(h) = e.handle {
                let s = &mut self.slots[h.slot as usize];
                s.state = SlotState::Free;
                s.gen = s.gen.wrapping_add(1);
                self.free.push(h.slot);
                if cancelled {
                    continue;
                }
            }
            self.live -= 1;
            return Some((e.at, e.event));
        }
    }

    /// Time of the earliest pending entry. Lazy deletion means a
    /// cancelled-but-unreaped entry may be reported here; `pop` never
    /// returns it.
    pub fn peek_time(&self) -> Option<Time> {
        self.backend.peek_key().map(|(t, _)| t)
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::{cases, vec_u64};
    use rng::Rng;

    const KINDS: [SchedulerKind; 4] = [
        SchedulerKind::Wheel,
        SchedulerKind::RefHeap,
        SchedulerKind::Sharded { threads: 1 },
        SchedulerKind::Sharded { threads: 2 },
    ];

    fn token_of(ev: &Event) -> u64 {
        match ev {
            Event::AppTimer { token } => *token,
            _ => panic!("unexpected event"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(Time(30), Event::AppTimer { token: 3 });
            q.schedule(Time(10), Event::AppTimer { token: 1 });
            q.schedule(Time(20), Event::AppTimer { token: 2 });
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| token_of(&e))
                .collect();
            assert_eq!(order, vec![1, 2, 3], "{kind:?}");
        }
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..100 {
                q.schedule(Time(5), Event::AppTimer { token: i });
            }
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| token_of(&e))
                .collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn peek_matches_pop() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.peek_time(), None);
            q.schedule(Time(7), Event::AppTimer { token: 0 });
            assert_eq!(q.peek_time(), Some(Time(7)), "{kind:?}");
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn total_order_is_respected() {
        cases(128, |_case, rng| {
            let times = vec_u64(rng, 1..200, 0..1_000);
            for kind in KINDS {
                let mut q = EventQueue::with_kind(kind);
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(Time(t), Event::AppTimer { token: i as u64 });
                }
                let mut last = Time(0);
                let mut popped = 0;
                while let Some((t, _)) = q.pop() {
                    assert!(t >= last, "popped {t:?} after {last:?} for {times:?}");
                    last = t;
                    popped += 1;
                }
                assert_eq!(popped, times.len());
            }
        });
    }

    #[test]
    fn stable_for_equal_timestamps() {
        cases(128, |_case, rng| {
            let n = rng.gen_range(1..100usize);
            for kind in KINDS {
                let mut q = EventQueue::with_kind(kind);
                for i in 0..n {
                    q.schedule(Time(42), Event::AppTimer { token: i as u64 });
                }
                let mut expect = 0u64;
                while let Some((_, ev)) = q.pop() {
                    assert_eq!(token_of(&ev), expect, "{kind:?}, n = {n}");
                    expect += 1;
                }
            }
        });
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        // The wheel must honour entries scheduled mid-drain at the tick
        // currently being popped, and entries far past the horizon.
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(Time(100), Event::AppTimer { token: 0 });
            q.schedule(Time(100), Event::AppTimer { token: 1 });
            q.schedule(Time(1 << 40), Event::AppTimer { token: 9 });
            let (t, ev) = q.pop().unwrap();
            assert_eq!((t, token_of(&ev)), (Time(100), 0));
            // Same tick as the in-flight drain.
            q.schedule(Time(150), Event::AppTimer { token: 2 });
            // Next tick boundary and a far-future entry.
            q.schedule(Time(256), Event::AppTimer { token: 3 });
            q.schedule(Time(1 << 41), Event::AppTimer { token: 10 });
            let order: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop())
                .map(|(t, e)| (t, token_of(&e)))
                .collect();
            assert_eq!(
                order,
                vec![
                    (Time(100), 1),
                    (Time(150), 2),
                    (Time(256), 3),
                    (Time(1 << 40), 9),
                    (Time(1 << 41), 10),
                ],
                "{kind:?}"
            );
        }
    }

    #[test]
    fn cancel_discards_before_fire() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let h = q.schedule_cancellable(Time(10), Event::AppTimer { token: 1 });
            q.schedule(Time(20), Event::AppTimer { token: 2 });
            assert_eq!(q.len(), 2);
            assert!(q.cancel(h));
            assert_eq!(q.len(), 1, "{kind:?}");
            let (t, ev) = q.pop().unwrap();
            assert_eq!((t, token_of(&ev)), (Time(20), 2));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn cancel_is_stale_after_fire_and_after_cancel() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let h = q.schedule_cancellable(Time(10), Event::AppTimer { token: 1 });
            assert!(q.pop().is_some());
            assert!(!q.cancel(h), "{kind:?}: handle must go stale on fire");
            let h2 = q.schedule_cancellable(Time(30), Event::AppTimer { token: 3 });
            assert!(!q.cancel(h), "{kind:?}: recycled slot must reject old gen");
            assert!(q.cancel(h2));
            assert!(!q.cancel(h2), "{kind:?}: double cancel");
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn wheel_handles_bucket_boundaries_and_time_zero() {
        // One tick is 256 ns; level spans are 2^14, 2^20, 2^26, 2^32 ns.
        let edges = [
            0u64,
            1,
            255,
            256,
            257,
            (1 << 14) - 1,
            1 << 14,
            (1 << 20) - 256,
            1 << 20,
            1 << 26,
            (1 << 32) - 1,
            1 << 32,
            (1 << 40) + 123,
        ];
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            for (i, &t) in edges.iter().enumerate() {
                q.schedule(Time(t), Event::AppTimer { token: i as u64 });
            }
            let mut last = (Time(0), 0u64);
            let mut n = 0;
            while let Some((t, ev)) = q.pop() {
                let cur = (t, token_of(&ev));
                assert!(cur >= last, "{kind:?}: {cur:?} after {last:?}");
                last = cur;
                n += 1;
            }
            assert_eq!(n, edges.len());
        }
    }

    /// A sorted-vec reference model: stable sort by time keeps
    /// insertion order within ties, i.e. the `(time, seq)` contract.
    struct VecModel {
        entries: Vec<(u64, u64)>,
    }

    impl VecModel {
        fn new() -> Self {
            Self { entries: Vec::new() }
        }
        fn schedule(&mut self, at: u64, token: u64) {
            self.entries.push((at, token));
        }
        fn pop(&mut self) -> Option<(u64, u64)> {
            let best = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|&(i, &(t, _))| (t, i))
                .map(|(i, _)| i)?;
            Some(self.entries.remove(best))
        }
    }

    /// Satellite regression: entries pinned at `horizon - 1`, `horizon`,
    /// and `horizon + 1` ticks ahead of the cursor — the exact seam
    /// between the wheel's top level and the overflow heap — must pop in
    /// model order, for aligned and misaligned cursors alike. Also
    /// exercises the empty-wheel direct-pop path (everything past the
    /// boundary starts in overflow) and in-flight pushes at the tick the
    /// cursor lands on after an overflow jump.
    #[test]
    fn overflow_horizon_boundary_matches_model() {
        // The wheel spans 2^HORIZON_BITS ticks; one tick is 2^GRAN_BITS ns.
        let horizon_ticks = 1u64 << HORIZON_BITS;
        let anchors = [0u64, 1, 12_345, horizon_ticks - 2, horizon_ticks + 77];
        for &anchor in &anchors {
            let mut q = EventQueue::with_kind(SchedulerKind::Wheel);
            let mut model = VecModel::new();
            let mut token = 0u64;
            // Advance the cursor to the (possibly misaligned) anchor.
            if anchor > 0 {
                q.schedule(Time(anchor << GRAN_BITS), Event::AppTimer { token });
                model.schedule(anchor << GRAN_BITS, token);
                token += 1;
            }
            // Pin a pair of entries at each boundary tick (same time
            // twice, so insertion-order ties are checked at the seam),
            // plus sub-tick offsets.
            for delta in [horizon_ticks - 1, horizon_ticks, horizon_ticks + 1] {
                let tick = anchor + delta;
                for off in [0u64, 0, 255] {
                    let at = (tick << GRAN_BITS) | off;
                    q.schedule(Time(at), Event::AppTimer { token });
                    model.schedule(at, token);
                    token += 1;
                }
            }
            // Drain the anchor, then push mid-drain entries at the tick
            // the cursor jumped to (merges into the live run).
            if anchor > 0 {
                let (t, ev) = q.pop().expect("anchor");
                assert_eq!((t.nanos(), token_of(&ev)), model.pop().unwrap());
            }
            let (t, ev) = q.pop().expect("first boundary entry");
            assert_eq!((t.nanos(), token_of(&ev)), model.pop().unwrap());
            let same_tick_at = t.nanos();
            q.schedule(Time(same_tick_at), Event::AppTimer { token });
            model.schedule(same_tick_at, token);
            token += 1;
            let far = (anchor + 3 * horizon_ticks) << GRAN_BITS;
            q.schedule(Time(far), Event::AppTimer { token });
            model.schedule(far, token);
            while let Some((t, ev)) = q.pop() {
                let got = (t.nanos(), token_of(&ev));
                let want = model.pop().unwrap_or_else(|| {
                    panic!("wheel popped {got:?} beyond the model, anchor {anchor}")
                });
                assert_eq!(got, want, "anchor {anchor}");
            }
            assert!(model.pop().is_none(), "model has leftovers, anchor {anchor}");
            assert!(q.is_empty());
        }
    }

    /// Randomized version of the boundary test: schedules cluster around
    /// `cursor + horizon` with interleaved pops.
    #[test]
    fn overflow_boundary_random_workloads_match_model() {
        let horizon_ticks = 1u64 << HORIZON_BITS;
        cases(64, |_case, rng| {
            let mut q = EventQueue::with_kind(SchedulerKind::Wheel);
            let mut model = VecModel::new();
            let mut now = 0u64;
            let mut token = 0u64;
            for _ in 0..200 {
                if rng.gen_range(0u32..3) < 2 {
                    let tick_off = horizon_ticks - 3 + rng.gen_range(0..=6u64);
                    let at = now + (tick_off << GRAN_BITS) + rng.gen_range(0..256u64);
                    q.schedule(Time(at), Event::AppTimer { token });
                    model.schedule(at, token);
                    token += 1;
                } else {
                    let got = q.pop().map(|(t, e)| (t.nanos(), token_of(&e)));
                    assert_eq!(got, model.pop());
                    if let Some((t, _)) = got {
                        now = t;
                    }
                }
            }
            loop {
                let got = q.pop().map(|(t, e)| (t.nanos(), token_of(&e)));
                assert_eq!(got, model.pop());
                if got.is_none() {
                    break;
                }
            }
        });
    }

    #[test]
    fn pop_if_takes_matching_run_and_stops() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            // Same-time run of tokens 0..3, then a later event.
            for token in 0..3 {
                q.schedule(Time(10), Event::AppTimer { token });
            }
            q.schedule(Time(50), Event::AppTimer { token: 99 });
            let (t, first) = q.pop().unwrap();
            assert_eq!((t, token_of(&first)), (Time(10), 0));
            // Lookahead drains the rest of the tick, in seq order.
            let mut run = vec![];
            while let Some((_, e)) = q.pop_if(|at, _| at == Time(10)) {
                run.push(token_of(&e));
            }
            assert_eq!(run, vec![1, 2], "{kind:?}");
            // The declined event is untouched and pops normally.
            assert_eq!(q.len(), 1, "{kind:?}");
            let (t, e) = q.pop().unwrap();
            assert_eq!((t, token_of(&e)), (Time(50), 99), "{kind:?}");
            assert!(q.pop_if(|_, _| true).is_none(), "empty queue");
        }
    }

    #[test]
    fn pop_if_declining_preserves_order_and_reaps_cancelled_heads() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(Time(1), Event::AppTimer { token: 9 });
            let h = q.schedule_cancellable(Time(5), Event::AppTimer { token: 0 });
            q.schedule(Time(5), Event::AppTimer { token: 1 });
            q.schedule(Time(7), Event::AppTimer { token: 2 });
            assert!(q.cancel(h));
            // Prime the wheel's live run (pop_if never does bucket work).
            assert_eq!(q.pop().map(|(_, e)| token_of(&e)), Some(9));
            // The cancelled head is reaped, not offered to the predicate.
            let got = q.pop_if(|_, e| token_of(e) != 0);
            assert_eq!(got.map(|(t, e)| (t, token_of(&e))), Some((Time(5), 1)), "{kind:?}");
            // Declining leaves everything in place for pop.
            assert!(q.pop_if(|_, _| false).is_none(), "{kind:?}");
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| token_of(&e))
                .collect();
            assert_eq!(order, vec![2], "{kind:?}");
            assert!(q.is_empty(), "{kind:?}");
        }
    }

    /// A sharded queue with a real multi-shard map must reproduce the
    /// reference heap's exact pop sequence — node-affine events land in
    /// different shards, windows are tiny (lookahead 512 ns) so the
    /// merge path is exercised constantly, and the thread count must
    /// not be observable.
    #[test]
    fn sharded_map_matches_heap_across_thread_counts() {
        use crate::packet::NodeId;
        fn tok(ev: &Event) -> u64 {
            match ev {
                Event::PolicyTimer { token, .. } => *token,
                Event::AppTimer { token } => 1_000_000 + *token,
                _ => panic!("unexpected event"),
            }
        }
        for threads in [1usize, 2, 4] {
            cases(32, |_case, rng| {
                let mut sharded =
                    EventQueue::with_kind(SchedulerKind::Sharded { threads });
                // Five nodes over three shards, plus no-affinity events
                // (AppTimer) pinned to shard 0.
                sharded.configure_shards(vec![0, 1, 2, 0, 1], 3, 512);
                let mut heap = EventQueue::with_kind(SchedulerKind::RefHeap);
                let mut now = 0u64;
                let mut token = 0u64;
                let mut handles: Vec<(TimerHandle, TimerHandle)> = Vec::new();
                for _ in 0..400 {
                    match rng.gen_range(0u32..8) {
                        0..=4 => {
                            let at = Time(now + rng.gen_range(0..100_000u64));
                            let ev = if rng.gen_bool(0.8) {
                                Event::PolicyTimer {
                                    node: NodeId(rng.gen_range(0..5u32)),
                                    token,
                                }
                            } else {
                                Event::AppTimer { token }
                            };
                            if rng.gen_bool(0.25) {
                                handles.push((
                                    sharded.schedule_cancellable(at, ev.clone()),
                                    heap.schedule_cancellable(at, ev),
                                ));
                            } else {
                                sharded.schedule(at, ev.clone());
                                heap.schedule(at, ev);
                            }
                            token += 1;
                        }
                        5 => {
                            if let Some((hs, hh)) = handles.pop() {
                                assert_eq!(sharded.cancel(hs), heap.cancel(hh));
                            }
                        }
                        _ => {
                            let a = sharded.pop().map(|(t, e)| (t, tok(&e)));
                            let b = heap.pop().map(|(t, e)| (t, tok(&e)));
                            assert_eq!(a, b, "threads {threads}");
                            if let Some((t, _)) = a {
                                now = t.nanos();
                            }
                        }
                    }
                    assert_eq!(sharded.len(), heap.len());
                }
                loop {
                    let a = sharded.pop().map(|(t, e)| (t, tok(&e)));
                    let b = heap.pop().map(|(t, e)| (t, tok(&e)));
                    assert_eq!(a, b, "threads {threads}");
                    if a.is_none() {
                        break;
                    }
                }
            });
        }
    }

    /// The shard counters see every routed push, and the window count
    /// grows as the queue drains.
    #[test]
    fn sharded_stats_track_pushes_and_windows() {
        use crate::packet::NodeId;
        let mut q = EventQueue::with_kind(SchedulerKind::Sharded { threads: 2 });
        q.configure_shards(vec![0, 1], 2, 1_000);
        assert!(EventQueue::with_kind(SchedulerKind::Wheel).shard_stats().is_none());
        for i in 0..10u64 {
            q.schedule(
                Time(i * 5_000),
                Event::PolicyTimer {
                    node: NodeId((i % 2) as u32),
                    token: i,
                },
            );
        }
        let (windows0, stats) = q.shard_stats().expect("sharded");
        assert_eq!(windows0, 0);
        assert_eq!(stats.iter().map(|s| s.pushes).sum::<u64>(), 10);
        assert_eq!(stats[0].pushes, 5);
        assert_eq!(stats[1].pushes, 5);
        while q.pop().is_some() {}
        let (windows, stats) = q.shard_stats().expect("sharded");
        // Entries sit 5 µs apart with a 1 µs lookahead: every pop opens
        // its own window.
        assert_eq!(windows, 10);
        assert_eq!(stats.iter().map(|s| s.drained).sum::<u64>(), 10);
    }

    #[test]
    fn wheel_and_heap_agree_on_random_workloads() {
        cases(64, |_case, rng| {
            let mut wheel = EventQueue::with_kind(SchedulerKind::Wheel);
            let mut heap = EventQueue::with_kind(SchedulerKind::RefHeap);
            let mut now = 0u64;
            let mut token = 0u64;
            for _ in 0..300 {
                if rng.gen_range(0u32..3) < 2 {
                    // Mix of near ticks, boundary offsets, and far-future.
                    let off = match rng.gen_range(0u32..6) {
                        0 => 0,
                        1 => rng.gen_range(0..256),
                        2 => rng.gen_range(0..1 << 14),
                        3 => rng.gen_range(0..1 << 20),
                        4 => rng.gen_range(0..1 << 26),
                        _ => rng.gen_range(0..1u64 << 41),
                    };
                    let at = Time(now + off);
                    wheel.schedule(at, Event::AppTimer { token });
                    heap.schedule(at, Event::AppTimer { token });
                    token += 1;
                } else {
                    let a = wheel.pop().map(|(t, e)| (t, token_of(&e)));
                    let b = heap.pop().map(|(t, e)| (t, token_of(&e)));
                    assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        now = t.nanos();
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            loop {
                let a = wheel.pop().map(|(t, e)| (t, token_of(&e)));
                let b = heap.pop().map(|(t, e)| (t, token_of(&e)));
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        });
    }
}
