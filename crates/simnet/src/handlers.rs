//! Per-event-kind handlers of the simulation loop.
//!
//! [`crate::sim`] owns the state and the public API; this module is the
//! dispatch side: one named handler per [`Event`] kind, entered through
//! [`SimCore::handle_event`], which is also where the
//! `telemetry::LoopStats` per-kind counters (and optional wall-clock
//! profiling) hook in. Keeping the handlers out of `sim.rs` keeps the
//! monolithic dispatch loop from re-growing and gives each event kind a
//! profiling boundary that matches a single function.
//!
//! Packets live in the [`crate::arena::PacketArena`]; events carry ids.
//! Handlers borrow the slot (disjoint field borrows against the node
//! table) and free it on every terminal path: delivery to an endpoint,
//! tail drop, fault loss, or policy consumption. The hot path performs
//! zero packet clones.
//!
//! # Batched dispatch
//!
//! [`SimCore::handle_event`] coalesces a run of *consecutive* arrivals
//! popped at the same `(time, switch, port)` into one batched handler
//! call, paying the dispatch overhead (kind match, stats bump, borrow
//! setup) once per batch. This cannot change behaviour: the run is
//! collected with [`EventQueue::pop_if`], which pops an event only when
//! it is already the queue minimum *and* extends the run, so batch
//! members are dispatched in exactly the `(time, seq)` order the queue
//! would have produced one at a time — the determinism invariant is
//! untouched, and a declined event never moves. Only switch arrivals
//! batch: a host arrival can enqueue application upcalls, and those
//! drain between events.

use rng::rngs::StdRng;
use rng::Rng;
use telemetry::{Telemetry, TraceEvent};

use crate::arena::{PacketArena, PacketId};
use crate::endpoint::Effects;
use crate::event::{Event, EventQueue};
use crate::fault::FaultAction;
use crate::node::{ecmp_select, NextHops, Node};
use crate::packet::{Flags, FlowId, NodeId};
use crate::policy::{EgressVerdict, IngressVerdict, PolicyFx};
use crate::sim::{AppCall, PacketEventKind, SimCore};
use crate::units::Time;

/// Kind index of [`Event::Arrival`] in [`Event::KIND_NAMES`].
const ARRIVAL_KIND: usize = 0;

impl SimCore {
    /// Counts, optionally profiles, and dispatches one event — or, for
    /// switch arrivals with coalescing on, the whole same-time
    /// same-port run it starts.
    pub(crate) fn handle_event(&mut self, ev: Event) {
        if self.cfg.coalesce {
            if let Event::Arrival { node, port, pkt } = ev {
                if matches!(self.nodes[node.0 as usize], Node::Switch(_)) {
                    self.switch_arrival_batch(node, port, pkt);
                    return;
                }
            }
        }
        let kind = ev.kind_index();
        self.telemetry.loop_stats.count(kind);
        if self.telemetry.loop_stats.profiled() {
            let t0 = std::time::Instant::now();
            self.dispatch_event(ev);
            self.telemetry
                .loop_stats
                .add_nanos(kind, t0.elapsed().as_nanos() as u64);
        } else {
            self.dispatch_event(ev);
        }
    }

    /// Collects the run of consecutive same-time arrivals at one switch
    /// port starting with `first`, then dispatches them as a batch (one
    /// stats bump, one profiling span). See the module docs for why
    /// this preserves the per-event order exactly.
    fn switch_arrival_batch(&mut self, node: NodeId, port: usize, first: PacketId) {
        debug_assert_eq!(Event::KIND_NAMES[ARRIVAL_KIND], "arrival");
        let now = self.now;
        let mut batch = std::mem::take(&mut self.arrival_batch);
        debug_assert!(batch.is_empty());
        batch.push(first);
        while let Some((_, ev)) = self.events.pop_if(|t, ev| {
            t == now
                && matches!(ev, Event::Arrival { node: n, port: p, .. }
                    if *n == node && *p == port)
        }) {
            let Event::Arrival { pkt, .. } = ev else {
                unreachable!("pop_if predicate admits arrivals only")
            };
            batch.push(pkt);
        }
        self.telemetry
            .loop_stats
            .count_batch(ARRIVAL_KIND, batch.len() as u64);
        if self.telemetry.loop_stats.profiled() {
            let t0 = std::time::Instant::now();
            for &pkt in &batch {
                self.on_arrival(node, port, pkt);
            }
            self.telemetry
                .loop_stats
                .add_nanos(ARRIVAL_KIND, t0.elapsed().as_nanos() as u64);
        } else {
            for &pkt in &batch {
                self.on_arrival(node, port, pkt);
            }
        }
        self.events_processed += batch.len() as u64;
        batch.clear();
        self.arrival_batch = batch;
    }

    fn dispatch_event(&mut self, ev: Event) {
        match ev {
            Event::NicEnqueue { node, pkt } => self.on_nic_enqueue(node, pkt),
            Event::Arrival { node, port, pkt } => self.on_arrival(node, port, pkt),
            Event::TxDone { node, port } => self.tx_done(node, port),
            Event::HostTimer { node, flow, token } => self.on_host_timer(node, flow, token),
            Event::PolicyTimer { node, token } => self.on_policy_timer(node, token),
            Event::AppTimer { token } => {
                self.pending_app.push_back(AppCall::Timer(token));
            }
            Event::Sample { sampler } => self.on_sample(sampler),
            Event::Fault { action } => self.apply_fault(action),
        }
        self.events_processed += 1;
    }

    /// A packet emitted by an endpoint reaches its host's NIC queue.
    fn on_nic_enqueue(&mut self, node: NodeId, pkt: PacketId) {
        if let Node::Host(h) = &mut self.nodes[node.0 as usize] {
            if h.stalled {
                // A stalled host emits nothing, silently.
                h.nic.fault_drops += 1;
                self.packets.free(pkt);
                return;
            }
        }
        let accepted = Self::enqueue_and_kick(
            &mut self.nodes[node.0 as usize],
            0,
            pkt,
            &self.packets,
            self.now,
            &mut self.events,
            &mut self.fault_rng,
            &mut self.telemetry,
        );
        if !accepted {
            self.packets.free(pkt);
        }
    }

    /// A packet finishes propagating into `node` on `port`.
    fn on_arrival(&mut self, node: NodeId, port: usize, pkt: PacketId) {
        if !self.nodes[node.0 as usize].port(port).up {
            // The packet propagated into a link that died under it:
            // lost without trace at the receiving end.
            self.record_fault_drop(node, port, pkt);
            if self.telemetry.spans.enabled() {
                let flow = self.packets.get(pkt).flow.0;
                self.telemetry.spans.on_drop(pkt.key(), flow);
            }
            self.packets.free(pkt);
            return;
        }
        self.log_packet(node, PacketEventKind::Arrival, pkt);
        match &self.nodes[node.0 as usize] {
            Node::Switch(_) => self.switch_ingress(node, port, pkt),
            Node::Host(_) => self.host_receive(node, pkt),
        }
    }

    /// A transport-endpoint timer fires at a host.
    fn on_host_timer(&mut self, node: NodeId, flow: FlowId, token: u64) {
        // The timer's cancellation handle is spent the moment it fires.
        if let Some(pending) = self.host_timers.get_mut(flow.0 as usize) {
            if let Some(i) = pending.iter().position(|&(t, _)| t == token) {
                pending.swap_remove(i);
            }
        }
        let now = self.now;
        let mut fx = Effects::new();
        let Node::Host(h) = &mut self.nodes[node.0 as usize] else {
            return;
        };
        if let Some(s) = h.senders.get_mut(flow) {
            s.on_timer(token, now, &mut fx);
        } else {
            return;
        }
        self.apply_host_fx(node, flow, fx);
    }

    /// A switch-policy timer fires.
    fn on_policy_timer(&mut self, node: NodeId, token: u64) {
        if let Some(pending) = self.policy_timers.get_mut(node.0 as usize) {
            if let Some(i) = pending.iter().position(|&(t, _)| t == token) {
                pending.swap_remove(i);
            }
        }
        let now = self.now;
        let mut fx = PolicyFx::new();
        {
            let Node::Switch(sw) = &mut self.nodes[node.0 as usize] else {
                return;
            };
            sw.policy.on_timer(token, now, &mut fx);
        }
        self.apply_policy_fx(node, fx);
    }

    /// A periodic queue sampler ticks. Reads the sampler in place
    /// (disjoint field borrows) instead of cloning it every firing.
    fn on_sample(&mut self, sampler: usize) {
        let s = &self.samplers[sampler];
        let bytes = self.nodes[s.node.0 as usize].port(s.port).queue.bytes();
        self.trace.record(&s.key, self.now, bytes as f64);
        let next = self.now + s.every;
        let past_until = s.until.is_some_and(|u| next > u);
        let past_end = self.cfg.end.is_some_and(|e| next > e);
        if !past_until && !past_end {
            self.events.schedule(next, Event::Sample { sampler });
        }
    }

    /// Counts (and, with telemetry, records) a packet lost to a fault at
    /// `node`'s `port`. The caller frees the arena slot.
    fn record_fault_drop(&mut self, node: NodeId, port: usize, pkt: PacketId) {
        let (wire, flow, seq) = {
            let p = self.packets.get(pkt);
            (p.wire_bytes(), p.flow.0, p.seq)
        };
        self.nodes[node.0 as usize].port_mut(port).fault_drops += 1;
        if self.telemetry.log.enabled() {
            self.telemetry.log.record(
                self.now.nanos(),
                TraceEvent::PktDrop {
                    node: node.0,
                    port: port as u16,
                    flow,
                    seq,
                    bytes: wire,
                },
            );
        }
    }

    /// Enqueues `pkt` on `node`'s `port`, starting the transmitter if it
    /// is idle. Drops (with accounting in the queue) on overflow, and
    /// loses the packet outright on a downed link or an active loss
    /// window (fault accounting). Returns whether the packet was
    /// accepted; on `false`, the caller still owns the arena slot and
    /// must free it (after any logging it wants to do from the borrow).
    #[allow(clippy::too_many_arguments)]
    fn enqueue_and_kick(
        node: &mut Node,
        port_idx: usize,
        pkt: PacketId,
        arena: &PacketArena,
        now: Time,
        events: &mut EventQueue,
        fault_rng: &mut StdRng,
        tel: &mut Telemetry,
    ) -> bool {
        let id = node.id();
        let is_host = matches!(node, Node::Host(_));
        let port = node.port_mut(port_idx);
        let (wire, flow, seq, data) = {
            let p = arena.get(pkt);
            (p.wire_bytes(), p.flow.0, p.seq, p.is_data())
        };
        let meta = tel.log.enabled().then_some((flow, seq));
        // The fault RNG is only drawn inside an active loss window, so
        // fault-free runs are byte-identical to pre-fault-layer ones.
        let lost = !port.up
            || (port.loss_permille > 0
                && fault_rng.gen_range(0..1000u64) < port.loss_permille as u64);
        if lost {
            port.fault_drops += 1;
            if let Some((flow, seq)) = meta {
                tel.log.record(
                    now.nanos(),
                    TraceEvent::PktDrop {
                        node: id.0,
                        port: port_idx as u16,
                        flow,
                        seq,
                        bytes: wire,
                    },
                );
            }
            tel.spans.on_drop(pkt.key(), flow);
            return false;
        }
        let accepted = port.queue.enqueue(pkt, wire);
        if accepted {
            // Starts the span on first sight (sender NIC) or closes the
            // preceding wire segment and advances the hop (switch).
            tel.spans.on_enqueue(pkt.key(), flow, data, is_host, now.nanos());
        } else {
            tel.spans.on_drop(pkt.key(), flow);
        }
        if let Some((flow, seq)) = meta {
            let event = if accepted {
                TraceEvent::PktEnqueue {
                    node: id.0,
                    port: port_idx as u16,
                    flow,
                    seq,
                    bytes: wire,
                    queue_bytes: port.queue.bytes(),
                }
            } else {
                TraceEvent::PktDrop {
                    node: id.0,
                    port: port_idx as u16,
                    flow,
                    seq,
                    bytes: wire,
                }
            };
            tel.log.record(now.nanos(), event);
        }
        if accepted && !port.busy {
            port.busy = true;
            let ser = port.link.rate.serialize(wire);
            events.schedule(
                now + ser,
                Event::TxDone {
                    node: id,
                    port: port_idx,
                },
            );
        }
        accepted
    }

    fn tx_done(&mut self, node: NodeId, port_idx: usize) {
        let now = self.now;
        // A downed link keeps draining its FIFO at line rate, but every
        // serialised packet falls into the void; the transmitter never
        // stops, so no re-kick is needed when the link comes back.
        let (pkt, wire, up, link) = {
            let port = self.nodes[node.0 as usize].port_mut(port_idx);
            let (pkt, wire) = port
                .queue
                .dequeue()
                .expect("TxDone with empty queue: transmitter state corrupt");
            let up = port.up;
            if up {
                port.tx_bytes += wire;
            } else {
                port.fault_drops += 1;
            }
            (pkt, wire, up, port.link)
        };
        if self.telemetry.log.enabled() {
            let (flow, seq) = {
                let p = self.packets.get(pkt);
                (p.flow.0, p.seq)
            };
            let ev = if up {
                TraceEvent::PktDequeue {
                    node: node.0,
                    port: port_idx as u16,
                    flow,
                    seq,
                    bytes: wire,
                }
            } else {
                TraceEvent::PktDrop {
                    node: node.0,
                    port: port_idx as u16,
                    flow,
                    seq,
                    bytes: wire,
                }
            };
            self.telemetry.log.record(now.nanos(), ev);
        }
        if self.telemetry.spans.enabled() {
            let flow = self.packets.get(pkt).flow.0;
            if up {
                // Closes the queue-wait segment at this hop; wire time
                // runs from here to the next enqueue or delivery.
                self.telemetry.spans.on_dequeue(pkt.key(), flow, now.nanos());
            } else {
                self.telemetry.spans.on_drop(pkt.key(), flow);
            }
        }
        let next_ser = {
            let port = self.nodes[node.0 as usize].port_mut(port_idx);
            if port.queue.is_empty() {
                port.busy = false;
                None
            } else {
                // The head packet determines the next serialisation time.
                let head_wire = port
                    .queue
                    .peek_wire_bytes()
                    .expect("non-empty queue has a head");
                Some(port.link.rate.serialize(head_wire))
            }
        };
        if let Some(ser) = next_ser {
            self.events.schedule(
                now + ser,
                Event::TxDone {
                    node,
                    port: port_idx,
                },
            );
        }
        if up {
            self.events.schedule(
                now + link.delay,
                Event::Arrival {
                    node: link.peer,
                    port: link.peer_port,
                    pkt,
                },
            );
        } else {
            self.packets.free(pkt);
        }
    }

    fn switch_ingress(&mut self, node: NodeId, in_port: usize, pkt: PacketId) {
        let now = self.now;
        let mut fx = PolicyFx::new();
        let forward = {
            let Node::Switch(sw) = &mut self.nodes[node.0 as usize] else {
                unreachable!()
            };
            match sw
                .policy
                .on_ingress(in_port, self.packets.get_mut(pkt), now, &mut fx)
            {
                IngressVerdict::Forward => true,
                IngressVerdict::Consume => false,
            }
        };
        if forward {
            self.switch_egress(node, in_port, pkt, true);
        } else {
            // Consumed (e.g. the TFC delay arbiter holds its own copy);
            // the in-fabric slot is done. Not a loss: the span is
            // forgotten without a drop count.
            if self.telemetry.spans.enabled() {
                let flow = self.packets.get(pkt).flow.0;
                self.telemetry.spans.on_consumed(pkt.key(), flow);
            }
            self.packets.free(pkt);
        }
        self.apply_policy_fx(node, fx);
    }

    /// Routes and enqueues a packet at a switch, optionally running the
    /// egress policy hook (skipped for policy-injected packets).
    ///
    /// The egress port is the deterministic `(flow, hop)` ECMP choice
    /// among the equal-cost set, filtered to live ports (route repair:
    /// surviving members absorb flows whose hashed member died). A
    /// missing route is a counted drop attributed to `in_port`, not a
    /// panic — reachable via route surgery or sparse dynamic topologies.
    fn switch_egress(&mut self, node: NodeId, in_port: usize, pkt: PacketId, run_hook: bool) {
        let now = self.now;
        let (ce_before, dst, flow, hop) = {
            let p = self.packets.get(pkt);
            (p.flags.contains(Flags::CE), p.dst, p.flow.0, p.hop)
        };
        let out = {
            let Node::Switch(sw) = &self.nodes[node.0 as usize] else {
                unreachable!()
            };
            match sw.routes.next_hops(dst) {
                NextHops::None => None,
                NextHops::Single(p) => Some(p as usize),
                NextHops::Ecmp(set) => {
                    let ports = &sw.ports;
                    Some(ecmp_select(set, flow, hop, |p| ports[p as usize].up) as usize)
                }
            }
        };
        let Some(out) = out else {
            let (wire, seq) = {
                let p = self.packets.get(pkt);
                (p.wire_bytes(), p.seq)
            };
            self.nodes[node.0 as usize].port_mut(in_port).no_route_drops += 1;
            if self.telemetry.log.enabled() {
                self.telemetry.log.record(
                    now.nanos(),
                    TraceEvent::PktDrop {
                        node: node.0,
                        port: in_port as u16,
                        flow,
                        seq,
                        bytes: wire,
                    },
                );
            }
            if self.telemetry.spans.enabled() {
                self.telemetry.spans.on_drop(pkt.key(), flow);
            }
            self.packets.free(pkt);
            return;
        };
        // One more switch hop behind it: the next tier hashes with the
        // advanced index, so a flow's member choice re-randomises per
        // tier instead of following one diagonal through the fabric.
        self.packets.get_mut(pkt).hop = hop.wrapping_add(1);
        let mut fx = PolicyFx::new();
        let enqueue = {
            let Node::Switch(sw) = &mut self.nodes[node.0 as usize] else {
                unreachable!()
            };
            let verdict = if run_hook {
                let qbytes = sw.ports[out].queue.bytes();
                sw.policy
                    .on_egress(out, self.packets.get_mut(pkt), qbytes, now, &mut fx)
            } else {
                EgressVerdict::Enqueue
            };
            match verdict {
                EgressVerdict::Enqueue => Some(out),
                EgressVerdict::Drop => None,
            }
        };
        if let Some(out) = enqueue {
            // The egress hook may have marked the packet; capture what
            // the telemetry events need from a borrow of the arena slot.
            let marks = self.telemetry.log.enabled().then(|| {
                let p = self.packets.get(pkt);
                (
                    p.flow.0,
                    p.seq,
                    !ce_before && p.flags.contains(Flags::CE),
                    p.flags.contains(Flags::RM),
                    p.window,
                )
            });
            let accepted = Self::enqueue_and_kick(
                &mut self.nodes[node.0 as usize],
                out,
                pkt,
                &self.packets,
                now,
                &mut self.events,
                &mut self.fault_rng,
                &mut self.telemetry,
            );
            if accepted && self.telemetry.spans.enabled() {
                let p = self.packets.get(pkt);
                if !ce_before && p.flags.contains(Flags::CE) {
                    self.telemetry.spans.on_ecn(pkt.key(), p.flow.0);
                }
            }
            if accepted {
                if let Some((flow, seq, ecn_marked, round_marked, window)) = marks {
                    if ecn_marked {
                        self.telemetry.log.record(
                            now.nanos(),
                            TraceEvent::PktEcnMark {
                                node: node.0,
                                port: out as u16,
                                flow,
                                seq,
                            },
                        );
                    }
                    if round_marked {
                        self.telemetry.log.record(
                            now.nanos(),
                            TraceEvent::PktRoundMark {
                                node: node.0,
                                port: out as u16,
                                flow,
                                seq,
                                window,
                            },
                        );
                    }
                }
            } else {
                // Rejected at the FIFO (overflow or fault loss): log
                // the drop from the arena borrow, then recycle the slot.
                self.log_packet(node, PacketEventKind::Drop, pkt);
                self.packets.free(pkt);
            }
        } else {
            // Policy-initiated drop: silent, as the pre-arena core was.
            if self.telemetry.spans.enabled() {
                let flow = self.packets.get(pkt).flow.0;
                self.telemetry.spans.on_drop(pkt.key(), flow);
            }
            self.packets.free(pkt);
        }
        self.apply_policy_fx(node, fx);
    }

    pub(crate) fn apply_policy_fx(&mut self, node: NodeId, fx: PolicyFx) {
        // Cancels first, so a policy that re-arms in the same callback
        // cancels the stale generation before scheduling the new one.
        for token in fx.cancels {
            let pending = &mut self.policy_timers[node.0 as usize];
            if let Some(i) = pending.iter().position(|&(t, _)| t == token) {
                let (_, handle) = pending.swap_remove(i);
                self.events.cancel(handle);
            }
        }
        for (after, token) in fx.timers {
            let handle = self
                .events
                .schedule_cancellable(self.now + after, Event::PolicyTimer { node, token });
            self.policy_timers[node.0 as usize].push((token, handle));
        }
        for (key, value) in fx.traces {
            self.trace.record(&key, self.now, value);
        }
        for pkt in fx.inject {
            // Policy-owned packets (re)enter the fabric here; a no-route
            // drop of one is attributed to port 0 (they have no real
            // ingress port).
            let pkt = self.packets.alloc(pkt);
            self.switch_egress(node, 0, pkt, false);
        }
        for mut sample in fx.slot_samples {
            sample.at_ns = self.now.nanos();
            self.telemetry.push_slot_sample(sample);
        }
        for (flow, waited_ns) in fx.token_waits {
            self.telemetry.spans.on_token_wait(flow, waited_ns);
        }
    }

    /// Applies one fault action at the current time (the `Event::Fault`
    /// handler). Link-level faults hit both ends of the full-duplex
    /// link; every application is recorded as a `FaultInjected` or
    /// `FaultCleared` telemetry event.
    fn apply_fault(&mut self, action: FaultAction) {
        let now = self.now;
        match action {
            FaultAction::LinkDown { node, port } => self.set_link_up(node, port, false),
            FaultAction::LinkUp { node, port } => self.set_link_up(node, port, true),
            FaultAction::LinkRate { node, port, rate } => {
                // A packet mid-serialisation completes on its old
                // schedule; the new rate applies from the next one.
                let (peer, peer_port) = {
                    let p = self.nodes[node.0 as usize].port_mut(port);
                    p.link.rate = rate;
                    (p.link.peer, p.link.peer_port)
                };
                self.nodes[peer.0 as usize].port_mut(peer_port).link.rate = rate;
            }
            FaultAction::LossWindow {
                node,
                port,
                permille,
            } => {
                self.nodes[node.0 as usize].port_mut(port).loss_permille = permille.min(1000);
            }
            FaultAction::LossWindowEnd { node, port } => {
                self.nodes[node.0 as usize].port_mut(port).loss_permille = 0;
            }
            FaultAction::PolicyReset { node, port } => {
                let mut fx = PolicyFx::new();
                {
                    let Node::Switch(sw) = &mut self.nodes[node.0 as usize] else {
                        panic!("PolicyReset target {node:?} is not a switch");
                    };
                    let rate = sw.ports[port].link.rate;
                    sw.policy.reset_port(port, rate, now, &mut fx);
                }
                self.apply_policy_fx(node, fx);
            }
            FaultAction::HostStall { node } => self.set_host_stalled(node, true),
            FaultAction::HostResume { node } => self.set_host_stalled(node, false),
        }
        if self.telemetry.log.enabled() {
            let (kind, node, port, value) = (
                action.kind_label(),
                action.node().0,
                action.port() as u16,
                action.value(),
            );
            let ev = if action.is_clear() {
                TraceEvent::FaultCleared {
                    kind,
                    node,
                    port,
                    value,
                }
            } else {
                TraceEvent::FaultInjected {
                    kind,
                    node,
                    port,
                    value,
                }
            };
            self.telemetry.log.record(now.nanos(), ev);
            if let FaultAction::LinkDown { node, port } = action {
                self.note_rerouted(node, port);
            }
        }
    }

    /// Records a [`TraceEvent::Rerouted`] for each switch end of the
    /// link just downed at `node`/`port`: forwarding filters dead ports
    /// out of every equal-cost set at selection time, so the surviving
    /// members absorb the affected flows from this instant. `dests`
    /// counts the destinations the switch can still reach over siblings
    /// of the dead port (0 on unique-path topologies, where the repair
    /// has nothing to absorb and packets die at the port instead).
    fn note_rerouted(&mut self, node: NodeId, port: usize) {
        let now = self.now;
        let (peer, peer_port) = {
            let p = self.nodes[node.0 as usize].port(port);
            (p.link.peer, p.link.peer_port)
        };
        for (sw_id, sw_port) in [(node, port), (peer, peer_port)] {
            let Node::Switch(sw) = &self.nodes[sw_id.0 as usize] else {
                continue;
            };
            let ports = &sw.ports;
            let dests = sw
                .routes
                .reroutable_dests(sw_port as u16, |p| ports[p as usize].up);
            self.telemetry.log.record(
                now.nanos(),
                TraceEvent::Rerouted {
                    node: sw_id.0,
                    port: sw_port as u16,
                    dests,
                },
            );
        }
    }

    /// Marks both ends of the link at `node`/`port` up or down.
    fn set_link_up(&mut self, node: NodeId, port: usize, up: bool) {
        let (peer, peer_port) = {
            let p = self.nodes[node.0 as usize].port_mut(port);
            p.up = up;
            (p.link.peer, p.link.peer_port)
        };
        self.nodes[peer.0 as usize].port_mut(peer_port).up = up;
    }

    fn set_host_stalled(&mut self, node: NodeId, stalled: bool) {
        let Node::Host(h) = &mut self.nodes[node.0 as usize] else {
            panic!("host-stall target {node:?} is not a host");
        };
        h.stalled = stalled;
    }

    fn host_receive(&mut self, node: NodeId, pkt: PacketId) {
        let now = self.now;
        let (flow, is_ack, ack) = {
            let p = self.packets.get(pkt);
            (p.flow, p.flags.contains(Flags::ACK), p.ack)
        };
        {
            let Node::Host(h) = &mut self.nodes[node.0 as usize] else {
                unreachable!()
            };
            if h.stalled {
                // A stalled host's endpoints see nothing.
                h.nic.fault_drops += 1;
                self.telemetry.spans.on_drop(pkt.key(), flow.0);
                self.packets.free(pkt);
                return;
            }
        }
        if self.telemetry.log.enabled() && is_ack {
            self.telemetry.log.record(
                now.nanos(),
                TraceEvent::PktAck {
                    node: node.0,
                    flow: flow.0,
                    ack,
                },
            );
        }
        let mut fx = Effects::new();
        let known = {
            let Node::Host(h) = &mut self.nodes[node.0 as usize] else {
                unreachable!()
            };
            let p = self.packets.get(pkt);
            if let Some(s) = h.senders.get_mut(flow) {
                s.on_packet(p, now, &mut fx);
                true
            } else if let Some(r) = h.receivers.get_mut(flow) {
                r.on_packet(p, now, &mut fx);
                true
            } else {
                false // Stale packet of a torn-down flow.
            }
        };
        if self.telemetry.spans.enabled() {
            if known {
                let sent_ns = self.packets.get(pkt).sent_at.nanos();
                // Final wire segment plus end-to-end from the emit stamp.
                self.telemetry.spans.on_deliver(pkt.key(), flow.0, sent_ns, now.nanos());
            } else {
                // Stale packet of a torn-down flow: forgotten, not lost.
                self.telemetry.spans.on_consumed(pkt.key(), flow.0);
            }
        }
        // The endpoint has seen the packet; the slot is recyclable
        // before effects apply (effects never reference the packet).
        self.packets.free(pkt);
        if known {
            self.apply_host_fx(node, flow, fx);
        }
    }
}
