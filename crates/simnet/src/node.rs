//! Hosts, switches, and their ports.

use crate::endpoint::{ReceiverEndpoint, SenderEndpoint};
use crate::flowtable::FlowMap;
use crate::packet::NodeId;
use crate::policy::SwitchPolicy;
use crate::queue::PortQueue;
use crate::units::{Bandwidth, Dur};

/// The attached link of a port: rate, one-way propagation delay, and the
/// peer `(node, port)` at the far end.
#[derive(Debug, Clone, Copy)]
pub struct PortLink {
    /// Link rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub delay: Dur,
    /// Node at the far end.
    pub peer: NodeId,
    /// Ingress port index at the far end.
    pub peer_port: usize,
}

/// One output port: an attached link plus its FIFO and transmitter state.
#[derive(Debug)]
pub struct Port {
    /// The attached link.
    pub link: PortLink,
    /// Output FIFO.
    pub queue: PortQueue,
    /// Whether a packet is currently being serialised.
    pub busy: bool,
    /// Total wire bytes transmitted out of this port.
    pub tx_bytes: u64,
    /// Whether the attached link is up. A downed port accepts nothing
    /// new; packets it finishes serialising (and packets propagating
    /// toward it) are lost. Fault-injection state; `true` by default.
    pub up: bool,
    /// Drop probability of the active loss window, in permille
    /// (0 = no loss window). Fault-injection state.
    pub loss_permille: u16,
    /// Packets lost to faults at this port (dead link, loss window,
    /// stalled host) — separate from the FIFO's overflow drops.
    pub fault_drops: u64,
    /// Packets that arrived on this port but found no route toward
    /// their destination at this switch (counted drop, not a panic;
    /// reachable via route-table surgery or sparse dynamic topologies).
    pub no_route_drops: u64,
}

impl Port {
    /// Creates an idle port with a FIFO of `capacity_bytes`.
    pub fn new(link: PortLink, capacity_bytes: u64) -> Self {
        Self {
            link,
            queue: PortQueue::new(capacity_bytes),
            busy: false,
            tx_bytes: 0,
            up: true,
            loss_permille: 0,
            fault_drops: 0,
            no_route_drops: 0,
        }
    }

    /// Snapshot of this port's counters.
    pub fn stats(&self) -> PortStats {
        PortStats {
            queue_bytes: self.queue.bytes(),
            max_queue_bytes: self.queue.max_bytes_seen(),
            drops: self.queue.drops(),
            tx_bytes: self.tx_bytes,
            fault_drops: self.fault_drops,
            no_route_drops: self.no_route_drops,
        }
    }
}

/// A snapshot of one port's counters (see [`Port::stats`] and
/// [`crate::sim::SimCore::port_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    /// Current FIFO backlog in bytes.
    pub queue_bytes: u64,
    /// Highest FIFO backlog ever observed, in bytes.
    pub max_queue_bytes: u64,
    /// Packets tail-dropped at the full FIFO.
    pub drops: u64,
    /// Total wire bytes transmitted.
    pub tx_bytes: u64,
    /// Packets lost to injected faults (dead link, loss window, stalled
    /// host).
    pub fault_drops: u64,
    /// Packets dropped because the switch had no route toward their
    /// destination, attributed to the ingress port.
    pub no_route_drops: u64,
}

/// Sentinel in a [`RouteTable`] entry row: no egress port toward that
/// destination (the destination is this switch itself, or not a host).
pub const NO_ROUTE: u16 = u16::MAX;

/// Tag bit marking a [`RouteTable`] entry as an index into the shared
/// equal-cost port-set pool rather than a single port number. Port
/// indices must stay below this (32 767 ports per switch is far beyond
/// any fabric this workspace builds).
const ECMP_TAG: u16 = 1 << 15;

/// A multi-next-hop routing table: per destination either a single
/// egress port or an equal-cost set of them.
///
/// The representation stays as compact as the old dense `routes[dst] ->
/// port` row: one `u16` per destination, where values below [`ECMP_TAG`]
/// are a single port, [`NO_ROUTE`] means unreachable, and tagged values
/// index a deduplicated pool of sorted port sets. Fabrics repeat the
/// same few uplink sets across thousands of destinations (a k-ary
/// fat-tree edge switch has exactly one distinct uplink set), so the
/// pool stays tiny and a 10k-host table is still ~22 KB per switch.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// One entry per destination node id.
    entries: Vec<u16>,
    /// Deduplicated equal-cost port sets, each sorted ascending.
    sets: Vec<Vec<u16>>,
}

/// Next-hop candidates for one destination (see [`RouteTable::next_hops`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHops<'a> {
    /// No route: the destination is this switch itself, not a host, or
    /// the entry was cleared by route surgery.
    None,
    /// A unique shortest path.
    Single(u16),
    /// Several equal-cost egress ports, sorted ascending. Always at
    /// least two entries.
    Ecmp(&'a [u16]),
}

impl NextHops<'_> {
    /// The candidate ports as a slice (empty for [`NextHops::None`]).
    /// `Single` borrows the table's pool-free fast path via the caller:
    /// use [`RouteTable::next_hops`] + pattern matching on hot paths.
    pub fn len(&self) -> usize {
        match self {
            NextHops::None => 0,
            NextHops::Single(_) => 1,
            NextHops::Ecmp(s) => s.len(),
        }
    }

    /// Whether there is no candidate at all.
    pub fn is_empty(&self) -> bool {
        matches!(self, NextHops::None)
    }
}

impl RouteTable {
    /// An all-[`NO_ROUTE`] table over `n` destinations.
    pub fn unreachable(n: usize) -> Self {
        Self {
            entries: vec![NO_ROUTE; n],
            sets: Vec::new(),
        }
    }

    /// Builds a table from an explicit entry row (single ports and
    /// [`NO_ROUTE`] only) — the pre-multipath construction, kept for
    /// tests and hand-built switches.
    pub fn from_single(entries: Vec<u16>) -> Self {
        assert!(
            entries.iter().all(|&e| e == NO_ROUTE || e < ECMP_TAG),
            "single-port entries must stay below the ECMP tag bit"
        );
        Self {
            entries,
            sets: Vec::new(),
        }
    }

    /// Sets the equal-cost next hops toward `dst`. `ports` must be
    /// sorted ascending and duplicate-free; empty clears the entry back
    /// to [`NO_ROUTE`]. Multi-port sets are deduplicated into the pool.
    pub fn set(&mut self, dst: usize, ports: &[u16]) {
        if self.entries.len() <= dst {
            self.entries.resize(dst + 1, NO_ROUTE);
        }
        self.entries[dst] = match ports {
            [] => NO_ROUTE,
            &[p] => {
                assert!(p < ECMP_TAG, "port index {p} collides with the ECMP tag");
                p
            }
            many => {
                debug_assert!(many.windows(2).all(|w| w[0] < w[1]), "ports must be sorted+unique");
                assert!(*many.last().unwrap() < ECMP_TAG, "port index collides with the ECMP tag");
                // Linear pool scan: distinct sets per switch are few (a
                // fat-tree switch has a handful), and scan order is
                // deterministic.
                let idx = self
                    .sets
                    .iter()
                    .position(|s| s == many)
                    .unwrap_or_else(|| {
                        self.sets.push(many.to_vec());
                        self.sets.len() - 1
                    });
                assert!(
                    idx < (NO_ROUTE ^ ECMP_TAG) as usize,
                    "equal-cost set pool exceeds the tagged index range"
                );
                ECMP_TAG | idx as u16
            }
        };
    }

    /// The next-hop candidates toward `dst`.
    pub fn next_hops(&self, dst: NodeId) -> NextHops<'_> {
        match self.entries.get(dst.0 as usize) {
            None => NextHops::None,
            Some(&e) if e == NO_ROUTE => NextHops::None,
            Some(&e) if e & ECMP_TAG == 0 => NextHops::Single(e),
            Some(&e) => NextHops::Ecmp(&self.sets[(e ^ ECMP_TAG) as usize]),
        }
    }

    /// The deterministic primary next hop (lowest equal-cost port) — the
    /// pre-multipath `route()` semantics, used by control-plane lookups
    /// that need *a* port rather than the per-packet hash choice.
    pub fn primary(&self, dst: NodeId) -> Option<usize> {
        match self.next_hops(dst) {
            NextHops::None => None,
            NextHops::Single(p) => Some(p as usize),
            NextHops::Ecmp(set) => Some(set[0] as usize),
        }
    }

    /// Number of destinations whose equal-cost set contains `port`
    /// alongside at least one surviving member for which `alive` holds —
    /// i.e. how many destinations a failure of `port` can deterministically
    /// re-absorb onto siblings (the `Rerouted` telemetry payload).
    pub fn reroutable_dests(&self, port: u16, mut alive: impl FnMut(u16) -> bool) -> u64 {
        let mut per_set = vec![0u64; self.sets.len()];
        let mut hits = 0u64;
        for (i, s) in self.sets.iter().enumerate() {
            if s.contains(&port) && s.iter().any(|&p| p != port && alive(p)) {
                per_set[i] = 1;
            }
        }
        for &e in &self.entries {
            if e != NO_ROUTE && e & ECMP_TAG != 0 {
                hits += per_set[(e ^ ECMP_TAG) as usize];
            }
        }
        hits
    }

    /// Number of destination entries (reachable ones).
    pub fn reachable_dests(&self) -> usize {
        self.entries.iter().filter(|&&e| e != NO_ROUTE).count()
    }
}

/// Deterministic, seed-stable ECMP hash over `(flow, hop)`: one
/// splitmix64 avalanche round. The choice of equal-cost member is a
/// pure function of the flow id and the packet's switch-hop index — it
/// never consumes a simulator RNG stream (which would perturb unrelated
/// draws) and never depends on the run seed or scheduler backend, so
/// routing is a property of the topology and workload alone.
pub fn ecmp_hash(flow: u64, hop: u8) -> u64 {
    rng::mix64(flow ^ ((hop as u64) << 56) ^ 0x9E37_79B9_7F4A_7C15)
}

/// Picks the equal-cost member for `(flow, hop)` among `set`, skipping
/// ports for which `up` is false (deterministic route repair: surviving
/// members absorb the flow). When every member is down the hash choice
/// over the full set is returned, so the packet dies at the dead port
/// with ordinary fault accounting rather than vanishing routeless.
pub fn ecmp_select(set: &[u16], flow: u64, hop: u8, mut up: impl FnMut(u16) -> bool) -> u16 {
    debug_assert!(!set.is_empty());
    let h = ecmp_hash(flow, hop);
    let live = set.iter().filter(|&&p| up(p)).count();
    if live == 0 {
        return set[(h % set.len() as u64) as usize];
    }
    let mut pick = (h % live as u64) as usize;
    for &p in set {
        if up(p) {
            if pick == 0 {
                return p;
            }
            pick -= 1;
        }
    }
    unreachable!("live member count changed mid-scan")
}

/// A switch: ports, a routing table, and a packet-processing policy.
pub struct Switch {
    /// This switch's node id.
    pub id: NodeId,
    /// Ports in index order.
    pub ports: Vec<Port>,
    /// Multi-next-hop routing table indexed by destination node id.
    pub routes: RouteTable,
    /// Packet-processing policy (drop-tail, ECN, TFC, ...).
    pub policy: Box<dyn SwitchPolicy>,
}

impl Switch {
    /// Looks up the deterministic primary egress port for a destination
    /// host (lowest equal-cost member). Per-packet forwarding uses the
    /// ECMP hash instead; this is the control-plane view.
    pub fn route(&self, dst: NodeId) -> Option<usize> {
        self.routes.primary(dst)
    }

    /// Total drops across all port FIFOs.
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.queue.drops()).sum()
    }
}

impl std::fmt::Debug for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switch")
            .field("id", &self.id)
            .field("ports", &self.ports.len())
            .finish()
    }
}

/// A host: one NIC port plus the transport endpoints living on it.
pub struct Host {
    /// This host's node id.
    pub id: NodeId,
    /// The NIC.
    pub nic: Port,
    /// Sender endpoints of flows originating here, in a dense slab
    /// keyed by flow id.
    pub senders: FlowMap<Box<dyn SenderEndpoint>>,
    /// Receiver endpoints of flows terminating here, in a dense slab
    /// keyed by flow id.
    pub receivers: FlowMap<Box<dyn ReceiverEndpoint>>,
    /// Whether the host is stalled by a fault: silent without FIN —
    /// nothing leaves the NIC, arrivals are discarded, timers still run.
    pub stalled: bool,
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("senders", &self.senders.len())
            .field("receivers", &self.receivers.len())
            .finish()
    }
}

/// A node in the simulated network.
#[derive(Debug)]
pub enum Node {
    /// An end host.
    Host(Host),
    /// A switch.
    Switch(Switch),
}

impl Node {
    /// The node's id.
    pub fn id(&self) -> NodeId {
        match self {
            Node::Host(h) => h.id,
            Node::Switch(s) => s.id,
        }
    }

    /// Mutable access to a port by index.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn port_mut(&mut self, idx: usize) -> &mut Port {
        match self {
            Node::Host(h) => {
                assert_eq!(idx, 0, "hosts have a single NIC port");
                &mut h.nic
            }
            Node::Switch(s) => &mut s.ports[idx],
        }
    }

    /// Shared access to a port by index.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn port(&self, idx: usize) -> &Port {
        match self {
            Node::Host(h) => {
                assert_eq!(idx, 0, "hosts have a single NIC port");
                &h.nic
            }
            Node::Switch(s) => &s.ports[idx],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DropTail;
    use crate::units::{Bandwidth, Dur};

    fn link(peer: u32) -> PortLink {
        PortLink {
            rate: Bandwidth::gbps(1),
            delay: Dur::micros(1),
            peer: NodeId(peer),
            peer_port: 0,
        }
    }

    fn switch() -> Switch {
        Switch {
            id: NodeId(0),
            ports: vec![Port::new(link(1), 1_000), Port::new(link(2), 1_000)],
            routes: RouteTable::from_single(vec![NO_ROUTE, 0, 1]),
            policy: Box::new(DropTail),
        }
    }

    #[test]
    fn route_lookup() {
        let sw = switch();
        assert_eq!(sw.route(NodeId(1)), Some(0));
        assert_eq!(sw.route(NodeId(2)), Some(1));
        assert_eq!(sw.route(NodeId(0)), None);
        assert_eq!(sw.route(NodeId(99)), None, "out-of-range dst");
    }

    #[test]
    fn route_table_single_and_ecmp_entries() {
        let mut rt = RouteTable::unreachable(4);
        rt.set(0, &[3]);
        rt.set(1, &[1, 2]);
        rt.set(2, &[1, 2]);
        rt.set(3, &[]);
        assert_eq!(rt.next_hops(NodeId(0)), NextHops::Single(3));
        assert_eq!(rt.next_hops(NodeId(1)), NextHops::Ecmp(&[1, 2]));
        assert_eq!(rt.next_hops(NodeId(3)), NextHops::None);
        assert_eq!(rt.next_hops(NodeId(9)), NextHops::None, "out of range");
        assert_eq!(rt.primary(NodeId(1)), Some(1), "lowest equal-cost member");
        assert_eq!(rt.reachable_dests(), 3);
        // Identical sets share one pool slot.
        assert_eq!(rt.sets.len(), 1);
        // Clearing an entry restores NO_ROUTE.
        rt.set(0, &[]);
        assert_eq!(rt.next_hops(NodeId(0)), NextHops::None);
        assert_eq!(NextHops::Ecmp(&[1, 2]).len(), 2);
        assert!(NextHops::None.is_empty());
    }

    #[test]
    fn ecmp_select_skips_dead_members_deterministically() {
        let set = [1u16, 2, 4];
        // All up: the hash picks a member, and the same (flow, hop)
        // always picks the same one.
        let all = ecmp_select(&set, 77, 1, |_| true);
        assert_eq!(all, ecmp_select(&set, 77, 1, |_| true));
        assert!(set.contains(&all));
        // The chosen member dies: the survivors absorb the flow.
        let repaired = ecmp_select(&set, 77, 1, |p| p != all);
        assert_ne!(repaired, all);
        assert!(set.contains(&repaired));
        // Everything dead: fall back to the full-set hash choice so the
        // packet dies at a port (fault accounting), not routeless.
        assert_eq!(ecmp_select(&set, 77, 1, |_| false), all);
        // Different hops may choose differently, but always in-set.
        for hop in 0..32 {
            assert!(set.contains(&ecmp_select(&set, 77, hop, |_| true)));
        }
    }

    /// The ECMP hash must be a pure function of `(flow, hop)` — pinned
    /// snapshot values guard against anyone threading run state (seed,
    /// scheduler backend, RNG stream) into it, which would break the
    /// byte-identical-across-backends invariant.
    #[test]
    fn ecmp_hash_is_seed_and_backend_invariant() {
        assert_eq!(ecmp_hash(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(ecmp_hash(1, 0), 0xE4D9_7177_1B65_2C20);
        assert_eq!(ecmp_hash(42, 3), 0xF233_BCCD_7833_EFFF);
        assert_eq!(ecmp_hash(u64::MAX, 255), 0x5397_F91F_55DC_5A88);
        // mix64 of flow 0 at hop 0 is exactly splitmix64's first output
        // for seed 0 — the hash is one avalanche round, nothing more.
        assert_eq!(ecmp_hash(0, 0), rng::mix64(0x9E37_79B9_7F4A_7C15));
    }

    /// Chi-square goodness of fit: member choice across many flows (and
    /// across a flow's hops) is close to uniform for every set size we
    /// care about. The hash is deterministic, so these statistics are
    /// fixed numbers — the thresholds are the 99.9% critical values,
    /// with slack.
    #[test]
    fn ecmp_hash_spreads_uniformly() {
        let chi2 = |counts: &[u64]| {
            let n: u64 = counts.iter().sum();
            let exp = n as f64 / counts.len() as f64;
            counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - exp;
                    d * d / exp
                })
                .sum::<f64>()
        };
        // Across flows, for every realistic set size (df = m-1 <= 7,
        // 99.9% critical value <= 24.3).
        for m in [2usize, 3, 4, 8] {
            let set: Vec<u16> = (0..m as u16).collect();
            let mut counts = vec![0u64; m];
            for flow in 0..8192u64 {
                counts[ecmp_select(&set, flow, 2, |_| true) as usize] += 1;
            }
            let c = chi2(&counts);
            assert!(c < 25.0, "m={m} chi2={c} counts={counts:?}");
        }
        // Across hops for a single flow: later tiers re-randomise
        // instead of tracing one diagonal through the fabric.
        let set = [0u16, 1, 2, 3];
        let mut counts = [0u64; 4];
        for hop in 0..=255u8 {
            counts[ecmp_select(&set, 12345, hop, |_| true) as usize] += 1;
        }
        let c = chi2(&counts);
        assert!(c < 17.0, "per-hop chi2={c} counts={counts:?}");
    }

    #[test]
    fn reroutable_dests_counts_sets_with_survivors() {
        let mut rt = RouteTable::unreachable(6);
        rt.set(0, &[0]); // single: never reroutable
        rt.set(1, &[1, 2]);
        rt.set(2, &[1, 2]);
        rt.set(3, &[2, 3]);
        // Port 2 dies: dsts 1,2 fall back to port 1; dst 3 to port 3.
        assert_eq!(rt.reroutable_dests(2, |_| true), 3);
        // Port 2 dies while port 1 is already down: only dst 3 survives.
        assert_eq!(rt.reroutable_dests(2, |p| p != 1), 1);
        // A port no set contains reroutes nothing.
        assert_eq!(rt.reroutable_dests(0, |_| true), 0);
    }

    #[test]
    fn total_drops_sums_ports() {
        let mut sw = switch();
        let mut arena = crate::arena::PacketArena::new();
        let big =
            crate::packet::Packet::data(crate::packet::FlowId(0), NodeId(9), NodeId(1), 0, 1460);
        let wire = big.wire_bytes();
        let id = arena.alloc(big);
        assert!(!sw.ports[0].queue.enqueue(id, wire), "over capacity");
        assert!(!sw.ports[1].queue.enqueue(id, wire), "over capacity");
        assert_eq!(sw.total_drops(), 2);
        arena.free(id);
    }

    #[test]
    fn node_port_accessors() {
        let mut node = Node::Switch(switch());
        assert_eq!(node.id(), NodeId(0));
        assert_eq!(node.port(1).link.peer, NodeId(2));
        node.port_mut(0).busy = true;
        assert!(node.port(0).busy);
    }

    #[test]
    #[should_panic]
    fn host_rejects_nonzero_port() {
        let host = Node::Host(Host {
            id: NodeId(5),
            nic: Port::new(link(0), 1_000),
            senders: Default::default(),
            receivers: Default::default(),
            stalled: false,
        });
        let _ = host.port(1);
    }
}
