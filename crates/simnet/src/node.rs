//! Hosts, switches, and their ports.

use crate::endpoint::{ReceiverEndpoint, SenderEndpoint};
use crate::flowtable::FlowMap;
use crate::packet::NodeId;
use crate::policy::SwitchPolicy;
use crate::queue::PortQueue;
use crate::units::{Bandwidth, Dur};

/// The attached link of a port: rate, one-way propagation delay, and the
/// peer `(node, port)` at the far end.
#[derive(Debug, Clone, Copy)]
pub struct PortLink {
    /// Link rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub delay: Dur,
    /// Node at the far end.
    pub peer: NodeId,
    /// Ingress port index at the far end.
    pub peer_port: usize,
}

/// One output port: an attached link plus its FIFO and transmitter state.
#[derive(Debug)]
pub struct Port {
    /// The attached link.
    pub link: PortLink,
    /// Output FIFO.
    pub queue: PortQueue,
    /// Whether a packet is currently being serialised.
    pub busy: bool,
    /// Total wire bytes transmitted out of this port.
    pub tx_bytes: u64,
    /// Whether the attached link is up. A downed port accepts nothing
    /// new; packets it finishes serialising (and packets propagating
    /// toward it) are lost. Fault-injection state; `true` by default.
    pub up: bool,
    /// Drop probability of the active loss window, in permille
    /// (0 = no loss window). Fault-injection state.
    pub loss_permille: u16,
    /// Packets lost to faults at this port (dead link, loss window,
    /// stalled host) — separate from the FIFO's overflow drops.
    pub fault_drops: u64,
}

impl Port {
    /// Creates an idle port with a FIFO of `capacity_bytes`.
    pub fn new(link: PortLink, capacity_bytes: u64) -> Self {
        Self {
            link,
            queue: PortQueue::new(capacity_bytes),
            busy: false,
            tx_bytes: 0,
            up: true,
            loss_permille: 0,
            fault_drops: 0,
        }
    }

    /// Snapshot of this port's counters.
    pub fn stats(&self) -> PortStats {
        PortStats {
            queue_bytes: self.queue.bytes(),
            max_queue_bytes: self.queue.max_bytes_seen(),
            drops: self.queue.drops(),
            tx_bytes: self.tx_bytes,
            fault_drops: self.fault_drops,
        }
    }
}

/// A snapshot of one port's counters (see [`Port::stats`] and
/// [`crate::sim::SimCore::port_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    /// Current FIFO backlog in bytes.
    pub queue_bytes: u64,
    /// Highest FIFO backlog ever observed, in bytes.
    pub max_queue_bytes: u64,
    /// Packets tail-dropped at the full FIFO.
    pub drops: u64,
    /// Total wire bytes transmitted.
    pub tx_bytes: u64,
    /// Packets lost to injected faults (dead link, loss window, stalled
    /// host).
    pub fault_drops: u64,
}

/// Sentinel in a [`Switch::routes`] table: no egress port toward that
/// destination (the destination is this switch itself, or not a host).
pub const NO_ROUTE: u16 = u16::MAX;

/// A switch: ports, a routing table, and a packet-processing policy.
pub struct Switch {
    /// This switch's node id.
    pub id: NodeId,
    /// Ports in index order.
    pub ports: Vec<Port>,
    /// `routes[dst.0]` is the egress port toward host `dst`, or
    /// [`NO_ROUTE`]. Dense `u16` entries keep fabric-scale tables small:
    /// a 10k-host fat-tree's per-switch table is ~22 KB instead of the
    /// ~176 KB an `Option<usize>` row costs.
    pub routes: Vec<u16>,
    /// Packet-processing policy (drop-tail, ECN, TFC, ...).
    pub policy: Box<dyn SwitchPolicy>,
}

impl Switch {
    /// Looks up the egress port for a destination host.
    pub fn route(&self, dst: NodeId) -> Option<usize> {
        match self.routes.get(dst.0 as usize) {
            Some(&p) if p != NO_ROUTE => Some(p as usize),
            _ => None,
        }
    }

    /// Total drops across all port FIFOs.
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.queue.drops()).sum()
    }
}

impl std::fmt::Debug for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switch")
            .field("id", &self.id)
            .field("ports", &self.ports.len())
            .finish()
    }
}

/// A host: one NIC port plus the transport endpoints living on it.
pub struct Host {
    /// This host's node id.
    pub id: NodeId,
    /// The NIC.
    pub nic: Port,
    /// Sender endpoints of flows originating here, in a dense slab
    /// keyed by flow id.
    pub senders: FlowMap<Box<dyn SenderEndpoint>>,
    /// Receiver endpoints of flows terminating here, in a dense slab
    /// keyed by flow id.
    pub receivers: FlowMap<Box<dyn ReceiverEndpoint>>,
    /// Whether the host is stalled by a fault: silent without FIN —
    /// nothing leaves the NIC, arrivals are discarded, timers still run.
    pub stalled: bool,
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("senders", &self.senders.len())
            .field("receivers", &self.receivers.len())
            .finish()
    }
}

/// A node in the simulated network.
#[derive(Debug)]
pub enum Node {
    /// An end host.
    Host(Host),
    /// A switch.
    Switch(Switch),
}

impl Node {
    /// The node's id.
    pub fn id(&self) -> NodeId {
        match self {
            Node::Host(h) => h.id,
            Node::Switch(s) => s.id,
        }
    }

    /// Mutable access to a port by index.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn port_mut(&mut self, idx: usize) -> &mut Port {
        match self {
            Node::Host(h) => {
                assert_eq!(idx, 0, "hosts have a single NIC port");
                &mut h.nic
            }
            Node::Switch(s) => &mut s.ports[idx],
        }
    }

    /// Shared access to a port by index.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn port(&self, idx: usize) -> &Port {
        match self {
            Node::Host(h) => {
                assert_eq!(idx, 0, "hosts have a single NIC port");
                &h.nic
            }
            Node::Switch(s) => &s.ports[idx],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DropTail;
    use crate::units::{Bandwidth, Dur};

    fn link(peer: u32) -> PortLink {
        PortLink {
            rate: Bandwidth::gbps(1),
            delay: Dur::micros(1),
            peer: NodeId(peer),
            peer_port: 0,
        }
    }

    fn switch() -> Switch {
        Switch {
            id: NodeId(0),
            ports: vec![Port::new(link(1), 1_000), Port::new(link(2), 1_000)],
            routes: vec![NO_ROUTE, 0, 1],
            policy: Box::new(DropTail),
        }
    }

    #[test]
    fn route_lookup() {
        let sw = switch();
        assert_eq!(sw.route(NodeId(1)), Some(0));
        assert_eq!(sw.route(NodeId(2)), Some(1));
        assert_eq!(sw.route(NodeId(0)), None);
        assert_eq!(sw.route(NodeId(99)), None, "out-of-range dst");
    }

    #[test]
    fn total_drops_sums_ports() {
        let mut sw = switch();
        let mut arena = crate::arena::PacketArena::new();
        let big =
            crate::packet::Packet::data(crate::packet::FlowId(0), NodeId(9), NodeId(1), 0, 1460);
        let wire = big.wire_bytes();
        let id = arena.alloc(big);
        assert!(!sw.ports[0].queue.enqueue(id, wire), "over capacity");
        assert!(!sw.ports[1].queue.enqueue(id, wire), "over capacity");
        assert_eq!(sw.total_drops(), 2);
        arena.free(id);
    }

    #[test]
    fn node_port_accessors() {
        let mut node = Node::Switch(switch());
        assert_eq!(node.id(), NodeId(0));
        assert_eq!(node.port(1).link.peer, NodeId(2));
        node.port_mut(0).busy = true;
        assert!(node.port(0).busy);
    }

    #[test]
    #[should_panic]
    fn host_rejects_nonzero_port() {
        let host = Node::Host(Host {
            id: NodeId(5),
            nic: Port::new(link(0), 1_000),
            senders: Default::default(),
            receivers: Default::default(),
            stalled: false,
        });
        let _ = host.port(1);
    }
}
