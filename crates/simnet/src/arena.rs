//! Generation-indexed packet arena.
//!
//! Every in-flight packet lives in exactly one [`PacketArena`] slot, and
//! events carry a copyable [`PacketId`] instead of an owned
//! [`Packet`]. That keeps the event queue's entries small (no 80-byte
//! packet payload churning through wheel buckets) and makes every
//! handler a borrow of the slot rather than a move or a clone — the
//! allocation-free dataplane discipline hardware token-flow-control
//! schemes assume of a real switch pipeline.
//!
//! Slots are recycled on delivery or drop. Each slot carries a
//! generation counter bumped on free, and ids embed the generation they
//! were allocated under, so a stale id (a use-after-free bug in the
//! simulator) is *detected* — [`PacketArena::get`] panics — rather than
//! silently aliasing whatever packet reused the slot. This mirrors the
//! [`crate::sched::TimerHandle`] slab and the FlowMap generation scheme.
//!
//! Determinism: slot indices are assigned LIFO from the free list, so
//! for a fixed event order the id assignment (and thus everything
//! derived from it) is identical run-to-run. Ids never appear in
//! exported artifacts.

use crate::packet::Packet;

/// Handle to a packet stored in a [`PacketArena`].
///
/// Copyable and 8 bytes: an index plus the generation the slot had when
/// this id was allocated. An id goes stale the moment its packet is
/// freed; stale ids are rejected with a panic, never aliased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId {
    idx: u32,
    gen: u32,
}

impl PacketId {
    /// Slot index (diagnostics only; not stable across frees).
    pub fn index(self) -> u32 {
        self.idx
    }

    /// Packs `(generation, index)` into one `u64`, unique over a run:
    /// slots recycle but generations only grow. Used as the span-tracker
    /// map key so recycled slots never alias a live span.
    pub fn key(self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.idx)
    }
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    pkt: Option<Packet>,
}

/// A slab of in-flight packets with generation-checked handles.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    allocated_total: u64,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `pkt` and returns its id. Reuses a freed slot when one is
    /// available (LIFO), growing the slab otherwise.
    pub fn alloc(&mut self, pkt: Packet) -> PacketId {
        self.live += 1;
        self.allocated_total += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.pkt.is_none(), "free-list slot still occupied");
            slot.pkt = Some(pkt);
            return PacketId {
                idx,
                gen: slot.gen,
            };
        }
        let idx = u32::try_from(self.slots.len()).expect("packet arena exceeds u32 slots");
        self.slots.push(Slot {
            gen: 0,
            pkt: Some(pkt),
        });
        PacketId { idx, gen: 0 }
    }

    /// Shared access to the packet behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (its packet was freed) — a stale id is a
    /// simulator bug, and aliasing the slot's new occupant would corrupt
    /// the run silently.
    pub fn get(&self, id: PacketId) -> &Packet {
        let slot = &self.slots[id.idx as usize];
        assert_eq!(
            slot.gen, id.gen,
            "stale PacketId {id:?}: slot reused under generation {}",
            slot.gen
        );
        slot.pkt.as_ref().expect("live generation has a packet")
    }

    /// Mutable access to the packet behind `id`.
    ///
    /// # Panics
    ///
    /// Panics on stale ids, like [`get`](Self::get).
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        let slot = &mut self.slots[id.idx as usize];
        assert_eq!(
            slot.gen, id.gen,
            "stale PacketId {id:?}: slot reused under generation {}",
            slot.gen
        );
        slot.pkt.as_mut().expect("live generation has a packet")
    }

    /// Shared access that returns `None` for stale ids instead of
    /// panicking (assertions and tests).
    pub fn try_get(&self, id: PacketId) -> Option<&Packet> {
        let slot = self.slots.get(id.idx as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.pkt.as_ref()
    }

    /// Removes the packet behind `id`, bumping the slot generation so
    /// `id` (and any copy of it) goes stale, and returns the packet.
    ///
    /// # Panics
    ///
    /// Panics on stale ids (double free).
    pub fn free(&mut self, id: PacketId) -> Packet {
        let slot = &mut self.slots[id.idx as usize];
        assert_eq!(
            slot.gen, id.gen,
            "double free of PacketId {id:?}: slot already at generation {}",
            slot.gen
        );
        let pkt = slot.pkt.take().expect("live generation has a packet");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.idx);
        self.live -= 1;
        pkt
    }

    /// Packets currently alive in the arena.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether no packets are alive.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slots ever created (the slab high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total allocations over the arena's lifetime.
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId};

    fn pkt(seq: u64) -> Packet {
        Packet::data(FlowId(1), NodeId(0), NodeId(1), seq, 100)
    }

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut a = PacketArena::new();
        assert!(a.is_empty());
        let id = a.alloc(pkt(7));
        assert_eq!(a.live(), 1);
        assert_eq!(a.get(id).seq, 7);
        a.get_mut(id).seq = 8;
        assert_eq!(a.free(id).seq, 8);
        assert!(a.is_empty());
    }

    #[test]
    fn slots_recycle_lifo_with_fresh_generations() {
        let mut a = PacketArena::new();
        let id1 = a.alloc(pkt(1));
        let id2 = a.alloc(pkt(2));
        assert_ne!(id1, id2);
        a.free(id2);
        let id3 = a.alloc(pkt(3));
        assert_eq!(id3.index(), id2.index(), "freed slot reused first");
        assert_ne!(id3, id2, "generation distinguishes reuse");
        assert_eq!(a.get(id3).seq, 3);
        assert_eq!(a.capacity(), 2, "no slab growth on reuse");
        assert_eq!(a.allocated_total(), 3);
    }

    #[test]
    fn stale_ids_are_detected_not_aliased() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1));
        a.free(id);
        let newer = a.alloc(pkt(2));
        assert_eq!(newer.index(), id.index());
        assert!(a.try_get(id).is_none(), "stale id must not alias");
        assert_eq!(a.try_get(newer).map(|p| p.seq), Some(2));
    }

    #[test]
    #[should_panic(expected = "stale PacketId")]
    fn get_panics_on_stale_id() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1));
        a.free(id);
        a.alloc(pkt(2));
        let _ = a.get(id);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1));
        a.free(id);
        a.free(id);
    }
}
