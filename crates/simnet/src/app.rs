//! The application (workload driver) interface.

use crate::endpoint::FlowSpec;
use crate::packet::FlowId;
use crate::sim::SimApi;

/// Flow lifecycle notifications delivered to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowEvent {
    /// The connection handshake completed.
    Established(FlowId),
    /// In-order bytes reached the receiving application.
    Delivered {
        /// The flow.
        flow: FlowId,
        /// Newly delivered in-order payload bytes.
        bytes: u64,
    },
    /// A sized flow delivered its full byte count to the receiver.
    Completed(FlowId),
}

/// A workload driver: starts flows, reacts to their progress, and paces
/// itself with timers.
///
/// Exactly one application runs per simulation. All interaction with the
/// simulator goes through the [`SimApi`] handle.
pub trait Application: Send {
    /// Called once at simulation start.
    fn start(&mut self, api: &mut SimApi<'_>);

    /// Called when a timer armed via [`SimApi::set_timer`] fires.
    fn on_timer(&mut self, token: u64, api: &mut SimApi<'_>) {
        let _ = (token, api);
    }

    /// Called on flow lifecycle events.
    fn on_flow_event(&mut self, ev: FlowEvent, api: &mut SimApi<'_>) {
        let _ = (ev, api);
    }
}

/// An application that does nothing; used when the experiment pre-starts
/// all flows imperatively.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullApp;

impl Application for NullApp {
    fn start(&mut self, _api: &mut SimApi<'_>) {}
}

/// An application that starts a fixed set of flows at given times.
///
/// Convenient for micro-benchmarks like Fig. 9 ("H1 and H2 establish 2
/// flows each at 3 s intervals").
pub struct StaticFlows {
    /// `(start_time_token, spec)` pairs; flows start at the given
    /// nanosecond timestamps.
    schedule: Vec<(u64, FlowSpec)>,
    /// Flow ids assigned at start, in schedule order.
    started: Vec<Option<FlowId>>,
}

impl StaticFlows {
    /// Creates a driver starting each `spec` at its `at_ns` timestamp.
    pub fn new(schedule: Vec<(u64, FlowSpec)>) -> Self {
        let n = schedule.len();
        Self {
            schedule,
            started: vec![None; n],
        }
    }

    /// Flow ids in schedule order (`None` until started).
    pub fn flow_ids(&self) -> &[Option<FlowId>] {
        &self.started
    }
}

impl Application for StaticFlows {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for (i, (at, _)) in self.schedule.iter().enumerate() {
            api.set_timer_at(crate::units::Time(*at), i as u64);
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut SimApi<'_>) {
        let idx = token as usize;
        let spec = self.schedule[idx].1.clone();
        self.started[idx] = Some(api.start_flow(spec));
    }
}
