//! Time, duration, and bandwidth newtypes.
//!
//! The simulator clock is a `u64` nanosecond counter. Wrapping it (and
//! durations and link rates) in newtypes keeps unit errors out of the
//! protocol math, which mixes microsecond RTTs, gigabit rates, and byte
//! counts.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute simulation time in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A length of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

/// A link rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(pub u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since start.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant; saturates at zero.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Builds a duration from nanoseconds.
    pub const fn nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Duration in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the duration by a float factor, rounding to nearest ns.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or non-finite.
    pub fn mul_f64(self, f: f64) -> Dur {
        assert!(f.is_finite() && f >= 0.0, "invalid scale factor {f}");
        Dur((self.0 as f64 * f).round() as u64)
    }
}

impl Bandwidth {
    /// Builds a rate from bits per second.
    pub const fn bps(b: u64) -> Bandwidth {
        Bandwidth(b)
    }

    /// Builds a rate from megabits per second.
    pub const fn mbps(m: u64) -> Bandwidth {
        Bandwidth(m * 1_000_000)
    }

    /// Builds a rate from gigabits per second.
    pub const fn gbps(g: u64) -> Bandwidth {
        Bandwidth(g * 1_000_000_000)
    }

    /// Rate in bits per second.
    pub fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate in bytes per second as `f64`.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Rate in bytes per nanosecond as `f64` (handy for token buckets).
    pub fn bytes_per_nano(self) -> f64 {
        self.0 as f64 / 8.0 / 1e9
    }

    /// Time to serialise `bytes` onto this link, rounded up to whole ns.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn serialize(self, bytes: u64) -> Dur {
        assert!(self.0 > 0, "zero bandwidth");
        let bits = bytes as u128 * 8 * 1_000_000_000;
        Dur(bits.div_ceil(self.0 as u128) as u64)
    }

    /// Bytes transferable in `d` at this rate (floor).
    pub fn bytes_in(self, d: Dur) -> u64 {
        (self.0 as u128 * d.0 as u128 / 8 / 1_000_000_000) as u64
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::cases;
    use rng::Rng;

    #[test]
    fn serialize_full_frame_at_1g() {
        // 1500 B at 1 Gbps = 12 µs.
        assert_eq!(Bandwidth::gbps(1).serialize(1500), Dur::micros(12));
    }

    #[test]
    fn serialize_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> ceil.
        assert_eq!(Bandwidth::bps(3).serialize(1), Dur(2_666_666_667));
    }

    #[test]
    fn bytes_in_roundtrip() {
        let bw = Bandwidth::gbps(10);
        assert_eq!(bw.bytes_in(Dur::micros(1)), 1250);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time(100) + Dur(50);
        assert_eq!(t, Time(150));
        assert_eq!(t - Time(100), Dur(50));
        assert_eq!(Time(10).since(Time(50)), Dur::ZERO);
    }

    #[test]
    #[should_panic]
    fn time_sub_underflow_panics() {
        let _ = Time(1) - Time(2);
    }

    #[test]
    fn dur_scaling() {
        assert_eq!(Dur::millis(10).mul_f64(0.5), Dur::millis(5));
        assert_eq!(Dur::micros(3) * 2, Dur::micros(6));
        assert_eq!(Dur::micros(9) / 3, Dur::micros(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::micros(160)), "160.0us");
        assert_eq!(format!("{}", Dur::millis(2)), "2.000ms");
        assert_eq!(format!("{}", Bandwidth::gbps(10)), "10Gbps");
    }

    #[test]
    fn serialize_then_bytes_in_never_loses() {
        cases(256, |_case, rng| {
            let bytes = rng.gen_range(1..10_000_000u64);
            let gbit = rng.gen_range(1..100u64);
            let bw = Bandwidth::gbps(gbit);
            let d = bw.serialize(bytes);
            // Rounding up serialisation means at least `bytes` fit in `d`.
            assert!(
                bw.bytes_in(d) >= bytes,
                "{bytes} B at {gbit} Gbps: only {} fit back in {d:?}",
                bw.bytes_in(d)
            );
        });
    }

    #[test]
    fn since_is_inverse_of_add() {
        cases(256, |_case, rng| {
            let start = rng.gen_range(0..u64::MAX / 2);
            let d = rng.gen_range(0..1_000_000_000_000u64);
            let t0 = Time(start);
            let t1 = t0 + Dur(d);
            assert_eq!(t1.since(t0), Dur(d), "start {start}, d {d}");
        });
    }
}
