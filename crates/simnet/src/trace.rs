//! Legacy trace collection: named time series and periodic samplers.
//!
//! This is the *pre-span* tracing path — free-form `(time, value)`
//! series recorded under string keys by switch policies
//! (`PolicyFx::trace`, e.g. per-port rho) and [`QueueSampler`]s, read
//! back in-process by experiments. Causal per-packet tracing lives in
//! `telemetry::span` and is the preferred entry point for new
//! instrumentation: it is sampled, bounded-memory, and keyed to the
//! packet lifecycle rather than wall-clock polling.
//!
//! Both paths leave through the same per-run export: the experiment
//! harness flattens these series into `results/<run>/traces.csv`
//! alongside `spans.json`, so `tfc-trace` (including `tfc-trace diff`)
//! sees one artifact bundle regardless of which layer recorded.

use std::collections::BTreeMap;

use metrics::TimeSeries;

use crate::packet::NodeId;
use crate::units::{Dur, Time};

/// Central registry of named traces produced during a run.
///
/// Switch policies and samplers append `(time, value)` points under
/// string keys such as `"queue.s1.p0"` or `"tfc.s2.p3.ne"`; experiments
/// read them back after the run.
#[derive(Debug, Default)]
pub struct TraceCenter {
    series: BTreeMap<String, TimeSeries>,
}

impl TraceCenter {
    /// Creates an empty trace center.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point to the named series, creating it on first use.
    ///
    /// The lookup goes through `get_mut` first so the steady state (the
    /// series already exists) allocates nothing; `entry` would build an
    /// owned `String` key on every call.
    pub fn record(&mut self, key: &str, t: Time, v: f64) {
        if let Some(series) = self.series.get_mut(key) {
            series.push(t.nanos(), v);
            return;
        }
        let mut series = TimeSeries::new(key);
        series.push(t.nanos(), v);
        self.series.insert(key.to_owned(), series);
    }

    /// Looks up a series by name.
    pub fn get(&self, key: &str) -> Option<&TimeSeries> {
        self.series.get(key)
    }

    /// Iterates all `(name, series)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of named series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

/// A periodic queue-length sampler attached to one switch port.
#[derive(Debug, Clone)]
pub struct QueueSampler {
    /// Switch to sample.
    pub node: NodeId,
    /// Port index at that switch.
    pub port: usize,
    /// Sampling period.
    pub every: Dur,
    /// Trace key to record under.
    pub key: String,
    /// Stop sampling at this time (`None` = until simulation end).
    pub until: Option<Time>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_creates_and_appends() {
        let mut tc = TraceCenter::new();
        tc.record("a", Time(1), 1.0);
        tc.record("a", Time(2), 2.0);
        tc.record("b", Time(1), 9.0);
        assert_eq!(tc.len(), 2);
        assert_eq!(tc.get("a").unwrap().len(), 2);
        assert_eq!(tc.get("b").unwrap().points(), &[(1, 9.0)]);
        assert!(tc.get("c").is_none());
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut tc = TraceCenter::new();
        tc.record("z", Time(0), 0.0);
        tc.record("a", Time(0), 0.0);
        let names: Vec<&str> = tc.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
