//! Per-port FIFO packet queues with byte accounting.

use std::collections::VecDeque;

use crate::packet::Packet;

/// A byte-bounded FIFO for one output port.
///
/// Drops happen at enqueue time when the packet would push the backlog
/// over `capacity_bytes` (tail drop). The queue counts drops and tracks
/// the high-water mark for reporting.
///
/// # Examples
///
/// ```
/// use tfc_simnet::packet::{FlowId, NodeId, Packet};
/// use tfc_simnet::queue::PortQueue;
///
/// let mut q = PortQueue::new(3_000);
/// let pkt = Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, 1460);
/// assert!(q.enqueue(pkt.clone()));
/// assert!(q.enqueue(pkt.clone()));
/// assert!(!q.enqueue(pkt)); // third full frame exceeds 3000 B
/// assert_eq!(q.drops(), 1);
/// ```
#[derive(Debug)]
pub struct PortQueue {
    fifo: VecDeque<Packet>,
    bytes: u64,
    capacity_bytes: u64,
    drops: u64,
    max_bytes_seen: u64,
}

impl PortQueue {
    /// Creates a queue bounded at `capacity_bytes` of wire bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            fifo: VecDeque::new(),
            bytes: 0,
            capacity_bytes,
            drops: 0,
            max_bytes_seen: 0,
        }
    }

    /// Attempts to append a packet; returns `false` (and counts a drop)
    /// when capacity would be exceeded.
    pub fn enqueue(&mut self, pkt: Packet) -> bool {
        let wire = pkt.wire_bytes();
        if self.bytes + wire > self.capacity_bytes {
            self.drops += 1;
            return false;
        }
        self.bytes += wire;
        self.max_bytes_seen = self.max_bytes_seen.max(self.bytes);
        self.fifo.push_back(pkt);
        true
    }

    /// Removes and returns the head-of-line packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let pkt = self.fifo.pop_front()?;
        self.bytes -= pkt.wire_bytes();
        Some(pkt)
    }

    /// Wire size of the head-of-line packet, if any.
    pub fn peek_wire_bytes(&self) -> Option<u64> {
        self.fifo.front().map(Packet::wire_bytes)
    }

    /// Current backlog in wire bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Total packets dropped at enqueue.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Highest backlog (bytes) ever observed.
    pub fn max_bytes_seen(&self) -> u64 {
        self.max_bytes_seen
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId};
    use rng::props::{cases, vec_u64};
    use rng::Rng;

    fn pkt(payload: u64) -> Packet {
        Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, payload)
    }

    #[test]
    fn fifo_order() {
        let mut q = PortQueue::new(1 << 20);
        for seq in 0..5 {
            let mut p = pkt(100);
            p.seq = seq;
            q.enqueue(p);
        }
        for seq in 0..5 {
            assert_eq!(q.dequeue().unwrap().seq, seq);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn byte_accounting() {
        let mut q = PortQueue::new(1 << 20);
        q.enqueue(pkt(1460));
        assert_eq!(q.bytes(), 1500);
        q.enqueue(pkt(0)); // min frame 64
        assert_eq!(q.bytes(), 1564);
        q.dequeue();
        assert_eq!(q.bytes(), 64);
        assert_eq!(q.max_bytes_seen(), 1564);
    }

    #[test]
    fn tail_drop_counts() {
        let mut q = PortQueue::new(1500);
        assert!(q.enqueue(pkt(1460)));
        assert!(!q.enqueue(pkt(1460)));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bytes_never_exceed_capacity() {
        cases(128, |_case, rng| {
            let sizes = vec_u64(rng, 1..100, 0..3000);
            let cap = rng.gen_range(64..100_000u64);
            let mut q = PortQueue::new(cap);
            for &s in &sizes {
                q.enqueue(pkt(s));
                assert!(q.bytes() <= cap, "queue {} over cap {cap} after {s}", q.bytes());
            }
            // Draining returns accounting to zero.
            while q.dequeue().is_some() {}
            assert_eq!(q.bytes(), 0, "bytes nonzero after drain, sizes {sizes:?}");
        });
    }
}
