//! Per-port FIFO packet queues with byte accounting.

use std::collections::VecDeque;

use crate::arena::PacketId;

/// A byte-bounded FIFO for one output port.
///
/// The queue holds `(PacketId, wire_bytes)` pairs — the packets
/// themselves stay in the simulation's [`crate::arena::PacketArena`] —
/// so enqueue and dequeue move 16 bytes regardless of payload. Drops
/// happen at enqueue time when the packet would push the backlog over
/// `capacity_bytes` (tail drop). The queue counts drops and tracks the
/// high-water mark for reporting.
///
/// # Examples
///
/// ```
/// use tfc_simnet::arena::PacketArena;
/// use tfc_simnet::packet::{FlowId, NodeId, Packet};
/// use tfc_simnet::queue::PortQueue;
///
/// let mut arena = PacketArena::new();
/// let mut q = PortQueue::new(3_000);
/// let wire = Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, 1460).wire_bytes();
/// for _ in 0..2 {
///     let id = arena.alloc(Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, 1460));
///     assert!(q.enqueue(id, wire));
/// }
/// let third = arena.alloc(Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, 1460));
/// assert!(!q.enqueue(third, wire)); // third full frame exceeds 3000 B
/// assert_eq!(q.drops(), 1);
/// ```
#[derive(Debug)]
pub struct PortQueue {
    fifo: VecDeque<(PacketId, u64)>,
    bytes: u64,
    capacity_bytes: u64,
    drops: u64,
    max_bytes_seen: u64,
}

impl PortQueue {
    /// Creates a queue bounded at `capacity_bytes` of wire bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            fifo: VecDeque::new(),
            bytes: 0,
            capacity_bytes,
            drops: 0,
            max_bytes_seen: 0,
        }
    }

    /// Attempts to append a packet occupying `wire_bytes` on the wire;
    /// returns `false` (and counts a drop) when capacity would be
    /// exceeded. The caller keeps ownership of the arena slot on
    /// rejection and must free it.
    pub fn enqueue(&mut self, id: PacketId, wire_bytes: u64) -> bool {
        if self.bytes + wire_bytes > self.capacity_bytes {
            self.drops += 1;
            return false;
        }
        self.bytes += wire_bytes;
        self.max_bytes_seen = self.max_bytes_seen.max(self.bytes);
        self.fifo.push_back((id, wire_bytes));
        true
    }

    /// Removes and returns the head-of-line packet id and its wire size.
    pub fn dequeue(&mut self) -> Option<(PacketId, u64)> {
        let (id, wire) = self.fifo.pop_front()?;
        self.bytes -= wire;
        Some((id, wire))
    }

    /// Wire size of the head-of-line packet, if any.
    pub fn peek_wire_bytes(&self) -> Option<u64> {
        self.fifo.front().map(|&(_, wire)| wire)
    }

    /// Current backlog in wire bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Total packets dropped at enqueue.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Highest backlog (bytes) ever observed.
    pub fn max_bytes_seen(&self) -> u64 {
        self.max_bytes_seen
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PacketArena;
    use crate::packet::{FlowId, NodeId, Packet};
    use rng::props::{cases, vec_u64};
    use rng::Rng;

    fn pkt(payload: u64) -> Packet {
        Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, payload)
    }

    fn alloc(arena: &mut PacketArena, payload: u64, seq: u64) -> (PacketId, u64) {
        let mut p = pkt(payload);
        p.seq = seq;
        let wire = p.wire_bytes();
        (arena.alloc(p), wire)
    }

    #[test]
    fn fifo_order() {
        let mut arena = PacketArena::new();
        let mut q = PortQueue::new(1 << 20);
        for seq in 0..5 {
            let (id, wire) = alloc(&mut arena, 100, seq);
            q.enqueue(id, wire);
        }
        for seq in 0..5 {
            let (id, _) = q.dequeue().unwrap();
            assert_eq!(arena.get(id).seq, seq);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn byte_accounting() {
        let mut arena = PacketArena::new();
        let mut q = PortQueue::new(1 << 20);
        let (id, wire) = alloc(&mut arena, 1460, 0);
        q.enqueue(id, wire);
        assert_eq!(q.bytes(), 1500);
        let (id, wire) = alloc(&mut arena, 0, 0); // min frame 64
        q.enqueue(id, wire);
        assert_eq!(q.bytes(), 1564);
        let (_, wire) = q.dequeue().unwrap();
        assert_eq!(wire, 1500);
        assert_eq!(q.bytes(), 64);
        assert_eq!(q.max_bytes_seen(), 1564);
    }

    #[test]
    fn tail_drop_counts() {
        let mut arena = PacketArena::new();
        let mut q = PortQueue::new(1500);
        let (id, wire) = alloc(&mut arena, 1460, 0);
        assert!(q.enqueue(id, wire));
        let (id, wire) = alloc(&mut arena, 1460, 1);
        assert!(!q.enqueue(id, wire));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bytes_never_exceed_capacity() {
        cases(128, |_case, rng| {
            let sizes = vec_u64(rng, 1..100, 0..3000);
            let cap = rng.gen_range(64..100_000u64);
            let mut arena = PacketArena::new();
            let mut q = PortQueue::new(cap);
            for &s in &sizes {
                let (id, wire) = alloc(&mut arena, s, 0);
                if !q.enqueue(id, wire) {
                    arena.free(id);
                }
                assert!(q.bytes() <= cap, "queue {} over cap {cap} after {s}", q.bytes());
            }
            // Draining returns accounting to zero and frees every slot.
            while let Some((id, _)) = q.dequeue() {
                arena.free(id);
            }
            assert_eq!(q.bytes(), 0, "bytes nonzero after drain, sizes {sizes:?}");
            assert!(arena.is_empty(), "arena leaked slots, sizes {sizes:?}");
        });
    }
}
