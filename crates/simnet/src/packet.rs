//! Packets and protocol header fields.
//!
//! One packet struct serves every protocol in the workspace. TFC's two
//! extra header bits (RM / RMA, §5 of the paper) and the explicit window
//! field live alongside the standard TCP-ish flags; DCTCP uses the ECN
//! codepoints. Baselines simply ignore the fields they do not use.

use core::fmt;

use crate::units::Time;

/// Maximum segment size in bytes (payload of a full frame).
pub const MSS: u64 = 1460;

/// Transport + network header bytes added to every packet.
pub const HEADER_BYTES: u64 = 40;

/// Minimum Ethernet frame size in bytes; short packets (ACKs, SYNs) are
/// padded to this on the wire.
pub const MIN_FRAME: u64 = 64;

/// Frame size (headers included) at and above which an RM packet is used
/// for RTT measurement (§4.4: "only the marked packets with frame length
/// larger than 1500 Bytes are used to measure RTT").
pub const RTT_PROBE_FRAME: u64 = 1500;

/// The initial value a TFC sender writes into the window field before the
/// switches min-clamp it (the paper uses `0xffff`; we use the full range
/// of the simulated field).
pub const WINDOW_INIT: u64 = u64::MAX;

/// Identifier of a node (host or switch) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a flow (connection), unique across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags(pub u16);

impl Flags {
    /// Connection-open request.
    pub const SYN: Flags = Flags(1 << 0);
    /// Acknowledgement (the `ack` field is valid).
    pub const ACK: Flags = Flags(1 << 1);
    /// Connection close.
    pub const FIN: Flags = Flags(1 << 2);
    /// TFC Round MArk: first packet of a full window (§5.1).
    pub const RM: Flags = Flags(1 << 3);
    /// TFC Round MArk Acknowledgement (§5.3).
    pub const RMA: Flags = Flags(1 << 4);
    /// ECN-capable transport codepoint.
    pub const ECT: Flags = Flags(1 << 5);
    /// ECN Congestion Experienced, set by switches.
    pub const CE: Flags = Flags(1 << 6);
    /// ECN Echo, set by receivers on ACKs (DCTCP feedback).
    pub const ECE: Flags = Flags(1 << 7);

    /// Whether every bit of `other` is set in `self`.
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `self` with the bits of `other` set.
    pub fn with(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }

    /// Returns `self` with the bits of `other` cleared.
    pub fn without(self, other: Flags) -> Flags {
        Flags(self.0 & !other.0)
    }

    /// Sets the bits of `other` in place.
    pub fn set(&mut self, other: Flags) {
        self.0 |= other.0;
    }

    /// Clears the bits of `other` in place.
    pub fn clear(&mut self, other: Flags) {
        self.0 &= !other.0;
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Flags::SYN, "SYN"),
            (Flags::ACK, "ACK"),
            (Flags::FIN, "FIN"),
            (Flags::RM, "RM"),
            (Flags::RMA, "RMA"),
            (Flags::ECT, "ECT"),
            (Flags::CE, "CE"),
            (Flags::ECE, "ECE"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A simulated packet.
///
/// `src`/`dst` are the *host* endpoints of the flow's current direction:
/// data packets carry `src = sender host`, ACKs carry `src = receiver
/// host`. Switches route on `dst`.
///
/// `Clone` is implemented manually (not derived) so every copy is
/// counted in a thread-local tally, keeping the hot path honest: the
/// forwarding pipeline stores packets in the [`crate::arena`] and moves
/// ids, so a steady-state delivery performs zero clones — a property
/// pinned by regression tests via [`thread_packet_clones`].
#[derive(Debug, PartialEq)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host (routing key).
    pub dst: NodeId,
    /// Sequence number of the first payload byte (data packets).
    pub seq: u64,
    /// Cumulative acknowledgement: next expected byte (ACK packets).
    pub ack: u64,
    /// Payload bytes carried.
    pub payload: u64,
    /// Header flag bits.
    pub flags: Flags,
    /// Explicit congestion window in bytes (TFC); `WINDOW_INIT` until a
    /// switch clamps it.
    pub window: u64,
    /// Allocation weight of the flow (TFC weighted-allocation extension;
    /// §4.1 notes tokens may be split "according to any allocation
    /// policies"). Default 1 = plain fair share.
    pub weight: u8,
    /// Switch hops traversed so far (incremented at each switch egress).
    /// Feeds the deterministic ECMP hash `(flow, hop)` so a flow's
    /// next-hop choice is independent at every tier of a multipath
    /// fabric; wraps at 256, far beyond any sane path length.
    pub hop: u8,
    /// Time the packet left its originating host (for diagnostics).
    pub sent_at: Time,
}

std::thread_local! {
    static PACKET_CLONES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of [`Packet`] clones performed on the current thread since it
/// started. Rust runs tests on separate threads, so delta measurements
/// against this counter are race-free.
pub fn thread_packet_clones() -> u64 {
    PACKET_CLONES.with(std::cell::Cell::get)
}

impl Clone for Packet {
    fn clone(&self) -> Self {
        PACKET_CLONES.with(|c| c.set(c.get() + 1));
        Packet {
            flow: self.flow,
            src: self.src,
            dst: self.dst,
            seq: self.seq,
            ack: self.ack,
            payload: self.payload,
            flags: self.flags,
            window: self.window,
            weight: self.weight,
            hop: self.hop,
            sent_at: self.sent_at,
        }
    }
}

impl Packet {
    /// Creates a data packet.
    pub fn data(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, payload: u64) -> Packet {
        Packet {
            flow,
            src,
            dst,
            seq,
            ack: 0,
            payload,
            flags: Flags::default(),
            window: WINDOW_INIT,
            weight: 1,
            hop: 0,
            sent_at: Time::ZERO,
        }
    }

    /// Creates a bare ACK packet acknowledging up to `ack`.
    pub fn ack(flow: FlowId, src: NodeId, dst: NodeId, ack: u64) -> Packet {
        Packet {
            flow,
            src,
            dst,
            seq: 0,
            ack,
            payload: 0,
            flags: Flags::ACK,
            window: WINDOW_INIT,
            weight: 1,
            hop: 0,
            sent_at: Time::ZERO,
        }
    }

    /// Bytes this packet occupies on the wire (headers + minimum frame
    /// padding included).
    pub fn wire_bytes(&self) -> u64 {
        (self.payload + HEADER_BYTES).max(MIN_FRAME)
    }

    /// Whether this packet carries payload (as opposed to pure control).
    pub fn is_data(&self) -> bool {
        self.payload > 0
    }

    /// Whether this is a pure acknowledgement (no payload).
    pub fn is_pure_ack(&self) -> bool {
        self.flags.contains(Flags::ACK) && self.payload == 0
    }

    /// Whether a TFC switch may use this RM packet for RTT measurement
    /// (frame length at least [`RTT_PROBE_FRAME`], §4.4).
    pub fn is_rtt_probe(&self) -> bool {
        self.flags.contains(Flags::RM) && self.wire_bytes() >= RTT_PROBE_FRAME
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[flow {} {}->{} seq={} ack={} len={} {}]",
            self.flow.0, self.src.0, self.dst.0, self.seq, self.ack, self.payload, self.flags
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_algebra() {
        let f = Flags::SYN.with(Flags::RM);
        assert!(f.contains(Flags::SYN));
        assert!(f.contains(Flags::RM));
        assert!(!f.contains(Flags::ACK));
        assert!(!f.contains(Flags::SYN.with(Flags::ACK)));
        let g = f.without(Flags::SYN);
        assert!(!g.contains(Flags::SYN));
        let mut h = Flags::default();
        h.set(Flags::CE);
        assert!(h.contains(Flags::CE));
        h.clear(Flags::CE);
        assert_eq!(h, Flags::default());
    }

    #[test]
    fn wire_bytes_pads_small_frames() {
        let ack = Packet::ack(FlowId(1), NodeId(0), NodeId(1), 100);
        assert_eq!(ack.wire_bytes(), MIN_FRAME);
        let data = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, MSS);
        assert_eq!(data.wire_bytes(), 1500);
    }

    #[test]
    fn rtt_probe_requires_full_frame_and_rm() {
        let mut p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, MSS);
        assert!(!p.is_rtt_probe());
        p.flags.set(Flags::RM);
        assert!(p.is_rtt_probe());
        let mut small = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 100);
        small.flags.set(Flags::RM);
        assert!(!small.is_rtt_probe());
    }

    #[test]
    fn classification() {
        let data = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 10);
        assert!(data.is_data());
        assert!(!data.is_pure_ack());
        let ack = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 10);
        assert!(ack.is_pure_ack());
        assert!(!ack.is_data());
    }

    #[test]
    fn clone_counter_tallies_per_thread() {
        let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 10);
        let before = thread_packet_clones();
        let q = p.clone();
        assert_eq!(q, p);
        assert_eq!(thread_packet_clones() - before, 1);
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", Flags::SYN.with(Flags::ACK)), "SYN|ACK");
        assert_eq!(format!("{}", Flags::default()), "-");
    }
}
