//! Transport-endpoint interface.
//!
//! Protocols (TCP NewReno, DCTCP, TFC) are implemented outside this crate
//! against these traits. Endpoints never touch the simulator directly:
//! every handler receives an [`Effects`] sink into which it pushes
//! packets to emit, timers to arm, and notes for the application layer.
//! The simulator applies the effects after the handler returns, which
//! keeps borrows simple and the event order deterministic.

use crate::packet::{FlowId, NodeId, Packet};
use crate::units::{Dur, Time};

/// What an endpoint asks the simulator to do.
#[derive(Debug, Default)]
pub struct Effects {
    /// Packets to hand to the host NIC, in order.
    pub packets: Vec<Packet>,
    /// Timers to arm: fire after `Dur` with the given token.
    pub timers: Vec<(Dur, u64)>,
    /// Tokens of previously armed timers to cancel. Best-effort: a
    /// token with no pending timer is ignored, so endpoints keep their
    /// stale-generation checks as the source of truth and cancellation
    /// only spares the scheduler dead entries. Cancels are applied
    /// before this effect set's own `timers`.
    pub cancels: Vec<u64>,
    /// Upcalls for the simulator / application layer.
    pub notes: Vec<Note>,
}

impl Effects {
    /// Creates an empty effect sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a packet for transmission out of the host NIC.
    pub fn send(&mut self, pkt: Packet) {
        self.packets.push(pkt);
    }

    /// Arms a timer that fires after `after` carrying `token`.
    pub fn timer(&mut self, after: Dur, token: u64) {
        self.timers.push((after, token));
    }

    /// Cancels the pending timer carrying `token`, if any.
    pub fn cancel_timer(&mut self, token: u64) {
        self.cancels.push(token);
    }

    /// Emits an upcall note.
    pub fn note(&mut self, n: Note) {
        self.notes.push(n);
    }

    /// Whether no effect was produced.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
            && self.timers.is_empty()
            && self.cancels.is_empty()
            && self.notes.is_empty()
    }
}

/// Endpoint-to-simulator upcalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Note {
    /// The connection handshake completed (sender side).
    Established,
    /// `bytes` of new in-order payload were delivered to the application
    /// (receiver side). Drives goodput meters.
    Delivered {
        /// In-order payload bytes handed to the application.
        bytes: u64,
    },
    /// The receiver has the complete byte stream of a sized flow.
    ReceiverDone,
    /// The sender has every byte acknowledged and the flow closed.
    SenderDone,
    /// A retransmission timeout fired (for timeout accounting, Fig. 15b).
    Timeout,
    /// A packet was retransmitted (loss accounting).
    Retransmit,
    /// The sender adopted a new congestion window: TFC senders on every
    /// RMA window stamp, TCP-family senders on loss-recovery changes.
    /// Feeds flow window-acquisition telemetry.
    WindowAcquired {
        /// The adopted window in bytes.
        bytes: u64,
    },
    /// The sender measured one round-trip time (Fig. 6 reference data).
    RttSample {
        /// Measured RTT in nanoseconds.
        nanos: u64,
    },
}

/// Sender half of a transport connection, living at the source host.
pub trait SenderEndpoint: Send {
    /// Begins the connection (emits SYN).
    fn open(&mut self, now: Time, fx: &mut Effects);

    /// Adds application bytes to the send stream. `fx` lets an idle
    /// connection resume transmission immediately.
    fn push_data(&mut self, bytes: u64, now: Time, fx: &mut Effects);

    /// Marks the stream closed once everything pushed so far is
    /// delivered (emits FIN at the right point).
    fn close(&mut self, now: Time, fx: &mut Effects);

    /// Handles a packet addressed to this sender (ACKs).
    fn on_packet(&mut self, pkt: &Packet, now: Time, fx: &mut Effects);

    /// Handles a previously armed timer.
    fn on_timer(&mut self, token: u64, now: Time, fx: &mut Effects);

    /// Current congestion window in bytes (diagnostics).
    fn cwnd(&self) -> u64;

    /// Bytes acknowledged so far (diagnostics).
    fn acked_bytes(&self) -> u64;
}

/// Receiver half of a transport connection, living at the destination.
pub trait ReceiverEndpoint: Send {
    /// Handles a packet addressed to this receiver (SYN, data, FIN).
    fn on_packet(&mut self, pkt: &Packet, now: Time, fx: &mut Effects);

    /// In-order bytes delivered to the application so far.
    fn delivered_bytes(&self) -> u64;
}

/// Static description of a flow to be started.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to transfer, or `None` for an open-ended (on-off) flow fed
    /// later via `push_data`.
    pub bytes: Option<u64>,
    /// Allocation weight (TFC weighted-allocation extension; 1 = fair).
    pub weight: u8,
}

impl FlowSpec {
    /// A unit-weight sized flow.
    pub fn sized(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        Self {
            src,
            dst,
            bytes: Some(bytes),
            weight: 1,
        }
    }

    /// A unit-weight open-ended flow.
    pub fn open_ended(src: NodeId, dst: NodeId) -> Self {
        Self {
            src,
            dst,
            bytes: None,
            weight: 1,
        }
    }

    /// Sets the allocation weight.
    pub fn with_weight(mut self, weight: u8) -> Self {
        self.weight = weight.max(1);
        self
    }
}

/// Factory building protocol endpoints for new flows.
///
/// One stack instance configures a whole simulation (all flows use the
/// same protocol unless the experiment wires several stacks).
pub trait ProtocolStack: Send {
    /// Creates the sender half of `flow`.
    fn new_sender(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn SenderEndpoint>;

    /// Creates the receiver half of `flow`.
    fn new_receiver(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn ReceiverEndpoint>;

    /// Human-readable protocol name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeId;

    #[test]
    fn effects_accumulate() {
        let mut fx = Effects::new();
        assert!(fx.is_empty());
        fx.send(Packet::ack(FlowId(1), NodeId(0), NodeId(1), 5));
        fx.timer(Dur::micros(10), 7);
        fx.note(Note::Established);
        assert_eq!(fx.packets.len(), 1);
        assert_eq!(fx.timers, vec![(Dur::micros(10), 7)]);
        assert_eq!(fx.notes, vec![Note::Established]);
        assert!(!fx.is_empty());
    }
}
