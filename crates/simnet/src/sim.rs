//! The simulation engine.
//!
//! [`Simulator`] owns the network, the event queue, the protocol stack,
//! and the workload application, and runs the discrete-event loop. All
//! state mutation happens through events, so runs are deterministic for
//! a given seed and topology.
//!
//! The loop itself is layered: this module holds the state and the
//! public control surface, [`crate::sched`] orders the events, and
//! [`crate::handlers`] implements the per-event-kind handlers the
//! dispatch loop fans out to.

use std::collections::VecDeque;

use metrics::{FctCollector, FlowRecord, RateMeter};
use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use telemetry::{Telemetry, TelemetryConfig, TraceEvent};

use crate::app::{Application, FlowEvent};
use crate::arena::{PacketArena, PacketId};
use crate::endpoint::{Effects, FlowSpec, Note, ProtocolStack};
use crate::event::{Event, EventQueue};
use crate::fault::FaultAction;
use crate::flowtable::FlowMap;
use crate::node::{Node, PortStats};
use crate::packet::{FlowId, NodeId};
use crate::retire::{FlowRetirer, RetireConfig};
use crate::sched::{SchedulerKind, TimerHandle};
use crate::topology::Network;
use crate::trace::{QueueSampler, TraceCenter};
use crate::units::{Dur, Time};

/// XOR tag deriving the fault RNG stream from the run seed, so loss-
/// window draws never perturb the workload/jitter stream (same idiom as
/// the telemetry sampling seed).
const FAULT_RNG_TAG: u64 = 0xfa17_ca05_fa17_ca05;

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; every run with the same seed and inputs is identical.
    pub seed: u64,
    /// Hard stop time (`None` = run until no events remain).
    pub end: Option<Time>,
    /// Per-packet host processing delay, drawn uniformly from the range,
    /// applied between an endpoint emitting a packet and the NIC queue.
    /// Models the testbed's random end-host processing (§6.1.2, Fig. 6).
    pub host_jitter: Option<(Dur, Dur)>,
    /// Capacity of the packet-event log (0 = disabled). When enabled,
    /// the last N arrival/drop events are kept for post-run debugging
    /// via [`SimCore::packet_log`].
    pub packet_log: usize,
    /// Structured telemetry: typed event log, event-loop counters, TFC
    /// slot gauges (all off by default; see [`SimCore::telemetry`]).
    pub telemetry: TelemetryConfig,
    /// Event-scheduler backend. The timing wheel is the default; the
    /// reference heap exists for equivalence tests and benchmarks, and
    /// both produce byte-identical runs (see [`crate::sched`]).
    pub scheduler: SchedulerKind,
    /// Coalesce consecutive same-time switch arrivals on the same port
    /// into one batched dispatch (on by default). Off-path: per-event
    /// dispatch, kept for equivalence tests and benchmarks — both modes
    /// produce byte-identical runs (see [`crate::handlers`]).
    pub coalesce: bool,
    /// Bounded-memory flow retirement (off by default): completed flows
    /// fold into per-class quantile sketches and free all per-flow
    /// state, with ids recycled after a quarantine. Required for the
    /// streaming million-flow workloads; see [`crate::retire`].
    pub retire: Option<RetireConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            end: None,
            host_jitter: None,
            packet_log: 0,
            telemetry: TelemetryConfig::default(),
            scheduler: SchedulerKind::default(),
            coalesce: true,
            retire: None,
        }
    }
}

/// What happened to a packet (see [`SimConfig::packet_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketEventKind {
    /// Arrived at a node (hosts and switches).
    Arrival,
    /// Tail-dropped at a switch egress FIFO.
    Drop,
}

/// One entry of the packet-event log.
#[derive(Debug, Clone, Copy)]
pub struct PacketLogEntry {
    /// When it happened.
    pub at: Time,
    /// Where it happened.
    pub node: NodeId,
    /// What happened.
    pub kind: PacketEventKind,
    /// The flow involved.
    pub flow: FlowId,
    /// Sequence number of the packet (data) or 0.
    pub seq: u64,
    /// Payload length.
    pub payload: u64,
}

/// Book-keeping for one flow.
#[derive(Debug)]
pub struct FlowState {
    /// The flow's static description.
    pub spec: FlowSpec,
    /// When the application started the flow.
    pub started_at: Time,
    /// When the handshake completed (sender saw SYN-ACK).
    pub established_at: Option<Time>,
    /// When the receiver held the complete byte stream.
    pub receiver_done_at: Option<Time>,
    /// When the sender finished (all data acknowledged, FIN acked).
    pub sender_done_at: Option<Time>,
    /// In-order bytes delivered to the receiving application.
    pub delivered: u64,
    /// Retransmission timeouts suffered by the sender.
    pub timeouts: u64,
    /// Packets retransmitted by the sender.
    pub retransmits: u64,
    /// Optional goodput meter (delivered bytes per window).
    pub meter: Option<RateMeter>,
    /// Whether to forward `Delivered` events to the application.
    pub watch_delivery: bool,
    /// Whether to record sender RTT samples.
    pub watch_rtt: bool,
    /// Sender RTT samples `(time, rtt)` in ns, if watched.
    pub rtt_samples: Vec<(u64, u64)>,
    /// Workload class tag (0 by default; see
    /// [`SimCore::set_flow_class`]). Keys the per-class retirement
    /// sketches when flow retirement is on.
    pub class: u8,
}

pub(crate) enum AppCall {
    Timer(u64),
    Flow(FlowEvent),
    /// Deferred flow retirement: queued behind the flow's `Completed`
    /// event so the application still sees live state in its callback.
    Retire(FlowId),
}

/// Everything except the application: the part of the simulator that
/// [`SimApi`] exposes to application callbacks.
///
/// Fields are `pub(crate)` so the event handlers in [`crate::handlers`]
/// can borrow them disjointly.
pub struct SimCore {
    pub(crate) now: Time,
    pub(crate) events: EventQueue,
    pub(crate) nodes: Vec<Node>,
    pub(crate) hosts: Vec<NodeId>,
    pub(crate) switches: Vec<NodeId>,
    pub(crate) stack: Box<dyn ProtocolStack>,
    /// Flow states in a dense slab. Ids are allocated sequentially;
    /// without retirement they are never recycled and `flows` only
    /// grows, with retirement ([`SimConfig::retire`]) completed flows
    /// leave the slab and their ids return after a quarantine, so the
    /// slab length is bounded by peak concurrency.
    pub(crate) flows: FlowMap<FlowState>,
    /// Next never-used flow id (ids below it are live, retired, or
    /// quarantined).
    pub(crate) next_flow_id: u64,
    /// Retired ids awaiting reuse, oldest first, with their retirement
    /// times; an id leaves quarantine `retire.reuse_after` later.
    pub(crate) free_ids: VecDeque<(Time, FlowId)>,
    /// The retirement pipeline, when [`SimConfig::retire`] is set.
    pub(crate) retirer: Option<FlowRetirer>,
    /// Pending cancellable host-timer handles per flow, as
    /// `(endpoint token, handle)` pairs; entries leave on fire/cancel.
    pub(crate) host_timers: Vec<Vec<(u64, TimerHandle)>>,
    /// Pending cancellable policy-timer handles per node id.
    pub(crate) policy_timers: Vec<Vec<(u64, TimerHandle)>>,
    pub(crate) rng: StdRng,
    pub(crate) fault_rng: StdRng,
    pub(crate) trace: TraceCenter,
    pub(crate) samplers: Vec<QueueSampler>,
    pub(crate) pending_app: VecDeque<AppCall>,
    pub(crate) cfg: SimConfig,
    pub(crate) stopped: bool,
    pub(crate) fct: FctCollector,
    pub(crate) events_processed: u64,
    pub(crate) packet_log: VecDeque<PacketLogEntry>,
    pub(crate) telemetry: Telemetry,
    /// Every in-flight packet, slab-allocated; events carry ids into it.
    pub(crate) packets: PacketArena,
    /// Reusable scratch for coalesced arrival batches (see
    /// [`crate::handlers`]); empty between dispatches.
    pub(crate) arrival_batch: Vec<PacketId>,
}

/// The simulator: a [`SimCore`] plus the workload application.
pub struct Simulator<A: Application> {
    core: SimCore,
    app: A,
}

/// Handle through which applications drive the simulation.
pub struct SimApi<'a> {
    core: &'a mut SimCore,
}

impl SimCore {
    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Starts a flow and returns its id. The handshake begins
    /// immediately; data transfer follows the protocol's rules.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are not distinct hosts.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(spec.src != spec.dst, "flow endpoints must differ");
        let flow = self.alloc_flow_id();
        let sender = self.stack.new_sender(flow, &spec);
        let receiver = self.stack.new_receiver(flow, &spec);
        let (src, dst) = (spec.src, spec.dst);
        if self.telemetry.log.enabled() {
            self.telemetry.log.record(
                self.now.nanos(),
                TraceEvent::FlowOpen {
                    flow: flow.0,
                    src: src.0,
                    dst: dst.0,
                    bytes: spec.bytes.unwrap_or(0),
                },
            );
        }
        let prev = self.flows.insert(
            flow,
            FlowState {
                spec,
                started_at: self.now,
                established_at: None,
                receiver_done_at: None,
                sender_done_at: None,
                delivered: 0,
                timeouts: 0,
                retransmits: 0,
                meter: None,
                watch_delivery: false,
                watch_rtt: false,
                rtt_samples: Vec::new(),
                class: 0,
            },
        );
        debug_assert!(prev.is_none(), "allocated id {flow:?} was occupied");
        if self.host_timers.len() <= flow.0 as usize {
            self.host_timers.push(Vec::new());
        }
        debug_assert!(self.host_timers[flow.0 as usize].is_empty());
        let Node::Host(h) = &mut self.nodes[dst.0 as usize] else {
            panic!("flow dst {dst:?} is not a host");
        };
        h.receivers.insert(flow, receiver);
        let Node::Host(h) = &mut self.nodes[src.0 as usize] else {
            panic!("flow src {src:?} is not a host");
        };
        h.senders.insert(flow, sender);
        let mut fx = Effects::new();
        let now = self.now;
        let Node::Host(h) = &mut self.nodes[src.0 as usize] else {
            unreachable!()
        };
        h.senders
            .get_mut(flow)
            .expect("just inserted")
            .open(now, &mut fx);
        self.apply_host_fx(src, flow, fx);
        flow
    }

    /// Adds `bytes` to an open-ended flow's send stream.
    ///
    /// # Panics
    ///
    /// Panics if the flow or its sender does not exist.
    pub fn push_data(&mut self, flow: FlowId, bytes: u64) {
        let src = self.flows.get(flow).expect("flow exists").spec.src;
        let now = self.now;
        let mut fx = Effects::new();
        let Node::Host(h) = &mut self.nodes[src.0 as usize] else {
            unreachable!()
        };
        h.senders
            .get_mut(flow)
            .expect("sender exists")
            .push_data(bytes, now, &mut fx);
        self.apply_host_fx(src, flow, fx);
    }

    /// Closes an open-ended flow (FIN once pushed data is delivered).
    ///
    /// A no-op when the flow or its sender no longer exists (never
    /// started, or already torn down) — closing twice is safe, so
    /// workloads need not track liveness across faults.
    pub fn close_flow(&mut self, flow: FlowId) {
        let Some(state) = self.flows.get(flow) else {
            return;
        };
        let src = state.spec.src;
        let now = self.now;
        let mut fx = Effects::new();
        let Node::Host(h) = &mut self.nodes[src.0 as usize] else {
            unreachable!()
        };
        let Some(s) = h.senders.get_mut(flow) else {
            return;
        };
        s.close(now, &mut fx);
        self.apply_host_fx(src, flow, fx);
    }

    /// Schedules a fault to take effect at simulated time `at` (clamped
    /// to now). Identical seeds with identical fault timelines yield
    /// byte-identical runs; see [`crate::fault`] for the taxonomy.
    pub fn inject_fault(&mut self, at: Time, action: FaultAction) {
        self.events
            .schedule(at.max(self.now), Event::Fault { action });
    }

    /// Schedules every `(time, action)` pair of a fault timeline.
    pub fn inject_faults(&mut self, plan: &[(Time, FaultAction)]) {
        for &(at, action) in plan {
            self.inject_fault(at, action);
        }
    }

    /// Arms an application timer firing after `after`.
    pub fn set_timer(&mut self, after: Dur, token: u64) {
        self.events
            .schedule(self.now + after, Event::AppTimer { token });
    }

    /// Arms an application timer at absolute time `at` (clamped to now).
    pub fn set_timer_at(&mut self, at: Time, token: u64) {
        let at = at.max(self.now);
        self.events.schedule(at, Event::AppTimer { token });
    }

    /// Tags a flow with a workload class (defaults to 0). Classes key
    /// the per-class retirement sketches; the tag is a no-op for flows
    /// that are already gone.
    pub fn set_flow_class(&mut self, flow: FlowId, class: u8) {
        if let Some(state) = self.flows.get_mut(flow) {
            state.class = class;
        }
    }

    /// Attaches a goodput meter (window `window`) to a flow.
    pub fn meter_flow(&mut self, flow: FlowId, window: Dur) {
        let state = self.flows.get_mut(flow).expect("flow exists");
        state.meter = Some(RateMeter::new(format!("flow{}", flow.0), window.as_nanos()));
    }

    /// Requests `Delivered` events for a flow.
    pub fn watch_delivery(&mut self, flow: FlowId) {
        self.flows
            .get_mut(flow)
            .expect("flow exists")
            .watch_delivery = true;
    }

    /// Requests sender RTT sample recording for a flow.
    pub fn watch_rtt(&mut self, flow: FlowId) {
        self.flows
            .get_mut(flow)
            .expect("flow exists")
            .watch_rtt = true;
    }

    /// Registers a periodic queue-length sampler.
    pub fn add_queue_sampler(&mut self, s: QueueSampler) {
        let at = self.now + s.every;
        let idx = self.samplers.len();
        self.samplers.push(s);
        self.events.schedule(at, Event::Sample { sampler: idx });
    }

    /// The seeded RNG (shared by workloads for reproducibility).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Stops the simulation after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Immutable flow state.
    ///
    /// # Panics
    ///
    /// Panics if the flow never existed or was retired (see
    /// [`SimConfig::retire`]).
    pub fn flow(&self, flow: FlowId) -> &FlowState {
        self.flows.get(flow).expect("flow exists (not retired)")
    }

    /// Whether the flow currently has live state (retired flows do not).
    pub fn has_flow(&self, flow: FlowId) -> bool {
        self.flows.contains(flow)
    }

    /// Iterates all live flows in id order. Under retirement, completed
    /// flows are absent: their statistics live in [`SimCore::retirer`].
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, &FlowState)> {
        self.flows.iter()
    }

    /// The collected traces.
    pub fn trace(&self) -> &TraceCenter {
        &self.trace
    }

    /// The structured telemetry state (event log, loop counters, TFC
    /// slot gauges).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable telemetry access (tests, exporters).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The run's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Completed-flow records. Empty when flow retirement is on — the
    /// per-class sketches in [`SimCore::retirer`] replace the unbounded
    /// record vector.
    pub fn fct(&self) -> &FctCollector {
        &self.fct
    }

    /// The flow-retirement pipeline, when enabled.
    pub fn retirer(&self) -> Option<&FlowRetirer> {
        self.retirer.as_ref()
    }

    /// Flow-slab occupancy diagnostics: `(live, peak_live, capacity)`.
    /// With retirement on, `capacity` is bounded by peak concurrency —
    /// the resident-memory half of the million-flow claim.
    pub fn flow_slab_stats(&self) -> (usize, usize, usize) {
        (self.flows.len(), self.flows.peak_len(), self.flows.capacity())
    }

    /// Host ids in creation order.
    pub fn host_ids(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Switch ids in creation order.
    pub fn switch_ids(&self) -> &[NodeId] {
        &self.switches
    }

    /// Total enqueue drops across every switch port.
    pub fn total_drops(&self) -> u64 {
        self.switches
            .iter()
            .map(|&s| match &self.nodes[s.0 as usize] {
                Node::Switch(sw) => sw.total_drops(),
                Node::Host(_) => 0,
            })
            .sum()
    }

    /// Per-port statistics of a switch.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a switch or `port` does not exist.
    pub fn port_stats(&self, node: NodeId, port: usize) -> PortStats {
        let Node::Switch(sw) = &self.nodes[node.0 as usize] else {
            panic!("{node:?} is not a switch");
        };
        sw.ports[port].stats()
    }

    /// Egress port of `switch` toward host `dst`: the deterministic
    /// primary (lowest equal-cost member). Per-packet forwarding hashes
    /// across the full set; see [`next_hops_of`](Self::next_hops_of).
    ///
    /// # Panics
    ///
    /// Panics if `switch` is not a switch.
    pub fn route_of(&self, switch: NodeId, dst: NodeId) -> Option<usize> {
        let Node::Switch(sw) = &self.nodes[switch.0 as usize] else {
            panic!("{switch:?} is not a switch");
        };
        sw.route(dst)
    }

    /// All equal-cost egress ports of `switch` toward host `dst`
    /// (ascending; empty when unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `switch` is not a switch.
    pub fn next_hops_of(&self, switch: NodeId, dst: NodeId) -> Vec<usize> {
        let Node::Switch(sw) = &self.nodes[switch.0 as usize] else {
            panic!("{switch:?} is not a switch");
        };
        match sw.routes.next_hops(dst) {
            crate::node::NextHops::None => Vec::new(),
            crate::node::NextHops::Single(p) => vec![p as usize],
            crate::node::NextHops::Ecmp(set) => set.iter().map(|&p| p as usize).collect(),
        }
    }

    /// Route surgery: overwrites the equal-cost next hops of `switch`
    /// toward `dst` (`ports` ascending and duplicate-free; empty makes
    /// `dst` unreachable there, turning packets into counted
    /// `no_route_drops`). Built topologies are always validated
    /// connected, so this is how tests and dynamic-fabric experiments
    /// create sparse tables.
    ///
    /// # Panics
    ///
    /// Panics if `switch` is not a switch or a port index is out of
    /// range.
    pub fn set_next_hops(&mut self, switch: NodeId, dst: NodeId, ports: &[usize]) {
        let Node::Switch(sw) = &mut self.nodes[switch.0 as usize] else {
            panic!("{switch:?} is not a switch");
        };
        let ports: Vec<u16> = ports
            .iter()
            .map(|&p| {
                assert!(p < sw.ports.len(), "port {p} out of range at {switch:?}");
                p as u16
            })
            .collect();
        sw.routes.set(dst.0 as usize, &ports);
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The packet-event log (empty unless [`SimConfig::packet_log`] set).
    pub fn packet_log(&self) -> &VecDeque<PacketLogEntry> {
        &self.packet_log
    }

    /// Appends to the packet-event log from a borrow of the arena slot —
    /// the log copies three scalar fields, never the packet.
    pub(crate) fn log_packet(&mut self, node: NodeId, kind: PacketEventKind, id: PacketId) {
        if self.cfg.packet_log == 0 {
            return;
        }
        if self.packet_log.len() == self.cfg.packet_log {
            self.packet_log.pop_front();
        }
        let pkt = self.packets.get(id);
        self.packet_log.push_back(PacketLogEntry {
            at: self.now,
            node,
            kind,
            flow: pkt.flow,
            seq: pkt.seq,
            payload: pkt.payload,
        });
    }

    /// The in-flight packet arena (diagnostics: live slots, high-water).
    pub fn packet_arena(&self) -> &PacketArena {
        &self.packets
    }

    /// Current congestion window of a flow's sender, if it exists.
    pub fn sender_cwnd(&self, flow: FlowId) -> Option<u64> {
        let src = self.flows.get(flow)?.spec.src;
        let Node::Host(h) = &self.nodes[src.0 as usize] else {
            return None;
        };
        h.senders.get(flow).map(|s| s.cwnd())
    }

    // ------------------------------------------------------------------
    // Internal machinery.
    // ------------------------------------------------------------------

    /// Allocates a flow id: a quarantine-expired retired id when
    /// retirement is on (oldest first, so reuse order is deterministic),
    /// otherwise the next fresh id.
    fn alloc_flow_id(&mut self) -> FlowId {
        if let Some(cfg) = &self.cfg.retire {
            if let Some(&(retired_at, id)) = self.free_ids.front() {
                if retired_at + cfg.reuse_after <= self.now {
                    self.free_ids.pop_front();
                    return id;
                }
            }
        }
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        id
    }

    /// Tears down a finished flow: folds its scalars into the retirer's
    /// per-class sketches, cancels its pending timers, removes both
    /// endpoints (bumping the slot generations), frees the slab entry,
    /// and quarantines the id. Packets of the dead flow still in flight
    /// take the existing stale-packet path at the hosts.
    fn retire_flow(&mut self, flow: FlowId) {
        let Some(state) = self.flows.remove(flow) else {
            return;
        };
        let retirer = self.retirer.as_mut().expect("retire_flow requires retirer");
        retirer.retire(&state);
        for (_, handle) in self.host_timers[flow.0 as usize].drain(..) {
            self.events.cancel(handle);
        }
        let (src, dst) = (state.spec.src, state.spec.dst);
        if let Node::Host(h) = &mut self.nodes[src.0 as usize] {
            h.senders.remove(flow);
        }
        if let Node::Host(h) = &mut self.nodes[dst.0 as usize] {
            h.receivers.remove(flow);
        }
        self.free_ids.push_back((self.now, flow));
    }

    pub(crate) fn apply_host_fx(&mut self, host: NodeId, flow: FlowId, fx: Effects) {
        for mut pkt in fx.packets {
            pkt.sent_at = self.now;
            let jitter = match self.cfg.host_jitter {
                Some((lo, hi)) if hi > lo => Dur(self.rng.gen_range(lo.as_nanos()..=hi.as_nanos())),
                Some((lo, _)) => lo,
                None => Dur::ZERO,
            };
            // The endpoint-built packet moves into the arena here; from
            // this point on it travels the fabric as an id.
            let pkt = self.packets.alloc(pkt);
            self.events
                .schedule(self.now + jitter, Event::NicEnqueue { node: host, pkt });
        }
        // Cancels first: an endpoint that re-arms in the same callback
        // cancels the old generation before scheduling the new one.
        for token in fx.cancels {
            let pending = &mut self.host_timers[flow.0 as usize];
            if let Some(i) = pending.iter().position(|&(t, _)| t == token) {
                let (_, handle) = pending.swap_remove(i);
                self.events.cancel(handle);
            }
        }
        for (after, token) in fx.timers {
            let handle = self.events.schedule_cancellable(
                self.now + after,
                Event::HostTimer {
                    node: host,
                    flow,
                    token,
                },
            );
            self.host_timers[flow.0 as usize].push((token, handle));
        }
        for note in fx.notes {
            self.handle_note(flow, note);
        }
    }

    pub(crate) fn handle_note(&mut self, flow: FlowId, note: Note) {
        let now = self.now;
        let tel_on = self.telemetry.log.enabled();
        let finishing = matches!(note, Note::ReceiverDone | Note::SenderDone);
        let Some(state) = self.flows.get_mut(flow) else {
            return;
        };
        match note {
            Note::Established => {
                if state.established_at.is_none() {
                    state.established_at = Some(now);
                    if tel_on {
                        self.telemetry
                            .log
                            .record(now.nanos(), TraceEvent::FlowEstablished { flow: flow.0 });
                    }
                    self.pending_app
                        .push_back(AppCall::Flow(FlowEvent::Established(flow)));
                }
            }
            Note::Delivered { bytes } => {
                state.delivered += bytes;
                if let Some(m) = &mut state.meter {
                    m.add(now.nanos(), bytes);
                }
                if tel_on {
                    self.telemetry.log.record(
                        now.nanos(),
                        TraceEvent::PktDeliver {
                            node: state.spec.dst.0,
                            flow: flow.0,
                            bytes,
                        },
                    );
                }
                if state.watch_delivery {
                    self.pending_app
                        .push_back(AppCall::Flow(FlowEvent::Delivered { flow, bytes }));
                }
            }
            Note::ReceiverDone => {
                if state.receiver_done_at.is_none() {
                    state.receiver_done_at = Some(now);
                    // Streaming runs keep FCTs in the retirer's bounded
                    // sketches instead of this unbounded record vector.
                    if self.retirer.is_none() {
                        let bytes = state.spec.bytes.unwrap_or(state.delivered);
                        self.fct.record(FlowRecord {
                            bytes,
                            start_ns: state.started_at.nanos(),
                            end_ns: now.nanos(),
                        });
                    }
                    self.pending_app
                        .push_back(AppCall::Flow(FlowEvent::Completed(flow)));
                }
            }
            Note::SenderDone => {
                if state.sender_done_at.is_none() {
                    state.sender_done_at = Some(now);
                    if tel_on {
                        self.telemetry.log.record(
                            now.nanos(),
                            TraceEvent::FlowFin {
                                flow: flow.0,
                                delivered: state.delivered,
                            },
                        );
                    }
                }
            }
            Note::Timeout => {
                state.timeouts += 1;
                if tel_on {
                    self.telemetry
                        .log
                        .record(now.nanos(), TraceEvent::FlowRto { flow: flow.0 });
                }
            }
            Note::Retransmit => {
                state.retransmits += 1;
                if tel_on {
                    self.telemetry
                        .log
                        .record(now.nanos(), TraceEvent::FlowRetransmit { flow: flow.0 });
                }
            }
            Note::WindowAcquired { bytes } => {
                if tel_on {
                    self.telemetry.log.record(
                        now.nanos(),
                        TraceEvent::FlowWindowAcquired {
                            flow: flow.0,
                            window: bytes,
                        },
                    );
                }
            }
            Note::RttSample { nanos } => {
                if state.watch_rtt {
                    state.rtt_samples.push((now.nanos(), nanos));
                }
                if tel_on {
                    self.telemetry.log.record(
                        now.nanos(),
                        TraceEvent::FlowRttSample {
                            flow: flow.0,
                            nanos,
                        },
                    );
                }
            }
        }
        // Both sides done (receiver holds the stream, sender saw its
        // FIN acked): under retirement the flow's state leaves the
        // simulation. The teardown is queued behind the already-pending
        // `Completed` app event so the application's callback still
        // observes the flow; `retire_flow` ignores a second queuing.
        if finishing
            && self.retirer.is_some()
            && self
                .flows
                .get(flow)
                .is_some_and(|s| s.receiver_done_at.is_some() && s.sender_done_at.is_some())
        {
            self.pending_app.push_back(AppCall::Retire(flow));
        }
    }
}

impl<A: Application> Simulator<A> {
    /// Builds a simulator from a network, protocol stack, application,
    /// and config.
    pub fn new(net: Network, stack: Box<dyn ProtocolStack>, app: A, cfg: SimConfig) -> Self {
        let telemetry = Telemetry::new(&cfg.telemetry, cfg.seed, &Event::KIND_NAMES);
        let policy_timers = net.nodes.iter().map(|_| Vec::new()).collect();
        let retirer = cfg.retire.clone().map(FlowRetirer::new);
        let mut events = EventQueue::with_kind(cfg.scheduler);
        if let SchedulerKind::Sharded { threads } = cfg.scheduler {
            // Partition the fabric per switch (hosts ride with their
            // switch) and use the minimum cross-shard link delay as the
            // scheduler's conservative lookahead window.
            let plan = crate::topology::shard_plan(&net.nodes, &net.switches, threads);
            events.configure_shards(plan.shard_of, plan.shards, plan.min_cut_delay.as_nanos());
        }
        Self {
            core: SimCore {
                now: Time::ZERO,
                events,
                nodes: net.nodes,
                hosts: net.hosts,
                switches: net.switches,
                stack,
                flows: FlowMap::new(),
                next_flow_id: 0,
                free_ids: VecDeque::new(),
                retirer,
                host_timers: Vec::new(),
                policy_timers,
                rng: StdRng::seed_from_u64(cfg.seed),
                fault_rng: StdRng::seed_from_u64(cfg.seed ^ FAULT_RNG_TAG),
                trace: TraceCenter::new(),
                samplers: Vec::new(),
                pending_app: VecDeque::new(),
                cfg,
                stopped: false,
                fct: FctCollector::new(),
                events_processed: 0,
                packet_log: VecDeque::new(),
                telemetry,
                packets: PacketArena::new(),
                arrival_batch: Vec::new(),
            },
            app,
        }
    }

    /// Runs to completion: until no events remain, the configured end
    /// time passes, or the application calls [`SimApi::stop`].
    pub fn run(&mut self) {
        self.app.start(&mut SimApi {
            core: &mut self.core,
        });
        self.drain_app_calls();
        while !self.core.stopped {
            let Some((t, ev)) = self.core.events.pop() else {
                break;
            };
            if let Some(end) = self.core.cfg.end {
                if t > end {
                    self.core.now = end;
                    break;
                }
            }
            debug_assert!(t >= self.core.now, "event time moved backwards");
            self.core.now = t;
            self.core.handle_event(ev);
            self.drain_app_calls();
        }
        // Flush goodput meters so trailing zero-windows are emitted.
        let now = self.core.now;
        for (_, state) in self.core.flows.iter_mut() {
            if let Some(m) = &mut state.meter {
                m.flush(now.nanos());
            }
        }
        // Fold the sharded scheduler's per-shard counters into the loop
        // stats (shard-index order, so the merge is deterministic).
        if let Some((windows, shards)) = self.core.events.shard_stats() {
            self.core.telemetry.loop_stats.set_shards(
                windows,
                shards.iter().map(|s| (s.pushes, s.drained)).collect(),
            );
        }
    }

    fn drain_app_calls(&mut self) {
        while let Some(call) = self.core.pending_app.pop_front() {
            let mut api = SimApi {
                core: &mut self.core,
            };
            match call {
                AppCall::Timer(token) => self.app.on_timer(token, &mut api),
                AppCall::Flow(ev) => self.app.on_flow_event(ev, &mut api),
                AppCall::Retire(flow) => self.core.retire_flow(flow),
            }
        }
    }

    /// Read access to the core (traces, flows, stats).
    pub fn core(&self) -> &SimCore {
        &self.core
    }

    /// Mutable access to the core (pre-run flow setup, samplers).
    pub fn core_mut(&mut self) -> &mut SimCore {
        &mut self.core
    }

    /// The application, e.g. to read workload-level results after `run`.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable application access.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }
}

impl<'a> SimApi<'a> {
    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.core.now()
    }

    /// Starts a flow; see [`SimCore::start_flow`].
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.core.start_flow(spec)
    }

    /// Pushes data on an open-ended flow; see [`SimCore::push_data`].
    pub fn push_data(&mut self, flow: FlowId, bytes: u64) {
        self.core.push_data(flow, bytes)
    }

    /// Closes an open-ended flow; see [`SimCore::close_flow`].
    pub fn close_flow(&mut self, flow: FlowId) {
        self.core.close_flow(flow)
    }

    /// Schedules a fault; see [`SimCore::inject_fault`].
    pub fn inject_fault(&mut self, at: Time, action: FaultAction) {
        self.core.inject_fault(at, action)
    }

    /// Arms an application timer after `after`.
    pub fn set_timer(&mut self, after: Dur, token: u64) {
        self.core.set_timer(after, token)
    }

    /// Arms an application timer at absolute `at`.
    pub fn set_timer_at(&mut self, at: Time, token: u64) {
        self.core.set_timer_at(at, token)
    }

    /// Attaches a goodput meter to a flow.
    pub fn meter_flow(&mut self, flow: FlowId, window: Dur) {
        self.core.meter_flow(flow, window)
    }

    /// Requests `Delivered` events for a flow.
    pub fn watch_delivery(&mut self, flow: FlowId) {
        self.core.watch_delivery(flow)
    }

    /// Requests sender RTT sample recording for a flow.
    pub fn watch_rtt(&mut self, flow: FlowId) {
        self.core.watch_rtt(flow)
    }

    /// Tags a flow with a workload class; see
    /// [`SimCore::set_flow_class`].
    pub fn set_flow_class(&mut self, flow: FlowId, class: u8) {
        self.core.set_flow_class(flow, class)
    }

    /// Flow state (delivered bytes, timestamps, counters).
    pub fn flow(&self, flow: FlowId) -> &FlowState {
        self.core.flow(flow)
    }

    /// Whether the flow still has live state (false once retired).
    pub fn has_flow(&self, flow: FlowId) -> bool {
        self.core.has_flow(flow)
    }

    /// The seeded RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.core.rng()
    }

    /// Stops the simulation.
    pub fn stop(&mut self) {
        self.core.stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::NullApp;
    use crate::endpoint::{ReceiverEndpoint, SenderEndpoint};
    use crate::packet::{Flags, Packet, MSS};
    use crate::topology::TopologyBuilder;
    use crate::units::Bandwidth;

    /// A minimal "protocol": the sender emits one sized data packet per
    /// `push_data`; the receiver just counts. No handshake, no ACKs —
    /// for timing tests of the forwarding pipeline itself.
    struct BlastSender {
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        sent: u64,
    }

    impl SenderEndpoint for BlastSender {
        fn open(&mut self, _now: Time, _fx: &mut Effects) {}
        fn push_data(&mut self, bytes: u64, _now: Time, fx: &mut Effects) {
            let pkt = Packet::data(self.flow, self.src, self.dst, self.sent, bytes);
            self.sent += bytes;
            fx.send(pkt);
        }
        fn close(&mut self, _now: Time, _fx: &mut Effects) {}
        fn on_packet(&mut self, _pkt: &Packet, _now: Time, _fx: &mut Effects) {}
        fn on_timer(&mut self, _token: u64, _now: Time, _fx: &mut Effects) {}
        fn cwnd(&self) -> u64 {
            u64::MAX
        }
        fn acked_bytes(&self) -> u64 {
            0
        }
    }

    struct CountReceiver {
        got: u64,
    }

    impl ReceiverEndpoint for CountReceiver {
        fn on_packet(&mut self, pkt: &Packet, _now: Time, fx: &mut Effects) {
            self.got += pkt.payload;
            fx.note(Note::Delivered { bytes: pkt.payload });
        }
        fn delivered_bytes(&self) -> u64 {
            self.got
        }
    }

    pub(super) struct BlastStack;

    impl ProtocolStack for BlastStack {
        fn new_sender(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn SenderEndpoint> {
            Box::new(BlastSender {
                flow,
                src: spec.src,
                dst: spec.dst,
                sent: 0,
            })
        }
        fn new_receiver(&self, _flow: FlowId, _spec: &FlowSpec) -> Box<dyn ReceiverEndpoint> {
            Box::new(CountReceiver { got: 0 })
        }
        fn name(&self) -> &'static str {
            "blast"
        }
    }

    fn two_host_sim(rate: Bandwidth, delay: Dur) -> (Simulator<NullApp>, FlowId) {
        let mut t = TopologyBuilder::new();
        let h1 = t.host();
        let h2 = t.host();
        let s = t.switch();
        t.link(h1, s, rate, delay);
        t.link(h2, s, rate, delay);
        let net = t.build_drop_tail();
        let mut sim = Simulator::new(net, Box::new(BlastStack), NullApp, SimConfig::default());
        let flow = sim.core_mut().start_flow(FlowSpec {
            src: h1,
            dst: h2,
            bytes: None,
            weight: 1,
        });
        (sim, flow)
    }

    #[test]
    fn store_and_forward_latency_is_exact() {
        // One MSS packet over host -> switch -> host at 1 Gbps with 1 µs
        // propagation per link: 2 × (12 µs serialisation + 1 µs prop).
        let (mut sim, flow) = two_host_sim(Bandwidth::gbps(1), Dur::micros(1));
        sim.core_mut().push_data(flow, MSS);
        sim.run();
        let st = sim.core().flow(flow);
        assert_eq!(st.delivered, MSS);
        assert_eq!(sim.core().now(), Time(2 * (12_000 + 1_000)));
    }

    #[test]
    fn back_to_back_packets_pipeline() {
        // Two packets: the second arrives one serialisation time after
        // the first (pipelined across the two hops).
        let (mut sim, flow) = two_host_sim(Bandwidth::gbps(1), Dur::micros(1));
        sim.core_mut().push_data(flow, MSS);
        sim.core_mut().push_data(flow, MSS);
        sim.run();
        assert_eq!(sim.core().flow(flow).delivered, 2 * MSS);
        assert_eq!(sim.core().now(), Time(2 * (12_000 + 1_000) + 12_000));
    }

    #[test]
    fn host_jitter_delays_but_delivers() {
        let mut t = TopologyBuilder::new();
        let h1 = t.host();
        let h2 = t.host();
        let s = t.switch();
        t.link(h1, s, Bandwidth::gbps(1), Dur::micros(1));
        t.link(h2, s, Bandwidth::gbps(1), Dur::micros(1));
        let net = t.build_drop_tail();
        let mut sim = Simulator::new(
            net,
            Box::new(BlastStack),
            NullApp,
            SimConfig {
                host_jitter: Some((Dur::micros(5), Dur::micros(9))),
                ..Default::default()
            },
        );
        let flow = sim.core_mut().start_flow(FlowSpec {
            src: h1,
            dst: h2,
            bytes: None,
            weight: 1,
        });
        sim.core_mut().push_data(flow, MSS);
        sim.run();
        let base = 2 * (12_000 + 1_000);
        let now = sim.core().now().nanos();
        assert!(now >= base + 5_000 && now <= base + 9_000, "got {now}");
        assert_eq!(sim.core().flow(flow).delivered, MSS);
    }

    #[test]
    fn queue_sampler_records_series() {
        let (mut sim, flow) = two_host_sim(Bandwidth::gbps(1), Dur::micros(1));
        let sw = sim.core().switch_ids()[0];
        sim.core_mut()
            .add_queue_sampler(crate::trace::QueueSampler {
                node: sw,
                port: 1,
                every: Dur::micros(5),
                key: "q".into(),
                until: Some(Time(50_000)),
            });
        for _ in 0..8 {
            sim.core_mut().push_data(flow, MSS);
        }
        sim.run();
        let ts = sim.core().trace().get("q").expect("series exists");
        assert!(ts.len() >= 9, "only {} samples", ts.len());
        assert!(ts.max_value().unwrap() > 0.0, "queue never observed");
    }

    #[test]
    fn meter_reports_goodput() {
        let (mut sim, flow) = two_host_sim(Bandwidth::gbps(1), Dur::micros(1));
        sim.core_mut().meter_flow(flow, Dur::micros(50));
        for _ in 0..10 {
            sim.core_mut().push_data(flow, MSS);
        }
        sim.run();
        let st = sim.core().flow(flow);
        let m = st.meter.as_ref().expect("meter attached");
        // 10 × 1460 B over ~146 µs of delivery: some window should show
        // close to line-rate goodput.
        assert!(m.series().max_value().unwrap() > 0.5e9);
    }

    #[test]
    fn overflow_drops_are_counted() {
        // 1 kB of switch buffer cannot hold a burst of full frames.
        let mut t = TopologyBuilder::new();
        let h1 = t.host();
        let h2 = t.host();
        let s = t.switch();
        t.link(h1, s, Bandwidth::gbps(10), Dur::micros(1));
        t.link(h2, s, Bandwidth::gbps(1), Dur::micros(1));
        t.switch_buffer(1_000);
        let net = t.build_drop_tail();
        let mut sim = Simulator::new(net, Box::new(BlastStack), NullApp, SimConfig::default());
        let flow = sim.core_mut().start_flow(FlowSpec {
            src: h1,
            dst: h2,
            bytes: None,
            weight: 1,
        });
        for _ in 0..10 {
            sim.core_mut().push_data(flow, MSS);
        }
        sim.run();
        assert!(sim.core().total_drops() > 0);
        assert!(sim.core().flow(flow).delivered < 10 * MSS);
    }

    #[test]
    fn end_time_stops_simulation() {
        let (mut sim, flow) = two_host_sim(Bandwidth::gbps(1), Dur::micros(1));
        sim.core_mut().cfg.end = Some(Time(10_000)); // before delivery
        sim.core_mut().push_data(flow, MSS);
        sim.run();
        assert_eq!(sim.core().flow(flow).delivered, 0);
        assert_eq!(sim.core().now(), Time(10_000));
    }

    #[test]
    fn stale_packets_of_unknown_flows_are_ignored() {
        // Deliver a packet for a flow id that does not exist: no panic.
        let (mut sim, _) = two_host_sim(Bandwidth::gbps(1), Dur::micros(1));
        let hosts = sim.core().host_ids().to_vec();
        let mut pkt = Packet::data(FlowId(999), hosts[0], hosts[1], 0, 100);
        pkt.flags.set(Flags::ACK);
        let pkt = sim.core_mut().packets.alloc(pkt);
        sim.core_mut().events.schedule(
            Time(1),
            Event::Arrival {
                node: hosts[1],
                port: 0,
                pkt,
            },
        );
        sim.run();
        // The stale packet's slot was still recycled.
        assert!(sim.core().packet_arena().is_empty());
    }
}

#[cfg(test)]
mod packet_log_tests {
    use super::tests::BlastStack;
    use super::*;
    use crate::app::NullApp;
    use crate::packet::MSS;
    use crate::topology::TopologyBuilder;
    use crate::units::Bandwidth;

    fn lossy_sim(log: usize) -> (Simulator<NullApp>, FlowId) {
        let mut t = TopologyBuilder::new();
        let h1 = t.host();
        let h2 = t.host();
        let s = t.switch();
        t.link(h1, s, Bandwidth::gbps(10), Dur::micros(1));
        t.link(h2, s, Bandwidth::gbps(1), Dur::micros(1));
        t.switch_buffer(2_000);
        let net = t.build_drop_tail();
        let mut sim = Simulator::new(
            net,
            Box::new(BlastStack),
            NullApp,
            SimConfig {
                packet_log: log,
                ..Default::default()
            },
        );
        let flow = sim.core_mut().start_flow(FlowSpec::open_ended(h1, h2));
        (sim, flow)
    }

    #[test]
    fn disabled_log_stays_empty() {
        let (mut sim, flow) = lossy_sim(0);
        sim.core_mut().push_data(flow, MSS);
        sim.run();
        assert!(sim.core().packet_log().is_empty());
    }

    #[test]
    fn log_records_arrivals_and_drops() {
        let (mut sim, flow) = lossy_sim(1024);
        for _ in 0..8 {
            sim.core_mut().push_data(flow, MSS);
        }
        sim.run();
        let log = sim.core().packet_log();
        assert!(log
            .iter()
            .any(|e| e.kind == PacketEventKind::Arrival && e.flow == flow));
        assert!(
            log.iter().any(|e| e.kind == PacketEventKind::Drop),
            "burst into a 2 kB buffer must log drops"
        );
        // Entries are time-ordered.
        for w in log.iter().zip(log.iter().skip(1)) {
            assert!(w.0.at <= w.1.at);
        }
    }

    #[test]
    fn log_is_bounded() {
        let (mut sim, flow) = lossy_sim(4);
        for _ in 0..20 {
            sim.core_mut().push_data(flow, MSS);
        }
        sim.run();
        assert!(sim.core().packet_log().len() <= 4);
    }

    /// Regression for the per-delivery `pkt.clone()` the packet log
    /// used to take: a run with logging enabled — arrivals, drops, and
    /// deliveries all exercised — must clone zero packets. Also checks
    /// the arena leaks no slots: every allocation reached a free site.
    #[test]
    fn logged_run_clones_no_packets_and_leaks_no_slots() {
        let (mut sim, flow) = lossy_sim(1024);
        for _ in 0..8 {
            sim.core_mut().push_data(flow, MSS);
        }
        let clones_before = crate::packet::thread_packet_clones();
        sim.run();
        let cloned = crate::packet::thread_packet_clones() - clones_before;
        assert_eq!(cloned, 0, "hot path must not clone packets");
        assert!(sim.core().packet_log().iter().any(|e| e.kind == PacketEventKind::Drop));
        let arena = sim.core().packet_arena();
        assert!(arena.allocated_total() > 0);
        assert!(arena.is_empty(), "{} packet slots leaked", arena.live());
    }
}
