//! Dense per-flow tables indexed by [`FlowId`].
//!
//! Flow ids are allocated sequentially from zero, so every per-flow
//! table in the hot path can be a slab vector indexed by `FlowId`
//! instead of an ordered map: O(1) lookup, no pointer chasing, and
//! iteration stays in id order (which the artifact exporters rely on).
//! When flow retirement is enabled ([`crate::retire`]) completed ids
//! are recycled, so a slab's length is bounded by peak concurrency
//! while the per-slot generations keep stale references detectable.

use crate::packet::FlowId;

/// A slab keyed by [`FlowId`]: `Vec<Option<T>>` with O(1) access and
/// id-ordered iteration. Suited to tables that hold a sparse subset of
/// the simulation's flows, like a host's sender/receiver endpoints.
#[derive(Debug)]
pub struct FlowMap<T> {
    slots: Vec<Option<T>>,
    /// Per-slot generation, bumped every time an entry is removed. A
    /// stale actor holding a flow id across teardown and re-insert can
    /// compare generations to tell the new occupant from the state it
    /// remembers — dead state is never resurrected by id reuse.
    gens: Vec<u32>,
    len: usize,
    /// High-water mark of `len`: the peak number of simultaneously live
    /// entries this table ever held. With id recycling the slab length
    /// is bounded by peak concurrency, not total churn, and this is the
    /// number that proves it.
    peak_len: usize,
}

impl<T> Default for FlowMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlowMap<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowMap {
            slots: Vec::new(),
            gens: Vec::new(),
            len: 0,
            peak_len: 0,
        }
    }

    /// Number of slots the slab has ever materialised (live + holes).
    /// Under id recycling this is the resident-memory proxy: it tracks
    /// peak concurrency, not cumulative flow count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Peak number of simultaneously live entries (see `capacity`).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared access to the entry for `id`.
    pub fn get(&self, id: FlowId) -> Option<&T> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the entry for `id`.
    pub fn get_mut(&mut self, id: FlowId) -> Option<&mut T> {
        self.slots.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Whether `id` has an entry.
    pub fn contains(&self, id: FlowId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts a value for `id`, growing the slab as needed. Returns
    /// the previous value, if any.
    pub fn insert(&mut self, id: FlowId, value: T) -> Option<T> {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
            self.gens.resize(idx + 1, 0);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
            self.peak_len = self.peak_len.max(self.len);
        }
        old
    }

    /// Removes and returns the entry for `id`, if any. Removal bumps the
    /// slot's generation (see [`generation`](Self::generation)).
    pub fn remove(&mut self, id: FlowId) -> Option<T> {
        let old = self.slots.get_mut(id.0 as usize).and_then(Option::take);
        if old.is_some() {
            self.gens[id.0 as usize] = self.gens[id.0 as usize].wrapping_add(1);
            self.len -= 1;
        }
        old
    }

    /// Generation of `id`'s slot: 0 until the first removal, then +1 per
    /// removal. A `(FlowId, generation)` pair uniquely names one
    /// occupancy of the slot, so state captured before a teardown can be
    /// recognised as stale after the id is reused.
    pub fn generation(&self, id: FlowId) -> u32 {
        self.gens.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Iterates entries in flow-id order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (FlowId(i as u64), v)))
    }

    /// Iterates entries mutably in flow-id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FlowId, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, v)| v.as_mut().map(|v| (FlowId(i as u64), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: FlowMap<u32> = FlowMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(FlowId(3), 30), None);
        assert_eq!(m.insert(FlowId(0), 0), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(FlowId(3)), Some(&30));
        assert_eq!(m.get(FlowId(1)), None, "hole in the slab");
        assert_eq!(m.get(FlowId(999)), None, "beyond the slab");
        assert_eq!(m.insert(FlowId(3), 31), Some(30), "replace keeps len");
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(FlowId(3)), Some(31));
        assert_eq!(m.remove(FlowId(3)), None);
        assert_eq!(m.remove(FlowId(999)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn slot_reuse_keeps_generations_distinct() {
        // Grow, retire, and reinsert under the same flow id: each
        // occupancy gets its own generation, so a stale reference to a
        // dead flow can never be confused with the slot's new tenant.
        let mut m: FlowMap<&str> = FlowMap::new();
        let id = FlowId(4);
        assert_eq!(m.generation(id), 0, "untouched slot");
        m.insert(id, "first");
        assert_eq!(m.generation(id), 0, "insert does not bump");
        let before = m.generation(id);
        assert_eq!(m.remove(id), Some("first"));
        assert_eq!(m.generation(id), before + 1, "remove bumps");
        m.insert(id, "second");
        assert_eq!(m.generation(id), before + 1);
        assert_eq!(
            m.get(id),
            Some(&"second"),
            "reused slot holds the new state only"
        );
        assert_eq!(m.remove(id), Some("second"));
        assert_eq!(m.generation(id), before + 2, "one bump per occupancy");
        assert_eq!(m.get(id), None, "dead state is not resurrected");
    }

    #[test]
    fn generation_survives_failed_removes_and_growth() {
        let mut m: FlowMap<u8> = FlowMap::new();
        m.insert(FlowId(1), 1);
        m.remove(FlowId(1));
        assert_eq!(m.generation(FlowId(1)), 1);
        // Removing an empty or out-of-range slot bumps nothing.
        m.remove(FlowId(1));
        m.remove(FlowId(50));
        assert_eq!(m.generation(FlowId(1)), 1);
        assert_eq!(m.generation(FlowId(50)), 0, "beyond the slab");
        // Growing the slab preserves earlier generations.
        m.insert(FlowId(9), 9);
        assert_eq!(m.generation(FlowId(1)), 1);
        assert_eq!(m.generation(FlowId(9)), 0);
    }

    /// Churn stress for the retirement path: a million insert/remove
    /// cycles funnelled through a 64-slot id window. Every cycle a
    /// "stale actor" captures the `(id, generation)` pair of the tenant
    /// it is about to tear down and verifies the bump makes the captured
    /// pair unmatchable afterwards; at the end the slab must have grown
    /// to peak concurrency and not one slot further.
    #[test]
    fn million_cycle_churn_stays_bounded_with_detectable_stale_ids() {
        const CONCURRENCY: u64 = 64;
        const CYCLES: u64 = 1_000_000;
        let mut m: FlowMap<u64> = FlowMap::new();
        let mut removes = vec![0u32; CONCURRENCY as usize];
        for i in 0..CYCLES {
            let id = FlowId(i % CONCURRENCY);
            if i >= CONCURRENCY {
                let stale = m.generation(id);
                assert_eq!(m.remove(id), Some(i - CONCURRENCY), "tenant intact at {i}");
                removes[id.0 as usize] += 1;
                assert_ne!(m.generation(id), stale, "stale id must be detectable at {i}");
            }
            assert_eq!(m.insert(id, i), None, "slot must be empty at {i}");
        }
        for (slot, &r) in removes.iter().enumerate() {
            assert_eq!(m.generation(FlowId(slot as u64)), r, "one bump per occupancy");
        }
        assert_eq!(m.len(), CONCURRENCY as usize);
        assert_eq!(m.peak_len(), CONCURRENCY as usize);
        assert_eq!(
            m.capacity(),
            CONCURRENCY as usize,
            "slab must be bounded by peak concurrency, not total churn"
        );
    }

    #[test]
    fn iterates_in_id_order() {
        let mut m: FlowMap<&str> = FlowMap::new();
        m.insert(FlowId(5), "e");
        m.insert(FlowId(1), "b");
        m.insert(FlowId(9), "j");
        let got: Vec<(u64, &str)> = m.iter().map(|(id, v)| (id.0, *v)).collect();
        assert_eq!(got, vec![(1, "b"), (5, "e"), (9, "j")]);
        for (_, v) in m.iter_mut() {
            *v = "x";
        }
        assert!(m.iter().all(|(_, v)| *v == "x"));
    }
}
