//! Dense per-flow tables indexed by [`FlowId`].
//!
//! Flow ids are allocated sequentially from zero and never recycled, so
//! every per-flow table in the hot path can be a slab vector indexed by
//! `FlowId` instead of an ordered map: O(1) lookup, no pointer chasing,
//! and iteration stays in id order (which the artifact exporters rely
//! on).

use crate::packet::FlowId;

/// A slab keyed by [`FlowId`]: `Vec<Option<T>>` with O(1) access and
/// id-ordered iteration. Suited to tables that hold a sparse subset of
/// the simulation's flows, like a host's sender/receiver endpoints.
#[derive(Debug)]
pub struct FlowMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for FlowMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlowMap<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared access to the entry for `id`.
    pub fn get(&self, id: FlowId) -> Option<&T> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the entry for `id`.
    pub fn get_mut(&mut self, id: FlowId) -> Option<&mut T> {
        self.slots.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Whether `id` has an entry.
    pub fn contains(&self, id: FlowId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts a value for `id`, growing the slab as needed. Returns
    /// the previous value, if any.
    pub fn insert(&mut self, id: FlowId, value: T) -> Option<T> {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the entry for `id`, if any.
    pub fn remove(&mut self, id: FlowId) -> Option<T> {
        let old = self.slots.get_mut(id.0 as usize).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterates entries in flow-id order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (FlowId(i as u64), v)))
    }

    /// Iterates entries mutably in flow-id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FlowId, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, v)| v.as_mut().map(|v| (FlowId(i as u64), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: FlowMap<u32> = FlowMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(FlowId(3), 30), None);
        assert_eq!(m.insert(FlowId(0), 0), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(FlowId(3)), Some(&30));
        assert_eq!(m.get(FlowId(1)), None, "hole in the slab");
        assert_eq!(m.get(FlowId(999)), None, "beyond the slab");
        assert_eq!(m.insert(FlowId(3), 31), Some(30), "replace keeps len");
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(FlowId(3)), Some(31));
        assert_eq!(m.remove(FlowId(3)), None);
        assert_eq!(m.remove(FlowId(999)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iterates_in_id_order() {
        let mut m: FlowMap<&str> = FlowMap::new();
        m.insert(FlowId(5), "e");
        m.insert(FlowId(1), "b");
        m.insert(FlowId(9), "j");
        let got: Vec<(u64, &str)> = m.iter().map(|(id, v)| (id.0, *v)).collect();
        assert_eq!(got, vec![(1, "b"), (5, "e"), (9, "j")]);
        for (_, v) in m.iter_mut() {
            *v = "x";
        }
        assert!(m.iter().all(|(_, v)| *v == "x"));
    }
}
