//! Topology construction and static routing.
//!
//! A [`TopologyBuilder`] collects hosts, switches, and full-duplex links,
//! then computes shortest-path routes and produces the node set for a
//! [`crate::sim::Simulator`]. Builders for every topology used in the
//! paper's evaluation are provided.

use std::collections::VecDeque;

use crate::node::{Host, Node, Port, PortLink, RouteTable, Switch};
use crate::packet::NodeId;
use crate::policy::{DropTail, SwitchPolicy};
use crate::units::{Bandwidth, Dur};

/// Default switch buffer per port: 256 KB, like the paper's NetFPGA
/// boards (§6.1.1).
pub const DEFAULT_SWITCH_BUFFER: u64 = 256 * 1024;

/// Default host NIC queue: large enough that drops concentrate at
/// switches, as in the testbed.
pub const DEFAULT_HOST_BUFFER: u64 = 16 * 1024 * 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    Host,
    Switch,
}

/// Errors from fallible topology construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// Adding another node would overflow the `u32` node-id space; the
    /// id would silently wrap and alias node 0.
    NodeIdSpaceExhausted {
        /// Number of nodes already in the builder.
        nodes: usize,
    },
    /// A host has zero or multiple links; every host needs exactly one.
    HostLinkCount {
        /// The offending host's id.
        host: NodeId,
        /// How many links it has.
        links: usize,
    },
    /// The graph is not connected: `node` cannot reach `unreachable`
    /// (the first such pair found), so no route table can be filled.
    Disconnected {
        /// A node with no path to `unreachable`.
        node: NodeId,
        /// The destination host it cannot reach.
        unreachable: NodeId,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NodeIdSpaceExhausted { nodes } => {
                write!(f, "node-id space exhausted: {nodes} nodes, NodeId is u32")
            }
            TopologyError::HostLinkCount { host, links } => {
                write!(f, "host {} must have exactly one link, has {links}", host.0)
            }
            TopologyError::Disconnected { node, unreachable } => {
                write!(
                    f,
                    "graph is disconnected: node {} has no path to host {}",
                    node.0, unreachable.0
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The id the next node would get, or an error if `count` nodes already
/// exhaust the `u32` id space. Factored out of the builder so the
/// boundary is testable without allocating four billion nodes.
fn checked_id(count: usize) -> Result<NodeId, TopologyError> {
    u32::try_from(count)
        .map(NodeId)
        .map_err(|_| TopologyError::NodeIdSpaceExhausted { nodes: count })
}

#[derive(Debug, Clone, Copy)]
struct LinkSpec {
    a: NodeId,
    b: NodeId,
    rate: Bandwidth,
    delay: Dur,
}

/// Incrementally describes a network, then builds nodes + routes.
///
/// # Examples
///
/// ```
/// use tfc_simnet::topology::TopologyBuilder;
/// use tfc_simnet::units::{Bandwidth, Dur};
///
/// let mut t = TopologyBuilder::new();
/// let h1 = t.host();
/// let h2 = t.host();
/// let s = t.switch();
/// t.link(h1, s, Bandwidth::gbps(1), Dur::micros(1));
/// t.link(h2, s, Bandwidth::gbps(1), Dur::micros(1));
/// let net = t.build_drop_tail();
/// assert_eq!(net.hosts.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    links: Vec<LinkSpec>,
    switch_buffer: Option<u64>,
    host_buffer: Option<u64>,
}

/// The built network: nodes (indexed by `NodeId`) plus the host list.
pub struct Network {
    /// All nodes; `nodes[id.0]` has id `id`.
    pub nodes: Vec<Node>,
    /// Ids of the host nodes, in creation order.
    pub hosts: Vec<NodeId>,
    /// Ids of the switch nodes, in creation order.
    pub switches: Vec<NodeId>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the `u32` node-id space is exhausted; use
    /// [`try_host`](Self::try_host) to handle that as an error.
    pub fn host(&mut self) -> NodeId {
        self.try_host().expect("node-id space exhausted")
    }

    /// Adds a host and returns its id, or an error when another node
    /// would not fit in the `u32` id space (previously the id wrapped
    /// silently).
    pub fn try_host(&mut self) -> Result<NodeId, TopologyError> {
        let id = checked_id(self.kinds.len())?;
        self.kinds.push(NodeKind::Host);
        Ok(id)
    }

    /// Adds `n` hosts and returns their ids.
    pub fn hosts(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.host()).collect()
    }

    /// Adds a switch and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the `u32` node-id space is exhausted; use
    /// [`try_switch`](Self::try_switch) to handle that as an error.
    pub fn switch(&mut self) -> NodeId {
        self.try_switch().expect("node-id space exhausted")
    }

    /// Adds a switch and returns its id, or an error when another node
    /// would not fit in the `u32` id space.
    pub fn try_switch(&mut self) -> Result<NodeId, TopologyError> {
        let id = checked_id(self.kinds.len())?;
        self.kinds.push(NodeKind::Switch);
        Ok(id)
    }

    /// Connects `a` and `b` with a full-duplex link.
    ///
    /// # Panics
    ///
    /// Panics if either node does not exist or `a == b`.
    pub fn link(&mut self, a: NodeId, b: NodeId, rate: Bandwidth, delay: Dur) {
        assert!(a != b, "self-links are not allowed");
        assert!((a.0 as usize) < self.kinds.len(), "unknown node {a:?}");
        assert!((b.0 as usize) < self.kinds.len(), "unknown node {b:?}");
        self.links.push(LinkSpec { a, b, rate, delay });
    }

    /// Overrides the per-port switch buffer (bytes).
    pub fn switch_buffer(&mut self, bytes: u64) -> &mut Self {
        self.switch_buffer = Some(bytes);
        self
    }

    /// Overrides the host NIC queue size (bytes).
    pub fn host_buffer(&mut self, bytes: u64) -> &mut Self {
        self.host_buffer = Some(bytes);
        self
    }

    /// Builds the network, creating each switch's policy with
    /// `make_policy`, which receives the switch id and its port links
    /// (index order) so per-port engines can size themselves.
    ///
    /// Routing is shortest-path (hop count) keeping *every* equal-cost
    /// next hop: each switch's [`RouteTable`] entry holds the full
    /// sorted port set, and forwarding picks a member per packet with
    /// the deterministic `(flow, hop)` ECMP hash
    /// ([`crate::node::ecmp_select`]). In tree topologies shortest
    /// paths are unique, every entry degenerates to a single port, and
    /// forward/reverse paths coincide — the symmetry TFC's ACK delay
    /// arbiter relies on. Multipath fabrics (fat-trees) expose all
    /// their uplinks and trade that symmetry away deliberately; see
    /// DESIGN.md §14.
    ///
    /// # Panics
    ///
    /// Panics if a host has more than one link or the graph is
    /// disconnected; use [`try_build`](Self::try_build) to handle those
    /// as structured errors.
    pub fn build(
        self,
        make_policy: impl FnMut(NodeId, &[PortLink]) -> Box<dyn SwitchPolicy>,
    ) -> Network {
        self.try_build(make_policy)
            .unwrap_or_else(|e| panic!("invalid topology: {e}"))
    }

    /// Fallible [`build`](Self::build): returns a structured
    /// [`TopologyError`] for malformed inputs (host with a link count
    /// other than one, disconnected graph) instead of panicking, so
    /// programmatic builders — shard planners, ECMP fabric generators —
    /// can validate candidate topologies.
    pub fn try_build(
        self,
        mut make_policy: impl FnMut(NodeId, &[PortLink]) -> Box<dyn SwitchPolicy>,
    ) -> Result<Network, TopologyError> {
        let n = self.kinds.len();
        let switch_buf = self.switch_buffer.unwrap_or(DEFAULT_SWITCH_BUFFER);
        let host_buf = self.host_buffer.unwrap_or(DEFAULT_HOST_BUFFER);

        // Per-node port plans: (link rate, delay, peer node).
        let mut port_plans: Vec<Vec<(Bandwidth, Dur, NodeId)>> = vec![Vec::new(); n];
        for l in &self.links {
            port_plans[l.a.0 as usize].push((l.rate, l.delay, l.b));
            port_plans[l.b.0 as usize].push((l.rate, l.delay, l.a));
        }

        // Resolve peer port indices: for the k-th link of node a to b, the
        // matching port at b is the index of the corresponding entry.
        // Walk links again counting per-pair occurrences.
        let mut ports: Vec<Vec<PortLink>> = vec![Vec::new(); n];
        let mut cursor: Vec<usize> = vec![0; n];
        for l in &self.links {
            let pa = cursor[l.a.0 as usize];
            let pb = cursor[l.b.0 as usize];
            cursor[l.a.0 as usize] += 1;
            cursor[l.b.0 as usize] += 1;
            ports[l.a.0 as usize].push(PortLink {
                rate: l.rate,
                delay: l.delay,
                peer: l.b,
                peer_port: pb,
            });
            ports[l.b.0 as usize].push(PortLink {
                rate: l.rate,
                delay: l.delay,
                peer: l.a,
                peer_port: pa,
            });
        }

        for (i, kind) in self.kinds.iter().enumerate() {
            if *kind == NodeKind::Host && ports[i].len() != 1 {
                return Err(TopologyError::HostLinkCount {
                    host: NodeId(i as u32),
                    links: ports[i].len(),
                });
            }
            if ports[i].is_empty() {
                // An isolated node can reach nothing — degenerate case
                // of disconnection (covers switch-only builders, where
                // no host BFS would ever visit it).
                return Err(TopologyError::Disconnected {
                    node: NodeId(i as u32),
                    unreachable: NodeId(i as u32),
                });
            }
        }

        // BFS from every host to fill each node's route table.
        let adjacency: Vec<Vec<(NodeId, usize)>> = ports
            .iter()
            .map(|ps| {
                ps.iter()
                    .enumerate()
                    .map(|(idx, p)| (p.peer, idx))
                    .collect()
            })
            .collect();
        // Only switches route; hosts have a single NIC. Dense u16 port
        // entries keep fabric-scale builds (10k-host fat-trees) in tens
        // of megabytes instead of gigabytes; equal-cost sets live in a
        // small deduplicated pool per switch.
        let mut routes: Vec<RouteTable> = self
            .kinds
            .iter()
            .map(|k| match k {
                NodeKind::Switch => RouteTable::unreachable(n),
                NodeKind::Host => RouteTable::default(),
            })
            .collect();
        for ps in &ports {
            assert!(
                ps.len() < (1usize << 15),
                "per-node port count exceeds the tagged u16 route-table range"
            );
        }
        let mut next_hops: Vec<u16> = Vec::new();
        for dst in 0..n {
            if self.kinds[dst] != NodeKind::Host {
                continue;
            }
            // BFS backwards from dst; dist[v] = hops from v to dst.
            let mut dist: Vec<u32> = vec![u32::MAX; n];
            dist[dst] = 0;
            let mut q = VecDeque::from([dst]);
            while let Some(v) = q.pop_front() {
                for &(peer, _) in &adjacency[v] {
                    let p = peer.0 as usize;
                    if dist[p] == u32::MAX {
                        dist[p] = dist[v] + 1;
                        q.push_back(p);
                    }
                }
            }
            for v in 0..n {
                if v == dst {
                    continue;
                }
                if dist[v] == u32::MAX {
                    // Previously this slipped past the route fill and
                    // surfaced as an `expect("connected graph")` panic
                    // (or a missing-route panic deep in a run); now it
                    // is a structured validation error.
                    return Err(TopologyError::Disconnected {
                        node: NodeId(v as u32),
                        unreachable: NodeId(dst as u32),
                    });
                }
                if self.kinds[v] != NodeKind::Switch {
                    continue;
                }
                // Every equal-cost parent joins the set: fat-trees
                // expose all their uplinks instead of concentrating on
                // the lowest-id core. Adjacency is walked in port-index
                // order, so the set arrives sorted and deterministic.
                next_hops.clear();
                for &(peer, port) in &adjacency[v] {
                    if dist[peer.0 as usize] == dist[v] - 1 {
                        next_hops.push(port as u16);
                    }
                }
                debug_assert!(!next_hops.is_empty(), "BFS-reached node has a parent toward dst");
                routes[v].set(dst, &next_hops);
            }
        }

        let mut nodes = Vec::with_capacity(n);
        let mut hosts = Vec::new();
        let mut switches = Vec::new();
        for (i, kind) in self.kinds.iter().enumerate() {
            let id = NodeId(i as u32);
            match kind {
                NodeKind::Host => {
                    hosts.push(id);
                    let link = ports[i][0];
                    nodes.push(Node::Host(Host {
                        id,
                        nic: Port::new(link, host_buf),
                        senders: Default::default(),
                        receivers: Default::default(),
                        stalled: false,
                    }));
                }
                NodeKind::Switch => {
                    switches.push(id);
                    let policy = make_policy(id, &ports[i]);
                    nodes.push(Node::Switch(Switch {
                        id,
                        ports: ports[i].iter().map(|&l| Port::new(l, switch_buf)).collect(),
                        routes: std::mem::take(&mut routes[i]),
                        policy,
                    }));
                }
            }
        }
        Ok(Network {
            nodes,
            hosts,
            switches,
        })
    }

    /// Builds with drop-tail switches everywhere.
    pub fn build_drop_tail(self) -> Network {
        self.build(|_, _| Box::new(DropTail))
    }
}

/// The paper's testbed (Fig. 4): root switch `NF0`, three leaf switches
/// `NF1..NF3`, three hosts per leaf (`H1..H9`), all links 1 Gbps.
///
/// Returns `(builder, hosts, switches)` where `hosts[i]` is `H(i+1)` and
/// `switches[j]` is `NFj`. The caller finishes with
/// [`TopologyBuilder::build`] to choose the switch policy.
pub fn testbed(link_delay: Dur) -> (TopologyBuilder, Vec<NodeId>, Vec<NodeId>) {
    let mut t = TopologyBuilder::new();
    let hosts = t.hosts(9);
    let nf0 = t.switch();
    let leaves: Vec<NodeId> = (0..3).map(|_| t.switch()).collect();
    let rate = Bandwidth::gbps(1);
    for (li, &leaf) in leaves.iter().enumerate() {
        t.link(leaf, nf0, rate, link_delay);
        for hi in 0..3 {
            t.link(hosts[li * 3 + hi], leaf, rate, link_delay);
        }
    }
    let mut switches = vec![nf0];
    switches.extend(leaves);
    (t, hosts, switches)
}

/// Fig. 5's multi-bottleneck chain: `h1 - S1 - S2 - {h3, h4}`, `h2 - S2`.
///
/// Returns `(builder, [h1, h2, h3, h4], [s1, s2])`.
pub fn multi_bottleneck(
    rate: Bandwidth,
    link_delay: Dur,
) -> (TopologyBuilder, Vec<NodeId>, Vec<NodeId>) {
    let mut t = TopologyBuilder::new();
    let hosts = t.hosts(4);
    let s1 = t.switch();
    let s2 = t.switch();
    t.link(hosts[0], s1, rate, link_delay);
    t.link(s1, s2, rate, link_delay);
    t.link(hosts[1], s2, rate, link_delay);
    t.link(hosts[2], s2, rate, link_delay);
    t.link(hosts[3], s2, rate, link_delay);
    (t, hosts, vec![s1, s2])
}

/// A single-switch star: `n` hosts on one switch, every link identical.
/// This is the incast topology (all senders plus the receiver on one
/// switch; the receiver's downlink is the bottleneck).
pub fn star(n: usize, rate: Bandwidth, link_delay: Dur) -> (TopologyBuilder, Vec<NodeId>, NodeId) {
    let mut t = TopologyBuilder::new();
    let hosts = t.hosts(n);
    let sw = t.switch();
    for &h in &hosts {
        t.link(h, sw, rate, link_delay);
    }
    (t, hosts, sw)
}

/// The large-scale simulation topology of §6.2.2: `n_leaf` leaf switches,
/// `hosts_per_leaf` servers each on `down` links, one `up` uplink per
/// leaf to a single top switch. The paper uses 18 × 20 servers, 1 Gbps
/// down, 10 Gbps up, 20 µs per link.
pub fn leaf_spine(
    n_leaf: usize,
    hosts_per_leaf: usize,
    down: Bandwidth,
    up: Bandwidth,
    link_delay: Dur,
) -> (TopologyBuilder, Vec<NodeId>, Vec<NodeId>) {
    let mut t = TopologyBuilder::new();
    let hosts = t.hosts(n_leaf * hosts_per_leaf);
    let top = t.switch();
    let mut switches = vec![top];
    for leaf_idx in 0..n_leaf {
        let leaf = t.switch();
        switches.push(leaf);
        t.link(leaf, top, up, link_delay);
        for h in 0..hosts_per_leaf {
            t.link(hosts[leaf_idx * hosts_per_leaf + h], leaf, down, link_delay);
        }
    }
    (t, hosts, switches)
}

/// A k-ary fat-tree (the standard three-tier Clos used by the 10k-host
/// datacenter evaluations this repo benchmarks against): `k` pods, each
/// with `k/2` edge and `k/2` aggregation switches in a full bipartite
/// mesh, `(k/2)^2` core switches, and `k/2` hosts per edge switch —
/// `k^3/4` hosts total. Hosts attach at `host_rate`; all fabric links
/// run at `fabric_rate`.
///
/// Returns `(builder, hosts, switches)`; `switches` lists cores first,
/// then per-pod aggregation then edge switches. Routing keeps every
/// equal-cost next hop: an edge switch's entry for an out-of-pod host
/// holds all `k/2` uplinks, an aggregation switch's all `k/2` of its
/// core group, and forwarding sprays packets across them with the
/// deterministic `(flow, hop)` ECMP hash.
///
/// # Panics
///
/// Panics unless `k` is even and at least 2.
pub fn fat_tree(
    k: usize,
    host_rate: Bandwidth,
    fabric_rate: Bandwidth,
    link_delay: Dur,
) -> (TopologyBuilder, Vec<NodeId>, Vec<NodeId>) {
    assert!(k >= 2 && k % 2 == 0, "fat-tree arity must be even, got {k}");
    let half = k / 2;
    let mut t = TopologyBuilder::new();
    let hosts = t.hosts(k * half * half);
    let cores: Vec<NodeId> = (0..half * half).map(|_| t.switch()).collect();
    let mut switches = cores.clone();
    for pod in 0..k {
        let aggs: Vec<NodeId> = (0..half).map(|_| t.switch()).collect();
        let edges: Vec<NodeId> = (0..half).map(|_| t.switch()).collect();
        switches.extend(&aggs);
        switches.extend(&edges);
        for (a, &agg) in aggs.iter().enumerate() {
            // Aggregation switch `a` owns core group `a`.
            for j in 0..half {
                t.link(agg, cores[a * half + j], fabric_rate, link_delay);
            }
            for &edge in &edges {
                t.link(agg, edge, fabric_rate, link_delay);
            }
        }
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let host = hosts[(pod * half + e) * half + h];
                t.link(host, edge, host_rate, link_delay);
            }
        }
    }
    (t, hosts, switches)
}

/// A fabric partition for the sharded scheduler: every node's shard plus
/// the conservative lookahead the cut supports.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of shards (at least 1).
    pub shards: usize,
    /// `shard_of[node.0]` is the node's shard index.
    pub shard_of: Vec<u32>,
    /// Minimum link propagation delay across the shard cut — the widest
    /// window a shard can safely extract without seeing a neighbour
    /// shard's future. Falls back to the fabric-wide minimum link delay
    /// when no link crosses the cut (e.g. a single shard).
    pub min_cut_delay: Dur,
}

/// Partitions a built network for the sharded scheduler: switches are
/// assigned round-robin in `switches` order (so leaf/pod siblings spread
/// across shards) and every host joins its switch's shard — a host's
/// single NIC link then never crosses the cut, leaving link propagation
/// between switches as the only cross-shard edge and its minimum delay
/// as the lookahead.
pub fn shard_plan(nodes: &[Node], switches: &[NodeId], shards: usize) -> ShardPlan {
    let shards = shards.max(1);
    let mut shard_of = vec![0u32; nodes.len()];
    for (i, &sw) in switches.iter().enumerate() {
        shard_of[sw.0 as usize] = (i % shards) as u32;
    }
    for node in nodes {
        if let Node::Host(h) = node {
            shard_of[h.id.0 as usize] = shard_of[h.nic.link.peer.0 as usize];
        }
    }
    let mut cut: Option<u64> = None;
    let mut any: Option<u64> = None;
    for node in nodes {
        let ports: Vec<&Port> = match node {
            Node::Host(h) => vec![&h.nic],
            Node::Switch(s) => s.ports.iter().collect(),
        };
        for p in ports {
            let d = p.link.delay.as_nanos();
            any = Some(any.map_or(d, |m: u64| m.min(d)));
            if shard_of[node.id().0 as usize] != shard_of[p.link.peer.0 as usize] {
                cut = Some(cut.map_or(d, |m: u64| m.min(d)));
            }
        }
    }
    ShardPlan {
        shards,
        shard_of,
        min_cut_delay: Dur(cut.or(any).unwrap_or(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_symmetric_peer_ports() {
        let mut t = TopologyBuilder::new();
        let h1 = t.host();
        let h2 = t.host();
        let s = t.switch();
        t.link(h1, s, Bandwidth::gbps(1), Dur::micros(1));
        t.link(h2, s, Bandwidth::gbps(1), Dur::micros(1));
        let net = t.build_drop_tail();
        // Host 1's NIC peers with switch port 0, host 2 with port 1.
        let Node::Host(ref hh1) = net.nodes[h1.0 as usize] else {
            panic!()
        };
        assert_eq!(hh1.nic.link.peer, s);
        assert_eq!(hh1.nic.link.peer_port, 0);
        let Node::Switch(ref sw) = net.nodes[s.0 as usize] else {
            panic!()
        };
        assert_eq!(sw.ports[0].link.peer, h1);
        assert_eq!(sw.ports[1].link.peer, h2);
    }

    #[test]
    fn routes_point_toward_destination() {
        let (t, hosts, switches) = testbed(Dur::micros(1));
        let net = t.build_drop_tail();
        // H1 (leaf NF1) to H6 (leaf NF2) must route via the leaf uplink.
        let Node::Switch(ref nf1) = net.nodes[switches[1].0 as usize] else {
            panic!()
        };
        let up = nf1.route(hosts[5]).expect("route exists");
        assert_eq!(nf1.ports[up].link.peer, switches[0]);
        // Intra-rack route goes straight to the host port.
        let direct = nf1.route(hosts[1]).expect("route exists");
        assert_eq!(nf1.ports[direct].link.peer, hosts[1]);
    }

    #[test]
    fn testbed_shape() {
        let (t, hosts, switches) = testbed(Dur::micros(1));
        let net = t.build(|_, _| Box::new(DropTail));
        assert_eq!(hosts.len(), 9);
        assert_eq!(switches.len(), 4);
        assert_eq!(net.nodes.len(), 13);
        let Node::Switch(ref nf0) = net.nodes[switches[0].0 as usize] else {
            panic!()
        };
        assert_eq!(nf0.ports.len(), 3);
    }

    #[test]
    fn leaf_spine_shape() {
        let (t, hosts, switches) = leaf_spine(
            18,
            20,
            Bandwidth::gbps(1),
            Bandwidth::gbps(10),
            Dur::micros(20),
        );
        let net = t.build_drop_tail();
        assert_eq!(hosts.len(), 360);
        assert_eq!(switches.len(), 19);
        assert_eq!(net.nodes.len(), 360 + 19);
    }

    #[test]
    fn multi_bottleneck_shape() {
        let (t, hosts, switches) = multi_bottleneck(Bandwidth::gbps(1), Dur::micros(1));
        let net = t.build_drop_tail();
        assert_eq!(hosts.len(), 4);
        // h2 routes to h3 through S2 only (2 hops vs h1's 3).
        let Node::Switch(ref s2) = net.nodes[switches[1].0 as usize] else {
            panic!()
        };
        let p = s2.route(hosts[2]).unwrap();
        assert_eq!(s2.ports[p].link.peer, hosts[2]);
    }

    #[test]
    #[should_panic(expected = "invalid topology")]
    fn host_with_two_links_rejected() {
        let mut t = TopologyBuilder::new();
        let h = t.host();
        let s1 = t.switch();
        let s2 = t.switch();
        t.link(h, s1, Bandwidth::gbps(1), Dur::micros(1));
        t.link(h, s2, Bandwidth::gbps(1), Dur::micros(1));
        t.link(s1, s2, Bandwidth::gbps(1), Dur::micros(1));
        t.build_drop_tail();
    }

    #[test]
    #[should_panic(expected = "invalid topology")]
    fn disconnected_graph_rejected() {
        let mut t = TopologyBuilder::new();
        let _h = t.host();
        let _s = t.switch();
        t.build_drop_tail();
    }

    /// Regression: a disconnected graph used to abort with
    /// `expect("connected graph")` (or slip through to a missing-route
    /// panic mid-run); `try_build` now reports a structured error that
    /// names an unreachable pair, so programmatic fabric builders can
    /// validate candidates.
    #[test]
    fn try_build_reports_disconnection_structurally() {
        // Two islands, each internally valid: {h0-s}, {h1-s'}.
        let mut t = TopologyBuilder::new();
        let h0 = t.host();
        let h1 = t.host();
        let s0 = t.switch();
        let s1 = t.switch();
        t.link(h0, s0, Bandwidth::gbps(1), Dur::micros(1));
        t.link(h1, s1, Bandwidth::gbps(1), Dur::micros(1));
        let err = t.try_build(|_, _| Box::new(DropTail)).err().expect("must fail");
        let TopologyError::Disconnected { node, unreachable } = err else {
            panic!("wrong error: {err:?}");
        };
        assert_ne!(node, unreachable);
        assert!(err.to_string().contains("disconnected"));

        // Isolated switch: degenerate disconnection, also structured.
        let mut t = TopologyBuilder::new();
        let _orphan = t.switch();
        let err = t.try_build(|_, _| Box::new(DropTail)).err().expect("must fail");
        assert!(matches!(err, TopologyError::Disconnected { .. }), "{err:?}");

        // Host with two links: structured, with the offending count.
        let mut t = TopologyBuilder::new();
        let h = t.host();
        let sa = t.switch();
        let sb = t.switch();
        t.link(h, sa, Bandwidth::gbps(1), Dur::micros(1));
        t.link(h, sb, Bandwidth::gbps(1), Dur::micros(1));
        t.link(sa, sb, Bandwidth::gbps(1), Dur::micros(1));
        let err = t.try_build(|_, _| Box::new(DropTail)).err().expect("must fail");
        assert_eq!(err, TopologyError::HostLinkCount { host: h, links: 2 });

        // A valid graph passes try_build identically to build.
        let (t, hosts, _) = testbed(Dur::micros(1));
        let net = t.try_build(|_, _| Box::new(DropTail)).expect("valid");
        assert_eq!(net.hosts.len(), hosts.len());
    }

    #[test]
    fn fat_tree_shape_and_routes() {
        let k = 4;
        let (t, hosts, switches) = fat_tree(
            k,
            Bandwidth::gbps(1),
            Bandwidth::gbps(10),
            Dur::micros(2),
        );
        let net = t.build_drop_tail();
        assert_eq!(hosts.len(), k * k * k / 4);
        // (k/2)^2 cores + k pods of k aggregation+edge switches.
        assert_eq!(switches.len(), k * k / 4 + k * k);
        // Every switch has exactly k ports.
        for &sw in &switches {
            let Node::Switch(ref s) = net.nodes[sw.0 as usize] else {
                panic!()
            };
            assert_eq!(s.ports.len(), k, "switch {sw:?}");
        }
        // Intra-pod traffic stays below the cores: host0 -> host2 (same
        // pod, different edge) routes edge -> agg -> edge.
        let Node::Host(ref h0) = net.nodes[hosts[0].0 as usize] else {
            panic!()
        };
        let edge0 = h0.nic.link.peer;
        let Node::Switch(ref e0) = net.nodes[edge0.0 as usize] else {
            panic!()
        };
        let up = e0.route(hosts[2]).expect("route exists");
        let agg = e0.ports[up].link.peer;
        let Node::Switch(ref a) = net.nodes[agg.0 as usize] else {
            panic!()
        };
        let down = a.route(hosts[2]).expect("route exists");
        assert_eq!(a.ports[down].link.peer, {
            let Node::Host(ref h2) = net.nodes[hosts[2].0 as usize] else {
                panic!()
            };
            h2.nic.link.peer
        });
    }

    /// Fat-tree ECMP invariants: every equal-cost uplink is present in
    /// the route tables (an edge switch's entry for an out-of-pod host
    /// holds all `k/2` uplinks; an aggregation switch's all `k/2` cores
    /// of its group), and following *any* member of any entry makes
    /// strict progress toward the destination — no forwarding loop is
    /// reachable on any src/dst pair no matter which members the hash
    /// picks.
    #[test]
    fn fat_tree_ecmp_route_invariants() {
        let k = 4;
        let (t, hosts, switches) =
            fat_tree(k, Bandwidth::gbps(1), Bandwidth::gbps(10), Dur::micros(2));
        let net = t.build_drop_tail();
        let n = net.nodes.len();
        // Independent distance oracle: BFS from each host over the
        // undirected port graph.
        let peers = |v: usize| -> Vec<usize> {
            match &net.nodes[v] {
                Node::Host(h) => vec![h.nic.link.peer.0 as usize],
                Node::Switch(s) => s.ports.iter().map(|p| p.link.peer.0 as usize).collect(),
            }
        };
        for &dst in &hosts {
            let mut dist = vec![u32::MAX; n];
            dist[dst.0 as usize] = 0;
            let mut q = std::collections::VecDeque::from([dst.0 as usize]);
            while let Some(v) = q.pop_front() {
                for p in peers(v) {
                    if dist[p] == u32::MAX {
                        dist[p] = dist[v] + 1;
                        q.push_back(p);
                    }
                }
            }
            for &swid in &switches {
                if dist[swid.0 as usize] == 0 {
                    continue;
                }
                let Node::Switch(ref sw) = net.nodes[swid.0 as usize] else {
                    panic!()
                };
                let members: Vec<usize> = match sw.routes.next_hops(dst) {
                    crate::node::NextHops::None => panic!("unreachable {dst:?} from {swid:?}"),
                    crate::node::NextHops::Single(p) => vec![p as usize],
                    crate::node::NextHops::Ecmp(set) => set.iter().map(|&p| p as usize).collect(),
                };
                // Every member steps strictly closer (no loops on any
                // member choice), and every port that steps closer is a
                // member (no equal-cost uplink missing).
                let closer: Vec<usize> = (0..sw.ports.len())
                    .filter(|&p| {
                        dist[sw.ports[p].link.peer.0 as usize] + 1 == dist[swid.0 as usize]
                    })
                    .collect();
                assert_eq!(members, closer, "switch {swid:?} toward {dst:?}");
            }
        }
        // Spot-check the multipath widths the tentpole is about: an
        // edge switch spreads out-of-pod traffic over all k/2 uplinks,
        // an aggregation switch over its k/2 cores.
        let Node::Host(ref h0) = net.nodes[hosts[0].0 as usize] else {
            panic!()
        };
        let edge0 = h0.nic.link.peer;
        let far = *hosts.last().unwrap(); // different pod
        let Node::Switch(ref e0) = net.nodes[edge0.0 as usize] else {
            panic!()
        };
        let up = match e0.routes.next_hops(far) {
            crate::node::NextHops::Ecmp(set) => set.to_vec(),
            other => panic!("expected ECMP uplinks, got {other:?}"),
        };
        assert_eq!(up.len(), k / 2, "edge uplink fan-out");
        let agg = e0.ports[up[0] as usize].link.peer;
        let Node::Switch(ref a0) = net.nodes[agg.0 as usize] else {
            panic!()
        };
        let cores = match a0.routes.next_hops(far) {
            crate::node::NextHops::Ecmp(set) => set.to_vec(),
            other => panic!("expected ECMP core ports, got {other:?}"),
        };
        assert_eq!(cores.len(), k / 2, "aggregation core fan-out");
    }

    #[test]
    fn shard_plan_assigns_hosts_with_their_switch() {
        let (t, hosts, switches) = leaf_spine(
            4,
            3,
            Bandwidth::gbps(1),
            Bandwidth::gbps(10),
            Dur::micros(20),
        );
        let net = t.build_drop_tail();
        let plan = shard_plan(&net.nodes, &net.switches, 2);
        assert_eq!(plan.shards, 2);
        assert_eq!(plan.shard_of.len(), net.nodes.len());
        // Switches round-robin in creation order: top=0, leaves 1,0,1,0.
        for (i, &sw) in switches.iter().enumerate() {
            assert_eq!(plan.shard_of[sw.0 as usize], (i % 2) as u32);
        }
        // Every host shares its leaf's shard, so no host link crosses
        // the cut.
        for &h in &hosts {
            let Node::Host(ref host) = net.nodes[h.0 as usize] else {
                panic!()
            };
            assert_eq!(
                plan.shard_of[h.0 as usize],
                plan.shard_of[host.nic.link.peer.0 as usize]
            );
        }
        // All links share one delay here, so the cut minimum is it.
        assert_eq!(plan.min_cut_delay, Dur::micros(20));
        // A single shard has no cut and falls back to the fabric min.
        let solo = shard_plan(&net.nodes, &net.switches, 1);
        assert!(solo.shard_of.iter().all(|&s| s == 0));
        assert_eq!(solo.min_cut_delay, Dur::micros(20));
    }

    #[test]
    fn node_id_allocation_guards_u32_boundary() {
        // In range: the id equals the running count.
        assert_eq!(checked_id(0), Ok(NodeId(0)));
        assert_eq!(checked_id(7), Ok(NodeId(7)));
        assert_eq!(checked_id(u32::MAX as usize), Ok(NodeId(u32::MAX)));
        // One past the last representable id: refused, not wrapped.
        assert_eq!(
            checked_id(u32::MAX as usize + 1),
            Err(TopologyError::NodeIdSpaceExhausted {
                nodes: u32::MAX as usize + 1
            })
        );
        let err = checked_id(u32::MAX as usize + 1).unwrap_err();
        assert!(err.to_string().contains("node-id space exhausted"));
    }

    #[test]
    fn try_variants_match_infallible_ids() {
        let mut t = TopologyBuilder::new();
        assert_eq!(t.try_host().unwrap(), NodeId(0));
        assert_eq!(t.switch(), NodeId(1));
        assert_eq!(t.try_switch().unwrap(), NodeId(2));
        assert_eq!(t.host(), NodeId(3));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::node::Node;
    use rng::props::cases;
    use rng::Rng;

    fn random_shape(rng: &mut impl rng::RngCore) -> Vec<u8> {
        let len = rng.gen_range(0..12usize);
        (0..len).map(|_| rng.gen_range(0..16u8)).collect()
    }

    /// Builds a random tree: `shape[i]` attaches switch i+1 to switch
    /// `shape[i] % (i+1)`; every switch gets `hosts_per` hosts.
    fn random_tree(shape: &[u8], hosts_per: usize) -> Network {
        let mut t = TopologyBuilder::new();
        let mut switches = vec![t.switch()];
        let mut hosts = Vec::new();
        for &parent in shape {
            let s = t.switch();
            let p = switches[parent as usize % switches.len()];
            t.link(s, p, Bandwidth::gbps(1), Dur::micros(1));
            switches.push(s);
        }
        for &s in &switches {
            for _ in 0..hosts_per {
                let h = t.host();
                t.link(h, s, Bandwidth::gbps(1), Dur::micros(1));
                hosts.push(h);
            }
        }
        t.build_drop_tail()
    }

    #[test]
    fn routes_reach_every_destination() {
        cases(64, |_case, rng| {
            let shape = random_shape(rng);
            let hosts_per = rng.gen_range(1..3usize);
            let net = random_tree(&shape, hosts_per);
            // From every node, following next hops toward every host must
            // terminate at that host without loops.
            for &dst in &net.hosts {
                for start in &net.nodes {
                    let mut at = start.id();
                    let mut hops = 0;
                    while at != dst {
                        hops += 1;
                        assert!(
                            hops <= net.nodes.len(),
                            "routing loop toward {dst:?} in tree {shape:?}"
                        );
                        at = match &net.nodes[at.0 as usize] {
                            Node::Switch(sw) => {
                                let port = sw.route(dst).expect("route exists");
                                sw.ports[port].link.peer
                            }
                            Node::Host(h) => {
                                assert!(at != dst);
                                h.nic.link.peer
                            }
                        };
                    }
                }
            }
        });
    }

    #[test]
    fn peer_ports_are_mutual() {
        cases(64, |_case, rng| {
            let shape = random_shape(rng);
            let net = random_tree(&shape, 1);
            for node in &net.nodes {
                let ports: Vec<_> = match node {
                    Node::Host(h) => vec![&h.nic],
                    Node::Switch(s) => s.ports.iter().collect(),
                };
                for (idx, port) in ports.into_iter().enumerate() {
                    let peer = &net.nodes[port.link.peer.0 as usize];
                    let back = peer.port(port.link.peer_port);
                    assert_eq!(back.link.peer, node.id(), "tree {shape:?}");
                    assert_eq!(back.link.peer_port, idx, "tree {shape:?}");
                }
            }
        });
    }
}
