//! Fault-injection primitives: the network-dynamics vocabulary.
//!
//! A [`FaultAction`] is one atomic change to the running network,
//! applied by the simulator at an exact simulated time (scheduled with
//! [`crate::sim::SimCore::inject_fault`]). The taxonomy covers the
//! recovery cases the TFC paper's mechanisms exist for:
//!
//! * **link down/up** — both directions of a full-duplex link die;
//!   packets being serialised or propagating on it are lost;
//! * **link rate renegotiation** — the link trains down (or up) to a new
//!   rate, e.g. 10 Gbps → 1 Gbps;
//! * **loss window** — a port drops each crossing packet with a fixed
//!   probability (bursty corruption), drawn from a dedicated fault RNG
//!   stream so other seeded behaviour is unperturbed;
//! * **policy reset** — a switch port's policy soft state is wiped
//!   (control-plane reboot): TFC loses its token/E/rho counters and must
//!   re-learn them;
//! * **host stall/resume** — a host goes silent without FIN (the §4.3
//!   rho-reclamation case): nothing leaves its NIC and nothing it
//!   receives reaches its endpoints, but its timers keep firing so
//!   recovery on resume is the endpoints' own.
//!
//! Higher-level scripting (timelines, randomized chaos suites, recovery
//! metrics) lives in the `chaos` crate; this module only defines what
//! the simulator itself must understand.

use crate::packet::NodeId;
use crate::units::Bandwidth;

/// One atomic fault applied to the network at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Takes the full-duplex link attached to `node`'s `port` down
    /// (both directions). In-flight packets on the link are dropped.
    LinkDown {
        /// Either endpoint of the link.
        node: NodeId,
        /// Port index at that node.
        port: usize,
    },
    /// Restores a downed link (both directions).
    LinkUp {
        /// Either endpoint of the link.
        node: NodeId,
        /// Port index at that node.
        port: usize,
    },
    /// Renegotiates the link rate (both directions). A packet mid-
    /// serialisation completes at the old rate; everything after
    /// serialises at the new one.
    LinkRate {
        /// Either endpoint of the link.
        node: NodeId,
        /// Port index at that node.
        port: usize,
        /// The new line rate.
        rate: Bandwidth,
    },
    /// Starts a bursty loss window on one egress port: each packet
    /// joining the port's FIFO is dropped with probability
    /// `permille`/1000 (corruption model).
    LossWindow {
        /// The node owning the port.
        node: NodeId,
        /// Port index at that node.
        port: usize,
        /// Drop probability in permille (0..=1000).
        permille: u16,
    },
    /// Ends a loss window on a port.
    LossWindowEnd {
        /// The node owning the port.
        node: NodeId,
        /// Port index at that node.
        port: usize,
    },
    /// Wipes a switch port's policy soft state (token/E/rho counters for
    /// TFC), modelling a control-plane reboot.
    PolicyReset {
        /// The switch.
        node: NodeId,
        /// Port index at that switch.
        port: usize,
    },
    /// The host goes silent without FIN: its NIC emits nothing and
    /// arriving packets are discarded, while endpoint timers keep
    /// running.
    HostStall {
        /// The host.
        node: NodeId,
    },
    /// The host resumes; senders recover via their own timers (and, for
    /// TFC, the window re-acquisition probe).
    HostResume {
        /// The host.
        node: NodeId,
    },
}

impl FaultAction {
    /// Stable label of the fault kind, shared by the inject and clear
    /// telemetry events so pairs can be matched up.
    pub fn kind_label(&self) -> &'static str {
        match self {
            FaultAction::LinkDown { .. } | FaultAction::LinkUp { .. } => "link_down",
            FaultAction::LinkRate { .. } => "link_rate",
            FaultAction::LossWindow { .. } | FaultAction::LossWindowEnd { .. } => "loss_window",
            FaultAction::PolicyReset { .. } => "policy_reset",
            FaultAction::HostStall { .. } | FaultAction::HostResume { .. } => "host_stall",
        }
    }

    /// Whether this action lifts a fault (telemetry `FaultCleared`)
    /// rather than injecting one (`FaultInjected`).
    pub fn is_clear(&self) -> bool {
        matches!(
            self,
            FaultAction::LinkUp { .. }
                | FaultAction::LossWindowEnd { .. }
                | FaultAction::HostResume { .. }
        )
    }

    /// The node the fault applies to.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultAction::LinkDown { node, .. }
            | FaultAction::LinkUp { node, .. }
            | FaultAction::LinkRate { node, .. }
            | FaultAction::LossWindow { node, .. }
            | FaultAction::LossWindowEnd { node, .. }
            | FaultAction::PolicyReset { node, .. }
            | FaultAction::HostStall { node }
            | FaultAction::HostResume { node } => node,
        }
    }

    /// The port the fault applies to (0 for node-wide faults).
    pub fn port(&self) -> usize {
        match *self {
            FaultAction::LinkDown { port, .. }
            | FaultAction::LinkUp { port, .. }
            | FaultAction::LinkRate { port, .. }
            | FaultAction::LossWindow { port, .. }
            | FaultAction::LossWindowEnd { port, .. }
            | FaultAction::PolicyReset { port, .. } => port,
            FaultAction::HostStall { .. } | FaultAction::HostResume { .. } => 0,
        }
    }

    /// Kind-specific magnitude for telemetry: the new rate in bps for
    /// [`FaultAction::LinkRate`], the drop probability in permille for
    /// [`FaultAction::LossWindow`], 0 otherwise.
    pub fn value(&self) -> u64 {
        match *self {
            FaultAction::LinkRate { rate, .. } => rate.as_bps(),
            FaultAction::LossWindow { permille, .. } => permille as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_pair_inject_with_clear() {
        let n = NodeId(3);
        let pairs = [
            (
                FaultAction::LinkDown { node: n, port: 1 },
                FaultAction::LinkUp { node: n, port: 1 },
            ),
            (
                FaultAction::LossWindow {
                    node: n,
                    port: 1,
                    permille: 100,
                },
                FaultAction::LossWindowEnd { node: n, port: 1 },
            ),
            (
                FaultAction::HostStall { node: n },
                FaultAction::HostResume { node: n },
            ),
        ];
        for (inject, clear) in pairs {
            assert!(!inject.is_clear());
            assert!(clear.is_clear());
            assert_eq!(inject.kind_label(), clear.kind_label());
            assert_eq!(inject.node(), clear.node());
            assert_eq!(inject.port(), clear.port());
        }
    }

    #[test]
    fn values_carry_magnitudes() {
        let n = NodeId(0);
        assert_eq!(
            FaultAction::LinkRate {
                node: n,
                port: 0,
                rate: Bandwidth::gbps(1)
            }
            .value(),
            1_000_000_000
        );
        assert_eq!(
            FaultAction::LossWindow {
                node: n,
                port: 0,
                permille: 250
            }
            .value(),
            250
        );
        assert_eq!(FaultAction::PolicyReset { node: n, port: 2 }.value(), 0);
        assert!(!FaultAction::PolicyReset { node: n, port: 2 }.is_clear());
        assert_eq!(FaultAction::HostStall { node: n }.port(), 0);
    }
}
