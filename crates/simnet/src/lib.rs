//! A discrete-event data-center network simulator.
//!
//! This crate is the substrate for the TFC reproduction: it plays the
//! role the authors' NetFPGA testbed and ns-2 platform play in the paper.
//! It models:
//!
//! * hosts with a single NIC output queue and per-flow transport
//!   endpoints (protocols plug in via [`endpoint::SenderEndpoint`] /
//!   [`endpoint::ReceiverEndpoint`]),
//! * output-queued, store-and-forward switches with byte-bounded FIFOs
//!   and a pluggable per-switch [`policy::SwitchPolicy`] (drop-tail, ECN
//!   marking, and — in the `tfc` crate — the TFC token engine),
//! * full-duplex links with a rate and a propagation delay,
//! * static shortest-path routing,
//! * a workload [`app::Application`] hook plus deterministic seeded
//!   randomness, trace sampling, and flow accounting.
//!
//! # Examples
//!
//! Build a two-host topology:
//!
//! ```
//! use tfc_simnet::topology::TopologyBuilder;
//! use tfc_simnet::units::{Bandwidth, Dur};
//!
//! let mut t = TopologyBuilder::new();
//! let h1 = t.host();
//! let h2 = t.host();
//! let s = t.switch();
//! t.link(h1, s, Bandwidth::gbps(1), Dur::micros(1));
//! t.link(h2, s, Bandwidth::gbps(1), Dur::micros(1));
//! let net = t.build_drop_tail();
//! assert_eq!(net.hosts.len(), 2);
//! ```

pub mod app;
pub mod arena;
pub mod endpoint;
pub mod event;
pub mod fault;
pub mod flowtable;
mod handlers;
pub mod node;
pub mod packet;
pub mod policy;
pub mod queue;
pub mod retire;
pub mod sched;
pub mod sim;
pub mod topology;
pub mod trace;
pub mod units;

pub use app::{Application, FlowEvent, NullApp};
pub use arena::{PacketArena, PacketId};
pub use endpoint::{Effects, FlowSpec, Note, ProtocolStack, ReceiverEndpoint, SenderEndpoint};
pub use fault::FaultAction;
pub use flowtable::FlowMap;
pub use node::PortStats;
pub use packet::{Flags, FlowId, NodeId, Packet, HEADER_BYTES, MIN_FRAME, MSS, WINDOW_INIT};
pub use retire::{FlowRetirer, RetireConfig};
pub use sched::{SchedulerKind, TimerHandle};
pub use sim::{FlowState, SimApi, SimConfig, SimCore, Simulator};
pub use topology::{Network, TopologyBuilder};
pub use units::{Bandwidth, Dur, Time};
