//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::fault::FaultAction;
use crate::packet::{NodeId, Packet};
use crate::units::Time;

/// A scheduled simulation event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet finished propagating and arrives at `node` on `port`.
    Arrival {
        /// Receiving node.
        node: NodeId,
        /// Ingress port index at the receiving node.
        port: usize,
        /// The packet.
        pkt: Packet,
    },
    /// `node` finished serialising the packet currently occupying `port`.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// Port whose transmission completed.
        port: usize,
    },
    /// A transport-endpoint timer at a host fired.
    HostTimer {
        /// The host.
        node: NodeId,
        /// Flow the timer belongs to.
        flow: crate::packet::FlowId,
        /// Endpoint-defined timer payload.
        token: u64,
    },
    /// A switch-policy timer fired (e.g. TFC delay-arbiter wakeup).
    PolicyTimer {
        /// The switch.
        node: NodeId,
        /// Policy-defined timer payload.
        token: u64,
    },
    /// An application (workload driver) timer fired.
    AppTimer {
        /// Application-defined timer payload.
        token: u64,
    },
    /// A trace sampler tick.
    Sample {
        /// Index into the sampler table.
        sampler: usize,
    },
    /// A packet produced by a host endpoint reaches its NIC queue (after
    /// any configured host processing jitter).
    NicEnqueue {
        /// The host.
        node: NodeId,
        /// The packet.
        pkt: Packet,
    },
    /// A scripted fault takes effect (chaos timeline).
    Fault {
        /// The fault to apply.
        action: FaultAction,
    },
}

impl Event {
    /// Export names of the event kinds, indexed by
    /// [`kind_index`](Self::kind_index). The simulator hands this table
    /// to the telemetry layer for per-kind loop counters.
    pub const KIND_NAMES: [&'static str; 8] = [
        "arrival",
        "tx_done",
        "host_timer",
        "policy_timer",
        "app_timer",
        "sample",
        "nic_enqueue",
        "fault",
    ];

    /// Dense index of this event's kind into [`Self::KIND_NAMES`].
    pub fn kind_index(&self) -> usize {
        match self {
            Event::Arrival { .. } => 0,
            Event::TxDone { .. } => 1,
            Event::HostTimer { .. } => 2,
            Event::PolicyTimer { .. } => 3,
            Event::AppTimer { .. } => 4,
            Event::Sample { .. } => 5,
            Event::NicEnqueue { .. } => 6,
            Event::Fault { .. } => 7,
        }
    }
}

/// An event plus its activation time and a tie-breaking sequence number.
#[derive(Debug)]
struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event.
        // Ties break by insertion order for determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// Events popped at equal timestamps come out in insertion order, which
/// makes every simulation run bit-reproducible for a given seed.
///
/// # Examples
///
/// ```
/// use tfc_simnet::event::{Event, EventQueue};
/// use tfc_simnet::units::Time;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time(20), Event::AppTimer { token: 2 });
/// q.schedule(Time(10), Event::AppTimer { token: 1 });
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, Time(10));
/// matches!(ev, Event::AppTimer { token: 1 });
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::{cases, vec_u64};
    use rng::Rng;

    fn token_of(ev: &Event) -> u64 {
        match ev {
            Event::AppTimer { token } => *token,
            _ => panic!("unexpected event"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(30), Event::AppTimer { token: 3 });
        q.schedule(Time(10), Event::AppTimer { token: 1 });
        q.schedule(Time(20), Event::AppTimer { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time(5), Event::AppTimer { token: i });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(&e))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Time(7), Event::AppTimer { token: 0 });
        assert_eq!(q.peek_time(), Some(Time(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn total_order_is_respected() {
        cases(128, |_case, rng| {
            let times = vec_u64(rng, 1..200, 0..1_000);
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Time(t), Event::AppTimer { token: i as u64 });
            }
            let mut last = Time(0);
            let mut popped = 0;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last, "popped {t:?} after {last:?} for {times:?}");
                last = t;
                popped += 1;
            }
            assert_eq!(popped, times.len());
        });
    }

    #[test]
    fn stable_for_equal_timestamps() {
        cases(128, |_case, rng| {
            let n = rng.gen_range(1..100usize);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(Time(42), Event::AppTimer { token: i as u64 });
            }
            let mut expect = 0u64;
            while let Some((_, ev)) = q.pop() {
                assert_eq!(token_of(&ev), expect, "n = {n}");
                expect += 1;
            }
        });
    }
}
