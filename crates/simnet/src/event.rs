//! Simulation event kinds.
//!
//! The queue that orders them lives in [`crate::sched`]; the historical
//! `event::EventQueue` path is preserved via re-export.

use crate::arena::PacketId;
use crate::fault::FaultAction;
use crate::packet::NodeId;

pub use crate::sched::{EventQueue, SchedulerKind, TimerHandle};

/// A scheduled simulation event.
///
/// Packet-bearing events carry a [`PacketId`] into the simulation's
/// [`crate::arena::PacketArena`], not an owned packet: entries stay
/// small and `Copy`-cheap through the scheduler, and the packet itself
/// is written once at allocation and borrowed everywhere after.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet finished propagating and arrives at `node` on `port`.
    Arrival {
        /// Receiving node.
        node: NodeId,
        /// Ingress port index at the receiving node.
        port: usize,
        /// The packet's arena id.
        pkt: PacketId,
    },
    /// `node` finished serialising the packet currently occupying `port`.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// Port whose transmission completed.
        port: usize,
    },
    /// A transport-endpoint timer at a host fired.
    HostTimer {
        /// The host.
        node: NodeId,
        /// Flow the timer belongs to.
        flow: crate::packet::FlowId,
        /// Endpoint-defined timer payload.
        token: u64,
    },
    /// A switch-policy timer fired (e.g. TFC delay-arbiter wakeup).
    PolicyTimer {
        /// The switch.
        node: NodeId,
        /// Policy-defined timer payload.
        token: u64,
    },
    /// An application (workload driver) timer fired.
    AppTimer {
        /// Application-defined timer payload.
        token: u64,
    },
    /// A trace sampler tick.
    Sample {
        /// Index into the sampler table.
        sampler: usize,
    },
    /// A packet produced by a host endpoint reaches its NIC queue (after
    /// any configured host processing jitter).
    NicEnqueue {
        /// The host.
        node: NodeId,
        /// The packet's arena id.
        pkt: PacketId,
    },
    /// A scripted fault takes effect (chaos timeline).
    Fault {
        /// The fault to apply.
        action: FaultAction,
    },
}

impl Event {
    /// Export names of the event kinds, indexed by
    /// [`kind_index`](Self::kind_index). The simulator hands this table
    /// to the telemetry layer for per-kind loop counters.
    pub const KIND_NAMES: [&'static str; 8] = [
        "arrival",
        "tx_done",
        "host_timer",
        "policy_timer",
        "app_timer",
        "sample",
        "nic_enqueue",
        "fault",
    ];

    /// The node this event is pinned to, if any — the key the sharded
    /// scheduler routes on. Fabric events (arrivals, transmissions,
    /// host/policy timers) belong to their node's shard; global events
    /// (application timers, samplers, scripted faults) have no affinity
    /// and live on shard 0.
    pub fn node_affinity(&self) -> Option<NodeId> {
        match self {
            Event::Arrival { node, .. }
            | Event::TxDone { node, .. }
            | Event::HostTimer { node, .. }
            | Event::PolicyTimer { node, .. }
            | Event::NicEnqueue { node, .. } => Some(*node),
            Event::AppTimer { .. } | Event::Sample { .. } | Event::Fault { .. } => None,
        }
    }

    /// Dense index of this event's kind into [`Self::KIND_NAMES`].
    pub fn kind_index(&self) -> usize {
        match self {
            Event::Arrival { .. } => 0,
            Event::TxDone { .. } => 1,
            Event::HostTimer { .. } => 2,
            Event::PolicyTimer { .. } => 3,
            Event::AppTimer { .. } => 4,
            Event::Sample { .. } => 5,
            Event::NicEnqueue { .. } => 6,
            Event::Fault { .. } => 7,
        }
    }
}
