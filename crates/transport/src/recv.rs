//! Receive-side reassembly and the generic stream receiver.

use std::collections::BTreeMap;

use simnet::endpoint::{Effects, Note, ReceiverEndpoint};
use simnet::packet::{Flags, FlowId, NodeId, Packet, WINDOW_INIT};
use simnet::units::Time;

/// Out-of-order reassembly buffer over a byte-sequence space.
///
/// Tracks the cumulative in-order point (`rcv_nxt`) plus disjoint
/// out-of-order ranges. [`RecvBuffer::on_segment`] returns how many new
/// in-order bytes became available to the application.
///
/// # Examples
///
/// ```
/// use tfc_transport::recv::RecvBuffer;
///
/// let mut b = RecvBuffer::new();
/// assert_eq!(b.on_segment(1000, 500), 0); // hole at 0..1000
/// assert_eq!(b.on_segment(0, 1000), 1500); // fills the hole
/// assert_eq!(b.rcv_nxt(), 1500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecvBuffer {
    rcv_nxt: u64,
    /// Out-of-order ranges `start -> end` (exclusive), disjoint and
    /// non-adjacent after normalisation.
    ooo: BTreeMap<u64, u64>,
}

impl RecvBuffer {
    /// Creates an empty buffer expecting byte 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next in-order byte the application has not yet seen.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Number of buffered out-of-order ranges (diagnostics).
    pub fn ooo_ranges(&self) -> usize {
        self.ooo.len()
    }

    /// Ingests a segment `[seq, seq + len)`; returns the number of bytes
    /// newly delivered in order (0 if the segment left a hole or was a
    /// duplicate).
    pub fn on_segment(&mut self, seq: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let end = seq + len;
        if end <= self.rcv_nxt {
            return 0; // Entirely duplicate.
        }
        let seq = seq.max(self.rcv_nxt);
        self.insert_range(seq, end);
        // Advance the cumulative point through any now-contiguous ranges.
        let before = self.rcv_nxt;
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.pop_first();
            self.rcv_nxt = self.rcv_nxt.max(e);
        }
        self.rcv_nxt - before
    }

    fn insert_range(&mut self, mut start: u64, mut end: u64) {
        // Merge with any overlapping or adjacent existing ranges.
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|&(_, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ooo.remove(&s).expect("key just observed");
            start = start.min(s);
            end = end.max(e);
        }
        self.ooo.insert(start, end);
    }
}

/// How the receiver reflects congestion signals on its ACKs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EchoMode {
    /// Plain TCP: no echo.
    None,
    /// DCTCP: echo CE as ECE per ACK.
    Ecn,
    /// TFC: echo RM as RMA, carrying `min(awnd, pkt.window)` (§5.3).
    Tfc {
        /// The receiver's advertised window in bytes.
        awnd: u64,
    },
}

/// Generic receiver endpoint shared by every protocol in the workspace.
///
/// Behaviour:
/// * replies SYN-ACK to SYN (repeatedly, so a lost SYN-ACK recovers),
/// * ACKs every data packet immediately with the cumulative ACK,
/// * reflects congestion signals per [`EchoMode`],
/// * emits [`Note::Delivered`] as in-order bytes appear and
///   [`Note::ReceiverDone`] when `expected` bytes have arrived (or, for
///   open-ended flows, when the FIN is delivered in order).
pub struct StreamReceiver {
    flow: FlowId,
    /// This host (ACK source).
    local: NodeId,
    /// The sender host (ACK destination).
    remote: NodeId,
    expected: Option<u64>,
    echo: EchoMode,
    buf: RecvBuffer,
    fin_seq: Option<u64>,
    done: bool,
}

impl StreamReceiver {
    /// Creates a receiver for `flow` at `local`, sending ACKs to
    /// `remote`; `expected` is the sized-flow byte count if known.
    pub fn new(
        flow: FlowId,
        local: NodeId,
        remote: NodeId,
        expected: Option<u64>,
        echo: EchoMode,
    ) -> Self {
        Self {
            flow,
            local,
            remote,
            expected,
            echo,
            buf: RecvBuffer::new(),
            fin_seq: None,
            done: false,
        }
    }

    fn make_ack(&self, data: &Packet) -> Packet {
        let mut ack = Packet::ack(self.flow, self.local, self.remote, self.buf.rcv_nxt());
        match self.echo {
            EchoMode::None => {}
            EchoMode::Ecn => {
                if data.flags.contains(Flags::CE) {
                    ack.flags.set(Flags::ECE);
                }
            }
            EchoMode::Tfc { awnd } => {
                if data.flags.contains(Flags::RM) {
                    ack.flags.set(Flags::RMA);
                    ack.window = awnd.min(data.window);
                } else {
                    ack.window = WINDOW_INIT;
                }
            }
        }
        ack
    }
}

impl ReceiverEndpoint for StreamReceiver {
    fn on_packet(&mut self, pkt: &Packet, _now: Time, fx: &mut Effects) {
        if pkt.flags.contains(Flags::SYN) {
            // SYN-ACK; duplicated SYNs get duplicated SYN-ACKs.
            let mut synack = Packet::ack(self.flow, self.local, self.remote, 0);
            synack.flags.set(Flags::SYN);
            fx.send(synack);
            return;
        }
        if pkt.flags.contains(Flags::FIN) {
            // FIN occupies one sequence unit after the data stream.
            self.fin_seq = Some(pkt.seq);
            let newly = self.buf.on_segment(pkt.seq, 1);
            if newly > 1 {
                fx.note(Note::Delivered { bytes: newly - 1 });
            }
            fx.send(self.make_ack(pkt));
        } else if pkt.is_data() {
            let newly = self.buf.on_segment(pkt.seq, pkt.payload);
            let fin_consumed = self.fin_seq.is_some_and(|f| self.buf.rcv_nxt() > f) && newly > 0;
            let payload_bytes = if fin_consumed { newly - 1 } else { newly };
            if payload_bytes > 0 {
                fx.note(Note::Delivered {
                    bytes: payload_bytes,
                });
            }
            fx.send(self.make_ack(pkt));
        } else {
            // Zero-payload non-FIN probe (TFC window acquisition): ACK it
            // so the RMA echo travels back, but deliver nothing.
            fx.send(self.make_ack(pkt));
        }
        if !self.done {
            let complete = match (self.expected, self.fin_seq) {
                (Some(exp), _) => self.delivered_bytes() >= exp,
                (None, Some(f)) => self.buf.rcv_nxt() > f,
                (None, None) => false,
            };
            if complete {
                self.done = true;
                fx.note(Note::ReceiverDone);
            }
        }
    }

    fn delivered_bytes(&self) -> u64 {
        match self.fin_seq {
            Some(f) if self.buf.rcv_nxt() > f => self.buf.rcv_nxt() - 1,
            _ => self.buf.rcv_nxt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::cases;
    use rng::seq::SliceRandom;
    use rng::Rng;

    #[test]
    fn in_order_delivery() {
        let mut b = RecvBuffer::new();
        assert_eq!(b.on_segment(0, 100), 100);
        assert_eq!(b.on_segment(100, 100), 100);
        assert_eq!(b.rcv_nxt(), 200);
    }

    #[test]
    fn duplicate_is_zero() {
        let mut b = RecvBuffer::new();
        b.on_segment(0, 100);
        assert_eq!(b.on_segment(0, 100), 0);
        assert_eq!(b.on_segment(50, 50), 0);
    }

    #[test]
    fn hole_then_fill() {
        let mut b = RecvBuffer::new();
        assert_eq!(b.on_segment(200, 100), 0);
        assert_eq!(b.on_segment(100, 100), 0);
        assert_eq!(b.ooo_ranges(), 1); // merged adjacent ranges
        assert_eq!(b.on_segment(0, 100), 300);
    }

    #[test]
    fn overlapping_segments_merge() {
        let mut b = RecvBuffer::new();
        b.on_segment(100, 100);
        b.on_segment(150, 200);
        assert_eq!(b.ooo_ranges(), 1);
        assert_eq!(b.on_segment(0, 100), 350);
    }

    fn mk_recv(expected: Option<u64>, echo: EchoMode) -> StreamReceiver {
        StreamReceiver::new(FlowId(7), NodeId(1), NodeId(0), expected, echo)
    }

    fn data(seq: u64, len: u64) -> Packet {
        Packet::data(FlowId(7), NodeId(0), NodeId(1), seq, len)
    }

    #[test]
    fn syn_gets_synack() {
        let mut r = mk_recv(Some(100), EchoMode::None);
        let mut syn = Packet::data(FlowId(7), NodeId(0), NodeId(1), 0, 0);
        syn.flags.set(Flags::SYN);
        let mut fx = Effects::new();
        r.on_packet(&syn, Time::ZERO, &mut fx);
        assert_eq!(fx.packets.len(), 1);
        assert!(fx.packets[0].flags.contains(Flags::SYN.with(Flags::ACK)));
    }

    #[test]
    fn data_acked_and_done_note() {
        let mut r = mk_recv(Some(200), EchoMode::None);
        let mut fx = Effects::new();
        r.on_packet(&data(0, 100), Time::ZERO, &mut fx);
        assert_eq!(fx.packets[0].ack, 100);
        assert!(fx.notes.contains(&Note::Delivered { bytes: 100 }));
        assert!(!fx.notes.contains(&Note::ReceiverDone));
        let mut fx2 = Effects::new();
        r.on_packet(&data(100, 100), Time::ZERO, &mut fx2);
        assert!(fx2.notes.contains(&Note::ReceiverDone));
        // A retransmit does not re-emit done.
        let mut fx3 = Effects::new();
        r.on_packet(&data(100, 100), Time::ZERO, &mut fx3);
        assert!(!fx3.notes.contains(&Note::ReceiverDone));
    }

    #[test]
    fn ecn_echo() {
        let mut r = mk_recv(Some(1_000), EchoMode::Ecn);
        let mut marked = data(0, 100);
        marked.flags.set(Flags::CE);
        let mut fx = Effects::new();
        r.on_packet(&marked, Time::ZERO, &mut fx);
        assert!(fx.packets[0].flags.contains(Flags::ECE));
        let mut fx2 = Effects::new();
        r.on_packet(&data(100, 100), Time::ZERO, &mut fx2);
        assert!(!fx2.packets[0].flags.contains(Flags::ECE));
    }

    #[test]
    fn tfc_rma_echo_carries_min_window() {
        let mut r = mk_recv(Some(1_000), EchoMode::Tfc { awnd: 5_000 });
        let mut rm = data(0, 100);
        rm.flags.set(Flags::RM);
        rm.window = 2_920; // stamped by a switch
        let mut fx = Effects::new();
        r.on_packet(&rm, Time::ZERO, &mut fx);
        let ack = &fx.packets[0];
        assert!(ack.flags.contains(Flags::RMA));
        assert_eq!(ack.window, 2_920);
        // awnd smaller than the stamp clamps.
        let mut r2 = mk_recv(Some(1_000), EchoMode::Tfc { awnd: 1_000 });
        let mut fx2 = Effects::new();
        r2.on_packet(&rm, Time::ZERO, &mut fx2);
        assert_eq!(fx2.packets[0].window, 1_000);
    }

    #[test]
    fn open_ended_done_on_fin() {
        let mut r = mk_recv(None, EchoMode::None);
        let mut fx = Effects::new();
        r.on_packet(&data(0, 100), Time::ZERO, &mut fx);
        assert!(!fx.notes.contains(&Note::ReceiverDone));
        let mut fin = Packet::data(FlowId(7), NodeId(0), NodeId(1), 100, 0);
        fin.flags.set(Flags::FIN);
        let mut fx2 = Effects::new();
        r.on_packet(&fin, Time::ZERO, &mut fx2);
        assert!(fx2.notes.contains(&Note::ReceiverDone));
        assert_eq!(r.delivered_bytes(), 100);
        assert_eq!(fx2.packets[0].ack, 101); // FIN consumed one unit
    }

    #[test]
    fn fin_before_last_data_still_completes() {
        let mut r = mk_recv(None, EchoMode::None);
        let mut fin = Packet::data(FlowId(7), NodeId(0), NodeId(1), 100, 0);
        fin.flags.set(Flags::FIN);
        let mut fx = Effects::new();
        r.on_packet(&fin, Time::ZERO, &mut fx);
        assert!(!fx.notes.contains(&Note::ReceiverDone));
        let mut fx2 = Effects::new();
        r.on_packet(&data(0, 100), Time::ZERO, &mut fx2);
        assert!(fx2.notes.contains(&Note::ReceiverDone));
        assert_eq!(r.delivered_bytes(), 100);
    }

    #[test]
    fn random_arrival_order_reassembles() {
        cases(128, |_case, rng| {
            let mut order: Vec<u64> = (0..20).collect();
            order.shuffle(rng);
            let dup_len = rng.gen_range(0..10usize);
            let dup: Vec<u64> = (0..dup_len).map(|_| rng.gen_range(0..20u64)).collect();
            let mut b = RecvBuffer::new();
            let mut total = 0;
            for seg in order.iter().chain(dup.iter()) {
                total += b.on_segment(seg * 100, 100);
            }
            assert_eq!(total, 2_000, "order {order:?}, dup {dup:?}");
            assert_eq!(b.rcv_nxt(), 2_000, "order {order:?}, dup {dup:?}");
            assert_eq!(b.ooo_ranges(), 0, "order {order:?}, dup {dup:?}");
        });
    }
}
