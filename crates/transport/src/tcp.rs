//! TCP NewReno sender, with the DCTCP extension as a configuration.
//!
//! This is the paper's baseline pair: TCP NewReno (the testbed's CentOS
//! stack) and DCTCP [Alizadeh et al., SIGCOMM '10]. Both share the same
//! loss recovery (fast retransmit / fast recovery, RTO with exponential
//! backoff); DCTCP adds ECT marking on data and the `alpha`-proportional
//! window reduction from ECN feedback.

use simnet::endpoint::{Effects, Note, SenderEndpoint};
use simnet::packet::{Flags, FlowId, NodeId, Packet, MSS};
use simnet::units::{Dur, Time};

use crate::rtt::RttEstimator;

/// TCP / DCTCP sender configuration.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Initial congestion window in bytes (RFC 3390: 3 segments for a
    /// 1460 B MSS, matching the paper-era Linux 2.6.38 default).
    pub init_cwnd: u64,
    /// Minimum retransmission timeout (Linux default: 200 ms).
    pub min_rto: Dur,
    /// Maximum retransmission timeout.
    pub max_rto: Dur,
    /// Receiver advertised window in bytes: the effective send window is
    /// `min(cwnd, awnd)`. The paper-era Linux stacks cap in-flight data
    /// this way; without it, persistent incast connections grow
    /// unbounded windows between loss events and every round bursts at
    /// full rate.
    pub awnd: u64,
    /// Whether to mark data ECN-capable and react to ECE (DCTCP).
    pub ecn: bool,
    /// DCTCP `g` (weight of new fraction in the alpha EWMA).
    pub dctcp_g: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            init_cwnd: 3 * MSS,
            min_rto: Dur::millis(200),
            max_rto: Dur::secs(60),
            awnd: 64 * 1024,
            ecn: false,
            dctcp_g: 1.0 / 16.0,
        }
    }
}

impl TcpConfig {
    /// The DCTCP variant of the default config (`g = 1/16`, as the paper
    /// sets following \[7\]).
    pub fn dctcp() -> Self {
        Self {
            ecn: true,
            ..Self::default()
        }
    }
}

#[derive(Debug)]
struct DctcpState {
    alpha: f64,
    g: f64,
    acked_bytes: u64,
    marked_bytes: u64,
    window_end: u64,
}

/// TCP NewReno sender endpoint (DCTCP when `cfg.ecn` is set).
pub struct TcpSender {
    flow: FlowId,
    local: NodeId,
    remote: NodeId,
    cfg: TcpConfig,
    // Stream state.
    pushed: u64,
    closed: bool,
    snd_una: u64,
    snd_nxt: u64,
    fin_sent: bool,
    // Connection state.
    syn_sent: bool,
    established: bool,
    done_noted: bool,
    // Congestion control.
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    dctcp: Option<DctcpState>,
    // Timing.
    est: RttEstimator,
    timer_gen: u64,
    timer_armed: bool,
    rtt_probe: Option<(u64, Time)>,
}

impl TcpSender {
    /// Creates a sender for `flow` from `local` to `remote`; `bytes` is
    /// the sized-flow length (`None` = open-ended, fed by `push_data`).
    pub fn new(
        flow: FlowId,
        local: NodeId,
        remote: NodeId,
        bytes: Option<u64>,
        cfg: TcpConfig,
    ) -> Self {
        let dctcp = cfg.ecn.then_some(DctcpState {
            alpha: 1.0,
            g: cfg.dctcp_g,
            acked_bytes: 0,
            marked_bytes: 0,
            window_end: 0,
        });
        Self {
            flow,
            local,
            remote,
            cfg,
            pushed: bytes.unwrap_or(0),
            closed: bytes.is_some(),
            snd_una: 0,
            snd_nxt: 0,
            fin_sent: false,
            syn_sent: false,
            established: false,
            done_noted: false,
            cwnd: cfg.init_cwnd as f64,
            ssthresh: f64::INFINITY,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            dctcp,
            est: RttEstimator::new(cfg.min_rto, cfg.max_rto),
            timer_gen: 0,
            timer_armed: false,
            rtt_probe: None,
        }
    }

    fn outstanding(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn arm_timer(&mut self, fx: &mut Effects) {
        if self.timer_armed {
            fx.cancel_timer(self.timer_gen);
        }
        self.timer_gen += 1;
        self.timer_armed = true;
        fx.timer(self.est.rto(), self.timer_gen);
    }

    fn disarm_timer(&mut self, fx: &mut Effects) {
        if self.timer_armed {
            fx.cancel_timer(self.timer_gen);
        }
        self.timer_armed = false;
        self.timer_gen += 1; // invalidate a pending RTO that outran the cancel
    }

    fn emit_data(&mut self, seq: u64, len: u64, now: Time, fx: &mut Effects) {
        let mut pkt = Packet::data(self.flow, self.local, self.remote, seq, len);
        if self.cfg.ecn {
            pkt.flags.set(Flags::ECT);
        }
        if self.rtt_probe.is_none() {
            self.rtt_probe = Some((seq + len, now));
        }
        fx.send(pkt);
    }

    fn emit_fin(&mut self, fx: &mut Effects) {
        let mut fin = Packet::data(self.flow, self.local, self.remote, self.pushed, 0);
        fin.flags.set(Flags::FIN);
        if self.cfg.ecn {
            fin.flags.set(Flags::ECT);
        }
        fx.send(fin);
    }

    fn emit_syn(&mut self, fx: &mut Effects) {
        let mut syn = Packet::data(self.flow, self.local, self.remote, 0, 0);
        syn.flags.set(Flags::SYN);
        fx.send(syn);
    }

    /// Sends whatever the window and stream allow.
    fn send_available(&mut self, now: Time, fx: &mut Effects) {
        if !self.established {
            return;
        }
        loop {
            let wnd = (self.cwnd.max(0.0) as u64).min(self.cfg.awnd);
            let wnd_end = self.snd_una + wnd;
            if self.snd_nxt >= self.pushed || self.snd_nxt >= wnd_end {
                break;
            }
            let remaining = self.pushed - self.snd_nxt;
            let len = remaining.min(MSS);
            // Do not split segments to fit a sub-MSS window remnant
            // unless that remnant covers the rest of the stream.
            if wnd_end - self.snd_nxt < len {
                break;
            }
            self.emit_data(self.snd_nxt, len, now, fx);
            self.snd_nxt += len;
        }
        if self.closed && !self.fin_sent && self.snd_nxt == self.pushed {
            self.fin_sent = true;
            self.snd_nxt = self.pushed + 1;
            self.emit_fin(fx);
        }
        if self.outstanding() > 0 && !self.timer_armed {
            self.arm_timer(fx);
        }
    }

    /// Retransmits the segment at `snd_una` (or the FIN).
    fn retransmit_head(&mut self, now: Time, fx: &mut Effects) {
        let _ = now;
        fx.note(Note::Retransmit);
        self.rtt_probe = None; // Karn: never time a retransmission.
        if self.snd_una >= self.pushed {
            if self.fin_sent {
                self.emit_fin(fx);
            }
            return;
        }
        let len = (self.pushed - self.snd_una).min(MSS);
        let mut pkt = Packet::data(self.flow, self.local, self.remote, self.snd_una, len);
        if self.cfg.ecn {
            pkt.flags.set(Flags::ECT);
        }
        fx.send(pkt);
    }

    fn on_new_ack(&mut self, ack: u64, ece: bool, now: Time, fx: &mut Effects) {
        let acked = ack - self.snd_una;
        self.snd_una = ack;
        self.dup_acks = 0;

        if let Some((target, t0)) = self.rtt_probe {
            if ack >= target {
                let rtt = now - t0;
                self.est.sample(rtt);
                fx.note(Note::RttSample {
                    nanos: rtt.as_nanos(),
                });
                self.rtt_probe = None;
            }
        }

        if let Some(d) = &mut self.dctcp {
            d.acked_bytes += acked;
            if ece {
                d.marked_bytes += acked;
            }
        }

        if self.in_recovery {
            if ack >= self.recover {
                // Full acknowledgement: leave fast recovery.
                self.in_recovery = false;
                self.cwnd = self.ssthresh;
                fx.note(Note::WindowAcquired {
                    bytes: self.cwnd as u64,
                });
            } else {
                // Partial ack: retransmit the next hole, deflate.
                self.retransmit_head(now, fx);
                self.cwnd = (self.cwnd - acked as f64 + MSS as f64).max(MSS as f64);
                self.arm_timer(fx);
            }
        } else {
            if self.cwnd < self.ssthresh {
                self.cwnd += acked.min(MSS) as f64; // slow start (ABC)
            } else {
                self.cwnd += (MSS as f64) * (MSS as f64) / self.cwnd;
            }
            // DCTCP reacts once per window of data.
            let rollover = self.dctcp.as_ref().is_some_and(|d| ack >= d.window_end);
            if rollover {
                let d = self.dctcp.as_mut().expect("checked above");
                if d.acked_bytes > 0 {
                    let f = d.marked_bytes as f64 / d.acked_bytes as f64;
                    d.alpha = (1.0 - d.g) * d.alpha + d.g * f;
                    if d.marked_bytes > 0 {
                        self.cwnd = (self.cwnd * (1.0 - d.alpha / 2.0)).max(MSS as f64);
                        self.ssthresh = self.cwnd;
                    }
                    d.acked_bytes = 0;
                    d.marked_bytes = 0;
                }
                d.window_end = self.snd_nxt;
            }
        }

        // FIN fully acknowledged?
        if self.fin_sent && self.snd_una > self.pushed && !self.done_noted {
            self.done_noted = true;
            self.disarm_timer(fx);
            fx.note(Note::SenderDone);
            return;
        }
        if self.outstanding() > 0 {
            self.arm_timer(fx);
        } else {
            self.disarm_timer(fx);
        }
        self.send_available(now, fx);
    }

    fn on_dup_ack(&mut self, now: Time, fx: &mut Effects) {
        self.dup_acks += 1;
        if self.in_recovery {
            // Inflate and try to keep the pipe full.
            self.cwnd += MSS as f64;
            self.send_available(now, fx);
        } else if self.dup_acks == 3 {
            self.ssthresh = (self.outstanding() as f64 / 2.0).max(2.0 * MSS as f64);
            self.recover = self.snd_nxt;
            self.in_recovery = true;
            self.retransmit_head(now, fx);
            self.cwnd = self.ssthresh + 3.0 * MSS as f64;
            fx.note(Note::WindowAcquired {
                bytes: self.cwnd as u64,
            });
            self.arm_timer(fx);
        }
    }

    /// Congestion state for tests and diagnostics: `(cwnd, ssthresh,
    /// in_recovery)`.
    pub fn cc_state(&self) -> (f64, f64, bool) {
        (self.cwnd, self.ssthresh, self.in_recovery)
    }

    /// DCTCP alpha (1.0 initially), if ECN mode is on.
    pub fn dctcp_alpha(&self) -> Option<f64> {
        self.dctcp.as_ref().map(|d| d.alpha)
    }
}

impl SenderEndpoint for TcpSender {
    fn open(&mut self, _now: Time, fx: &mut Effects) {
        if !self.syn_sent {
            self.syn_sent = true;
            self.emit_syn(fx);
            self.arm_timer(fx);
        }
    }

    fn push_data(&mut self, bytes: u64, now: Time, fx: &mut Effects) {
        assert!(!self.closed, "push_data after close");
        self.pushed += bytes;
        self.send_available(now, fx);
    }

    fn close(&mut self, now: Time, fx: &mut Effects) {
        self.closed = true;
        self.send_available(now, fx);
    }

    fn on_packet(&mut self, pkt: &Packet, now: Time, fx: &mut Effects) {
        if pkt.flags.contains(Flags::SYN) && pkt.flags.contains(Flags::ACK) {
            if !self.established {
                self.established = true;
                self.disarm_timer(fx);
                fx.note(Note::Established);
                self.send_available(now, fx);
            }
            return;
        }
        if !pkt.flags.contains(Flags::ACK) || !self.established {
            return;
        }
        let ece = pkt.flags.contains(Flags::ECE);
        // Never trust an ACK beyond what was actually sent.
        let ack = pkt.ack.min(self.snd_nxt);
        if ack > self.snd_una {
            self.on_new_ack(ack, ece, now, fx);
        } else if ack == self.snd_una && self.outstanding() > 0 {
            self.on_dup_ack(now, fx);
        }
    }

    fn on_timer(&mut self, token: u64, now: Time, fx: &mut Effects) {
        if token != self.timer_gen || !self.timer_armed {
            return; // Stale timer.
        }
        self.timer_armed = false;
        if !self.established {
            // SYN loss.
            fx.note(Note::Timeout);
            self.est.back_off();
            self.emit_syn(fx);
            self.arm_timer(fx);
            return;
        }
        if self.outstanding() == 0 {
            return;
        }
        fx.note(Note::Timeout);
        self.ssthresh = (self.outstanding() as f64 / 2.0).max(2.0 * MSS as f64);
        self.cwnd = MSS as f64;
        fx.note(Note::WindowAcquired {
            bytes: self.cwnd as u64,
        });
        self.in_recovery = false;
        self.dup_acks = 0;
        self.est.back_off();
        // Go-back-N: rewind and resend from the cumulative ACK point.
        self.snd_nxt = self.snd_una.min(self.pushed);
        let fin_was_sent = self.fin_sent;
        self.fin_sent = false;
        if self.snd_nxt < self.pushed {
            self.retransmit_head(now, fx);
            self.snd_nxt = self.snd_una + (self.pushed - self.snd_una).min(MSS);
        } else if fin_was_sent {
            self.fin_sent = true;
            self.snd_nxt = self.pushed + 1;
            fx.note(Note::Retransmit);
            self.emit_fin(fx);
        }
        self.arm_timer(fx);
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn acked_bytes(&self) -> u64 {
        self.snd_una.min(self.pushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H0: NodeId = NodeId(0);
    const H1: NodeId = NodeId(1);

    fn sender(bytes: u64) -> TcpSender {
        TcpSender::new(FlowId(1), H0, H1, Some(bytes), TcpConfig::default())
    }

    fn establish(s: &mut TcpSender) -> Effects {
        let mut fx = Effects::new();
        s.open(Time::ZERO, &mut fx);
        assert!(fx.packets[0].flags.contains(Flags::SYN));
        let mut synack = Packet::ack(FlowId(1), H1, H0, 0);
        synack.flags.set(Flags::SYN);
        let mut fx2 = Effects::new();
        s.on_packet(&synack, Time(1_000), &mut fx2);
        fx2
    }

    fn ack(n: u64) -> Packet {
        Packet::ack(FlowId(1), H1, H0, n)
    }

    #[test]
    fn initial_window_after_handshake() {
        let mut s = sender(100_000);
        let fx = establish(&mut s);
        assert!(fx.notes.contains(&Note::Established));
        // 3 * MSS initial window: 3 full segments.
        let data: Vec<_> = fx.packets.iter().filter(|p| p.is_data()).collect();
        assert_eq!(data.len(), 3);
        assert_eq!(data[0].seq, 0);
        assert_eq!(data[2].seq, 2 * MSS);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender(1_000_000);
        establish(&mut s);
        let mut fx = Effects::new();
        s.on_packet(&ack(MSS), Time(2_000), &mut fx);
        // cwnd grew by one MSS: one ACK releases two segments.
        let sent = fx.packets.iter().filter(|p| p.is_data()).count();
        assert_eq!(sent, 2);
    }

    #[test]
    fn dup_acks_trigger_fast_retransmit() {
        let mut s = sender(1_000_000);
        establish(&mut s);
        for _ in 0..2 {
            let mut fx = Effects::new();
            s.on_packet(&ack(0), Time(2_000), &mut fx);
            assert!(fx.packets.is_empty());
        }
        let mut fx = Effects::new();
        s.on_packet(&ack(0), Time(2_000), &mut fx);
        assert!(fx.notes.contains(&Note::Retransmit));
        let rtx = fx.packets.iter().find(|p| p.is_data()).expect("retransmit");
        assert_eq!(rtx.seq, 0);
        assert!(s.cc_state().2, "in recovery");
    }

    #[test]
    fn full_ack_exits_recovery_at_ssthresh() {
        let mut s = sender(1_000_000);
        establish(&mut s);
        for _ in 0..3 {
            let mut fx = Effects::new();
            s.on_packet(&ack(0), Time(2_000), &mut fx);
        }
        let recover = s.recover;
        let mut fx = Effects::new();
        s.on_packet(&ack(recover), Time(3_000), &mut fx);
        let (cwnd, ssthresh, in_rec) = s.cc_state();
        assert!(!in_rec);
        assert_eq!(cwnd, ssthresh);
    }

    #[test]
    fn rto_collapses_window_and_retransmits() {
        let mut s = sender(1_000_000);
        let fx = establish(&mut s);
        let rto_token = fx
            .timers
            .last()
            .map(|&(_, tok)| tok)
            .expect("timer armed after handshake data");
        let mut fx2 = Effects::new();
        s.on_timer(rto_token, Time::ZERO + Dur::millis(200), &mut fx2);
        assert!(fx2.notes.contains(&Note::Timeout));
        assert_eq!(s.cwnd(), MSS);
        let rtx = fx2.packets.iter().find(|p| p.is_data()).expect("rtx");
        assert_eq!(rtx.seq, 0);
    }

    #[test]
    fn stale_timer_ignored() {
        let mut s = sender(1_000_000);
        let fx = establish(&mut s);
        let stale = fx.timers.last().unwrap().1;
        // Progress: ACK arrives, rearming with a new generation.
        let mut fx2 = Effects::new();
        s.on_packet(&ack(MSS), Time(2_000), &mut fx2);
        let mut fx3 = Effects::new();
        s.on_timer(stale, Time(3_000), &mut fx3);
        assert!(fx3.notes.is_empty());
        assert!(fx3.packets.is_empty());
    }

    #[test]
    fn fin_sent_and_done_on_final_ack() {
        let mut s = sender(1_000); // single sub-MSS segment
        let fx = establish(&mut s);
        let data: Vec<_> = fx.packets.iter().filter(|p| p.is_data()).collect();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].payload, 1_000);
        let fin = fx
            .packets
            .iter()
            .find(|p| p.flags.contains(Flags::FIN))
            .expect("fin");
        assert_eq!(fin.seq, 1_000);
        let mut fx2 = Effects::new();
        s.on_packet(&ack(1_001), Time(5_000), &mut fx2);
        assert!(fx2.notes.contains(&Note::SenderDone));
    }

    #[test]
    fn syn_loss_retries() {
        let mut s = sender(1_000);
        let mut fx = Effects::new();
        s.open(Time::ZERO, &mut fx);
        let tok = fx.timers[0].1;
        let mut fx2 = Effects::new();
        s.on_timer(tok, Time::ZERO + Dur::millis(200), &mut fx2);
        assert!(fx2.notes.contains(&Note::Timeout));
        assert!(fx2.packets[0].flags.contains(Flags::SYN));
    }

    #[test]
    fn congestion_avoidance_linear() {
        let mut s = sender(10_000_000);
        establish(&mut s);
        // Force CA by setting up a loss + recovery exit.
        for _ in 0..3 {
            let mut fx = Effects::new();
            s.on_packet(&ack(0), Time(2_000), &mut fx);
        }
        let recover = s.recover;
        let mut fx = Effects::new();
        s.on_packet(&ack(recover), Time(3_000), &mut fx);
        let (cwnd0, ssthresh, _) = s.cc_state();
        assert!(cwnd0 >= ssthresh);
        let una = s.snd_una;
        let mut fx = Effects::new();
        s.on_packet(&ack(una + MSS), Time(4_000), &mut fx);
        let (cwnd1, _, _) = s.cc_state();
        let growth = cwnd1 - cwnd0;
        assert!(growth > 0.0 && growth <= MSS as f64);
    }

    #[test]
    fn dctcp_alpha_tracks_marks() {
        let mut s = TcpSender::new(FlowId(1), H0, H1, Some(10_000_000), TcpConfig::dctcp());
        establish(&mut s);
        assert_eq!(s.dctcp_alpha(), Some(1.0));
        // Every byte of the first window marked: alpha stays high and the
        // window is cut.
        let mut marked = ack(3 * MSS);
        marked.flags.set(Flags::ECE);
        let mut fx = Effects::new();
        let cwnd_before = s.cwnd();
        s.on_packet(&marked, Time(2_000), &mut fx);
        assert!(s.cwnd() < cwnd_before + MSS);
        // Unmarked windows decay alpha.
        let mut a_prev = s.dctcp_alpha().unwrap();
        for i in 2..20 {
            let mut fx = Effects::new();
            s.on_packet(&ack(i * 3 * MSS), Time(2_000 + i), &mut fx);
            let a = s.dctcp_alpha().unwrap();
            assert!(a <= a_prev);
            a_prev = a;
        }
        assert!(a_prev < 0.5);
    }

    #[test]
    fn dctcp_sets_ect_on_data() {
        let mut s = TcpSender::new(FlowId(1), H0, H1, Some(10_000), TcpConfig::dctcp());
        let fx = establish(&mut s);
        for p in fx.packets.iter().filter(|p| p.is_data()) {
            assert!(p.flags.contains(Flags::ECT));
        }
    }

    #[test]
    fn open_ended_push_and_close() {
        let mut s = TcpSender::new(FlowId(1), H0, H1, None, TcpConfig::default());
        establish(&mut s);
        let mut fx = Effects::new();
        s.push_data(500, Time(2_000), &mut fx);
        assert_eq!(fx.packets[0].payload, 500);
        let mut fx2 = Effects::new();
        s.on_packet(&ack(500), Time(3_000), &mut fx2);
        let mut fx3 = Effects::new();
        s.close(Time(4_000), &mut fx3);
        assert!(fx3.packets[0].flags.contains(Flags::FIN));
    }
}
