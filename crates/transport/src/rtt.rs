//! RFC 6298 round-trip-time estimation and RTO management.

use simnet::units::Dur;

/// RTT estimator with RFC 6298 smoothing and a configurable RTO clamp.
///
/// Retransmitted segments must not be sampled (Karn's algorithm); the
/// senders in this crate enforce that by clearing their timing state on
/// retransmission.
///
/// # Examples
///
/// ```
/// use simnet::units::Dur;
/// use tfc_transport::rtt::RttEstimator;
///
/// let mut est = RttEstimator::new(Dur::millis(200), Dur::secs(60));
/// est.sample(Dur::micros(100));
/// assert_eq!(est.rto(), Dur::millis(200)); // clamped to min RTO
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RttEstimator {
    srtt: Option<Dur>,
    rttvar: Dur,
    min_rto: Dur,
    max_rto: Dur,
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO clamp.
    pub fn new(min_rto: Dur, max_rto: Dur) -> Self {
        Self {
            srtt: None,
            rttvar: Dur::ZERO,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Feeds one RTT measurement and resets exponential backoff.
    pub fn sample(&mut self, rtt: Dur) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Dur(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|,
                //           srtt  = 7/8 srtt  + 1/8 rtt.
                let err = Dur(srtt.as_nanos().abs_diff(rtt.as_nanos()));
                self.rttvar = Dur((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                self.srtt = Some(Dur((7 * srtt.as_nanos() + rtt.as_nanos()) / 8));
            }
        }
        self.backoff = 0;
    }

    /// Current retransmission timeout, including backoff, clamped to
    /// `[min_rto, max_rto]`.
    pub fn rto(&self) -> Dur {
        let base = match self.srtt {
            None => self.min_rto,
            Some(srtt) => Dur(srtt.as_nanos().saturating_add(4 * self.rttvar.as_nanos().max(1))),
        };
        // A large base shifted by the backoff count can overflow u64; an
        // unchecked `<<` would wrap to a tiny value and the clamp below
        // would then *shrink* the RTO on backoff. Saturate to max_rto
        // instead: backoff may only ever lengthen the timeout.
        let shift = self.backoff.min(16);
        let backed = match base.as_nanos().checked_shl(shift) {
            Some(v) if v >> shift == base.as_nanos() => v,
            _ => self.max_rto.as_nanos(),
        };
        Dur(backed.clamp(self.min_rto.as_nanos(), self.max_rto.as_nanos()))
    }

    /// Doubles the RTO (called on each timeout).
    pub fn back_off(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Smoothed RTT, if at least one sample has arrived.
    pub fn srtt(&self) -> Option<Dur> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(Dur::millis(10), Dur::secs(60))
    }

    #[test]
    fn initial_rto_is_min() {
        assert_eq!(est().rto(), Dur::millis(10));
    }

    #[test]
    fn first_sample_sets_srtt() {
        let mut e = est();
        e.sample(Dur::micros(100));
        assert_eq!(e.srtt(), Some(Dur::micros(100)));
        // 100us + 4*50us = 300us, clamped up to min 10ms.
        assert_eq!(e.rto(), Dur::millis(10));
    }

    #[test]
    fn large_rtt_escapes_min_clamp() {
        let mut e = est();
        e.sample(Dur::millis(100));
        // 100ms + 4 * 50ms = 300ms.
        assert_eq!(e.rto(), Dur::millis(300));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(Dur::micros(200));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt.as_nanos().abs_diff(Dur::micros(200).as_nanos()) < 1_000);
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = est();
        e.sample(Dur::millis(100));
        let base = e.rto();
        e.back_off();
        assert_eq!(e.rto(), Dur(base.as_nanos() * 2));
        e.back_off();
        assert_eq!(e.rto(), Dur(base.as_nanos() * 4));
        e.sample(Dur::millis(100));
        assert!(e.rto() <= Dur(base.as_nanos() * 2));
    }

    #[test]
    fn rto_clamped_to_max() {
        let mut e = RttEstimator::new(Dur::millis(1), Dur::millis(50));
        e.sample(Dur::millis(100));
        assert_eq!(e.rto(), Dur::millis(50));
    }

    /// Regression: an extreme SRTT-derived base shifted by the backoff
    /// count used to wrap u64 and come out *below* the pre-backoff RTO.
    /// The shift now saturates to `max_rto`.
    #[test]
    fn huge_base_backoff_saturates_instead_of_wrapping() {
        let max = Dur::secs(300);
        let mut e = RttEstimator::new(Dur::millis(1), max);
        // SRTT near 2^61 ns: one back_off would overflow the shift.
        e.sample(Dur(1u64 << 61));
        assert_eq!(e.rto(), max);
        for _ in 0..20 {
            e.back_off();
            assert_eq!(e.rto(), max, "backoff {} wrapped", e.backoff);
        }
    }

    /// Acceptance property: over extreme bases and backoff counts, the
    /// RTO never decreases as backoff increases.
    #[test]
    fn rto_is_monotone_in_backoff() {
        use rng::props::cases;
        use rng::Rng;
        cases(128, |_case, rng| {
            let min_rto = Dur(rng.gen_range(1..10_000_000u64));
            let max_rto = Dur(min_rto.as_nanos().saturating_add(rng.gen_range(1..u64::MAX / 2)));
            let mut e = RttEstimator::new(min_rto, max_rto);
            // Mix ordinary and near-overflow RTT samples.
            let rtt = if rng.gen_bool(0.5) {
                Dur(rng.gen_range(1_000..100_000_000u64))
            } else {
                Dur(rng.gen_range(1u64 << 50..1u64 << 63))
            };
            e.sample(rtt);
            let mut last = e.rto();
            assert!(last >= min_rto && last <= max_rto);
            for i in 0..24 {
                e.back_off();
                let rto = e.rto();
                assert!(
                    rto >= last,
                    "RTO shrank from {last:?} to {rto:?} at backoff {i} (rtt {rtt:?})"
                );
                assert!(rto >= min_rto && rto <= max_rto, "clamp violated: {rto:?}");
                last = rto;
            }
        });
    }
}
