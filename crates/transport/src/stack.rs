//! Protocol stack factories for the baseline transports.

use simnet::endpoint::{FlowSpec, ProtocolStack, ReceiverEndpoint, SenderEndpoint};
use simnet::packet::FlowId;

use crate::recv::{EchoMode, StreamReceiver};
use crate::tcp::{TcpConfig, TcpSender};

/// TCP NewReno for every flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpStack {
    /// Sender configuration.
    pub cfg: TcpConfig,
}

impl TcpStack {
    /// Creates a stack with the given config.
    pub fn new(cfg: TcpConfig) -> Self {
        Self { cfg }
    }
}

impl ProtocolStack for TcpStack {
    fn new_sender(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn SenderEndpoint> {
        Box::new(TcpSender::new(
            flow, spec.src, spec.dst, spec.bytes, self.cfg,
        ))
    }

    fn new_receiver(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn ReceiverEndpoint> {
        Box::new(StreamReceiver::new(
            flow,
            spec.dst,
            spec.src,
            spec.bytes,
            EchoMode::None,
        ))
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

/// DCTCP for every flow (pair with [`simnet::policy::EcnMark`] switches).
#[derive(Debug, Clone, Copy)]
pub struct DctcpStack {
    /// Sender configuration (must have `ecn` set).
    pub cfg: TcpConfig,
}

impl Default for DctcpStack {
    fn default() -> Self {
        Self {
            cfg: TcpConfig::dctcp(),
        }
    }
}

impl DctcpStack {
    /// Creates a stack with the given config, forcing ECN on.
    pub fn new(mut cfg: TcpConfig) -> Self {
        cfg.ecn = true;
        Self { cfg }
    }
}

impl ProtocolStack for DctcpStack {
    fn new_sender(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn SenderEndpoint> {
        Box::new(TcpSender::new(
            flow, spec.src, spec.dst, spec.bytes, self.cfg,
        ))
    }

    fn new_receiver(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn ReceiverEndpoint> {
        Box::new(StreamReceiver::new(
            flow,
            spec.dst,
            spec.src,
            spec.bytes,
            EchoMode::Ecn,
        ))
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::packet::NodeId;

    #[test]
    fn stacks_build_endpoints() {
        let spec = FlowSpec {
            src: NodeId(0),
            dst: NodeId(1),
            bytes: Some(1_000),
            weight: 1,
        };
        let tcp = TcpStack::default();
        assert_eq!(tcp.name(), "tcp");
        let s = tcp.new_sender(FlowId(0), &spec);
        assert_eq!(s.acked_bytes(), 0);
        let r = tcp.new_receiver(FlowId(0), &spec);
        assert_eq!(r.delivered_bytes(), 0);

        let dctcp = DctcpStack::default();
        assert_eq!(dctcp.name(), "dctcp");
        assert!(dctcp.cfg.ecn);
        let forced = DctcpStack::new(TcpConfig::default());
        assert!(forced.cfg.ecn);
    }
}
