//! Baseline transports for the TFC reproduction.
//!
//! Provides the reliable-stream machinery shared by every protocol in
//! the workspace (RTT estimation, receive-side reassembly, the generic
//! [`recv::StreamReceiver`]) plus the paper's two baselines:
//!
//! * **TCP NewReno** ([`tcp::TcpSender`] with default config) — the
//!   testbed's CentOS 5.5 stack: slow start, congestion avoidance, fast
//!   retransmit/recovery, 200 ms minimum RTO;
//! * **DCTCP** ([`tcp::TcpConfig::dctcp`]) — ECT marking plus the
//!   `alpha`-proportional window reduction, paired with
//!   [`simnet::policy::EcnMark`] switches (K = 32 KB at 1 Gbps in the
//!   paper's testbed).
//!
//! The TFC protocol itself lives in the `tfc` crate and reuses the
//! receiver and RTT machinery from here.

pub mod recv;
pub mod rtt;
pub mod stack;
pub mod tcp;

pub use recv::{EchoMode, RecvBuffer, StreamReceiver};
pub use rtt::RttEstimator;
pub use stack::{DctcpStack, TcpStack};
pub use tcp::{TcpConfig, TcpSender};
