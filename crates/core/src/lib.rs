//! Token Flow Control (TFC) — the primary contribution of
//! *TFC: Token Flow Control in Data Center Networks* (EuroSys '16).
//!
//! TFC is an explicit, window-based transport for data centers. Each
//! switch egress port converts its link capacity into **tokens**
//! (`T = c × rtt_b`, Eq. 3), counts the **number of effective flows**
//! per time slot by counting round-marked packets (Eq. 4), and assigns
//! every flow the window `W = T / E` (Eq. 5), adjusted for measured
//! utilisation (Eq. 7) and smoothed (Eq. 8). Because the token excludes
//! buffer space, steady state has (near) zero queueing; the
//! window-acquisition phase and the sub-MSS **delay arbiter** (§4.6)
//! keep even massive incast loss-free.
//!
//! The crate provides:
//!
//! * [`port::TokenEngine`] — the per-port slot state machine (RTT timer,
//!   N counter, rho counter, token allocator, window calculator);
//! * [`arbiter::DelayArbiter`] — the token-bucket ACK pacing of §4.6;
//! * [`switch::TfcSwitchPolicy`] — the two glued into the simulator's
//!   switch hooks;
//! * [`sender::TfcSender`] + [`stack::TfcStack`] — the end-host side
//!   (§5.1/§5.3), reusing the shared receiver from the `transport`
//!   crate;
//! * [`config`] — paper-faithful defaults (`rho0 = 0.97`, `alpha = 7/8`,
//!   initial `rtt_b` 160 µs) plus ablation switches.
//!
//! # Examples
//!
//! Wire a TFC network:
//!
//! ```
//! use simnet::topology::star;
//! use simnet::units::{Bandwidth, Dur};
//! use tfc::switch::TfcSwitchPolicy;
//! use tfc::config::TfcSwitchConfig;
//!
//! let (t, hosts, _sw) = star(4, Bandwidth::gbps(1), Dur::micros(1));
//! let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
//! assert_eq!(net.hosts.len(), hosts.len());
//! ```

pub mod arbiter;
pub mod config;
pub mod port;
pub mod sender;
pub mod stack;
pub mod switch;

pub use arbiter::DelayArbiter;
pub use config::{TfcHostConfig, TfcSwitchConfig};
pub use port::TokenEngine;
pub use sender::TfcSender;
pub use stack::TfcStack;
pub use switch::TfcSwitchPolicy;
