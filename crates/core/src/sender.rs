//! The TFC sender endpoint (§5.1).
//!
//! The sender is deliberately simple — the paper's point is that explicit
//! switch allocation makes end-host congestion control trivial:
//!
//! * the SYN carries the round mark (switches count establishing flows);
//! * after the handshake, a zero-payload RM probe fetches the first
//!   window (the window-acquisition phase of §4.6);
//! * the first data packet after each received RMA carries the RM bit,
//!   with the window field reset to the init value for switches to
//!   min-clamp;
//! * the congestion window is exactly the value carried by the last RMA;
//! * loss recovery is a plain dup-ACK fast retransmit plus an RTO safety
//!   net (TFC rarely drops, so these are cold paths).

use simnet::endpoint::{Effects, Note, SenderEndpoint};
use simnet::packet::{Flags, FlowId, NodeId, Packet, MSS, WINDOW_INIT};
use simnet::units::{Dur, Time};
use transport::rtt::RttEstimator;

use crate::config::TfcHostConfig;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Window-acquisition probe in flight.
    WindowAcq,
    /// Normal data transfer.
    Streaming,
}

/// TFC sender endpoint.
pub struct TfcSender {
    flow: FlowId,
    local: NodeId,
    remote: NodeId,
    cfg: TfcHostConfig,
    /// Allocation weight carried in every packet header.
    weight: u8,
    state: State,
    // Stream.
    pushed: u64,
    closed: bool,
    snd_una: u64,
    snd_nxt: u64,
    fin_sent: bool,
    done_noted: bool,
    // Window.
    cwnd: u64,
    /// The next outgoing data packet carries the RM bit.
    rm_pending: bool,
    /// An RM packet is in flight and its RMA has not returned.
    rm_outstanding: bool,
    /// Sequence end of the last marked packet, for RMA-loss detection.
    rm_seq_end: u64,
    /// When the last round mark was sent. Marks are spaced at least half
    /// an RTT apart: the delay arbiter can reorder an RMA behind plain
    /// ACKs, and without spacing the re-mark paths emit back-to-back
    /// marks whose compressed interval poisons the switch's `rtt_b`.
    rm_sent_at: Option<Time>,
    dup_acks: u32,
    // Timing.
    est: RttEstimator,
    timer_gen: u64,
    timer_armed: bool,
    rtt_probe: Option<(u64, Time)>,
}

impl TfcSender {
    /// Creates a sender for `flow` from `local` to `remote`; `bytes` is
    /// the sized-flow length (`None` = open-ended).
    pub fn new(
        flow: FlowId,
        local: NodeId,
        remote: NodeId,
        bytes: Option<u64>,
        cfg: TfcHostConfig,
    ) -> Self {
        Self::with_weight(flow, local, remote, bytes, cfg, 1)
    }

    /// Creates a sender with an allocation weight (weighted extension).
    pub fn with_weight(
        flow: FlowId,
        local: NodeId,
        remote: NodeId,
        bytes: Option<u64>,
        cfg: TfcHostConfig,
        weight: u8,
    ) -> Self {
        Self {
            flow,
            local,
            remote,
            cfg,
            weight: weight.max(1),
            state: State::SynSent,
            pushed: bytes.unwrap_or(0),
            closed: bytes.is_some(),
            snd_una: 0,
            snd_nxt: 0,
            fin_sent: false,
            done_noted: false,
            cwnd: 0,
            rm_pending: false,
            rm_outstanding: false,
            rm_seq_end: 0,
            rm_sent_at: None,
            dup_acks: 0,
            est: RttEstimator::new(cfg.min_rto, cfg.max_rto),
            timer_gen: 0,
            timer_armed: false,
            rtt_probe: None,
        }
    }

    fn outstanding(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Whether enough time has passed since the last mark to mark again.
    fn mark_spacing_ok(&self, now: Time) -> bool {
        match (self.rm_sent_at, self.est.srtt()) {
            (Some(at), Some(srtt)) => now.since(at) >= Dur(srtt.as_nanos() / 2),
            _ => true,
        }
    }

    fn arm_timer(&mut self, fx: &mut Effects) {
        if self.timer_armed {
            fx.cancel_timer(self.timer_gen);
        }
        self.timer_gen += 1;
        self.timer_armed = true;
        fx.timer(self.est.rto(), self.timer_gen);
    }

    fn disarm_timer(&mut self, fx: &mut Effects) {
        if self.timer_armed {
            fx.cancel_timer(self.timer_gen);
        }
        self.timer_armed = false;
        self.timer_gen += 1; // invalidate a pending RTO that outran the cancel
    }

    fn emit_syn(&mut self, fx: &mut Effects) {
        let mut syn = Packet::data(self.flow, self.local, self.remote, 0, 0);
        syn.flags.set(Flags::SYN.with(Flags::RM));
        syn.window = WINDOW_INIT;
        syn.weight = self.weight;
        fx.send(syn);
    }

    fn emit_probe(&mut self, fx: &mut Effects) {
        let mut probe = Packet::data(self.flow, self.local, self.remote, self.snd_una, 0);
        probe.flags.set(Flags::RM);
        probe.window = WINDOW_INIT;
        probe.weight = self.weight;
        self.rm_outstanding = true;
        fx.send(probe);
    }

    fn emit_data(&mut self, seq: u64, len: u64, rm: bool, now: Time, fx: &mut Effects) {
        let mut pkt = Packet::data(self.flow, self.local, self.remote, seq, len);
        pkt.window = WINDOW_INIT;
        pkt.weight = self.weight;
        if rm {
            pkt.flags.set(Flags::RM);
            self.rm_outstanding = true;
            self.rm_seq_end = seq + len;
            self.rm_sent_at = Some(now);
        }
        if self.rtt_probe.is_none() {
            self.rtt_probe = Some((seq + len, now));
        }
        fx.send(pkt);
    }

    fn emit_fin(&mut self, fx: &mut Effects) {
        let mut fin = Packet::data(self.flow, self.local, self.remote, self.pushed, 0);
        fin.flags.set(Flags::FIN);
        fx.send(fin);
    }

    fn send_available(&mut self, now: Time, fx: &mut Effects) {
        if self.state != State::Streaming {
            return;
        }
        loop {
            let wnd_end = self.snd_una + self.cwnd;
            if self.snd_nxt >= self.pushed || self.snd_nxt >= wnd_end {
                break;
            }
            // The window counts in whole packets: send a full segment
            // whenever any window space remains (ceiling semantics, at
            // most one MSS of overshoot per flow per round). Splitting
            // segments to fit the byte window exactly would strand up to
            // one MSS per round, and the resulting odd-sized fragments
            // self-perpetuate (each ACK opens fragment-sized space) —
            // starving the full-frame-only rtt_b filter of §4.4. The
            // overshoot is absorbed by the rho feedback of Eq. 7.
            let remaining = self.pushed - self.snd_nxt;
            let len = remaining.min(MSS);
            let rm = self.rm_pending && self.mark_spacing_ok(now);
            if rm {
                self.rm_pending = false;
            }
            self.emit_data(self.snd_nxt, len, rm, now, fx);
            self.snd_nxt += len;
        }
        if self.closed && !self.fin_sent && self.snd_nxt == self.pushed {
            self.fin_sent = true;
            self.snd_nxt = self.pushed + 1;
            self.emit_fin(fx);
        }
        if self.outstanding() > 0 && !self.timer_armed {
            self.arm_timer(fx);
        }
    }

    fn retransmit_head(&mut self, now: Time, fx: &mut Effects) {
        let _ = now;
        fx.note(Note::Retransmit);
        self.rtt_probe = None;
        if self.snd_una >= self.pushed {
            if self.fin_sent {
                self.emit_fin(fx);
            }
            return;
        }
        let len = (self.pushed - self.snd_una).min(MSS);
        let mut pkt = Packet::data(self.flow, self.local, self.remote, self.snd_una, len);
        pkt.window = WINDOW_INIT;
        pkt.weight = self.weight;
        // Keep the slot machinery alive: a retransmitted head re-marks
        // the round so the switch keeps counting this flow.
        pkt.flags.set(Flags::RM);
        self.rm_outstanding = true;
        self.rm_seq_end = self.snd_una + len;
        fx.send(pkt);
    }

    /// Current state name (tests, diagnostics).
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::SynSent => "syn-sent",
            State::WindowAcq => "window-acq",
            State::Streaming => "streaming",
        }
    }
}

impl SenderEndpoint for TfcSender {
    fn open(&mut self, _now: Time, fx: &mut Effects) {
        if self.state == State::SynSent && !self.timer_armed {
            self.emit_syn(fx);
            self.arm_timer(fx);
        }
    }

    fn push_data(&mut self, bytes: u64, now: Time, fx: &mut Effects) {
        assert!(!self.closed, "push_data after close");
        let was_idle = self.outstanding() == 0 && self.snd_nxt == self.pushed;
        self.pushed += bytes;
        if self.state == State::WindowAcq && !self.rm_outstanding {
            // Established while idle: run the deferred acquisition now.
            self.emit_probe(fx);
            self.arm_timer(fx);
            return;
        }
        if self.state == State::Streaming && was_idle && self.cfg.probe_on_resume {
            // Silent flow resuming: its stale window may be far too big
            // now (the switch stopped counting it). Re-acquire first.
            self.state = State::WindowAcq;
            self.cwnd = 0;
            self.emit_probe(fx);
            self.arm_timer(fx);
            return;
        }
        self.send_available(now, fx);
    }

    fn close(&mut self, now: Time, fx: &mut Effects) {
        self.closed = true;
        self.send_available(now, fx);
    }

    fn on_packet(&mut self, pkt: &Packet, now: Time, fx: &mut Effects) {
        if pkt.flags.contains(Flags::SYN) && pkt.flags.contains(Flags::ACK) {
            if self.state == State::SynSent {
                self.state = State::WindowAcq;
                self.disarm_timer(fx);
                fx.note(Note::Established);
                // Window-acquisition phase (§4.6): fetch the first window
                // with a zero-payload marked packet. Deferred until the
                // application has data, so connect-then-idle flows do not
                // mark rounds they will not use (and cannot become a
                // silent delimiter).
                if self.pushed > self.snd_nxt {
                    self.emit_probe(fx);
                    self.arm_timer(fx);
                }
            }
            return;
        }
        if !pkt.flags.contains(Flags::ACK) {
            return;
        }
        if pkt.flags.contains(Flags::RMA) {
            self.rm_outstanding = false;
            // Adopt the explicitly allocated window. The delay arbiter
            // guarantees at least one MSS when it is enabled; clamp for
            // the ablation case so the flow cannot deadlock.
            if pkt.window != WINDOW_INIT {
                self.cwnd = pkt.window.max(MSS).min(self.cfg.awnd);
            } else {
                self.cwnd = self.cfg.awnd;
            }
            fx.note(Note::WindowAcquired { bytes: self.cwnd });
            self.rm_pending = true;
            if self.state == State::WindowAcq {
                self.state = State::Streaming;
            }
        }
        let ack = pkt.ack.min(self.snd_nxt);
        if !pkt.flags.contains(Flags::RMA) && self.rm_outstanding && ack >= self.rm_seq_end {
            // The marked packet was cumulatively acknowledged by a later,
            // unmarked ACK. Its RMA was either lost or is being held by a
            // delay arbiter (which legitimately lets plain ACKs overtake
            // it); only declare it lost after a couple of RTTs.
            let overdue = match (self.rm_sent_at, self.est.srtt()) {
                (Some(at), Some(srtt)) => now.since(at) > Dur(2 * srtt.as_nanos()),
                _ => true,
            };
            if overdue {
                self.rm_outstanding = false;
                self.rm_pending = true;
            }
        }
        if ack > self.snd_una {
            self.snd_una = ack;
            self.dup_acks = 0;
            if let Some((target, t0)) = self.rtt_probe {
                if ack >= target {
                    let rtt = now - t0;
                    self.est.sample(rtt);
                    fx.note(Note::RttSample {
                        nanos: rtt.as_nanos(),
                    });
                    self.rtt_probe = None;
                }
            }
            if self.fin_sent && self.snd_una > self.pushed && !self.done_noted {
                self.done_noted = true;
                self.disarm_timer(fx);
                fx.note(Note::SenderDone);
                return;
            }
            if self.outstanding() > 0 {
                self.arm_timer(fx);
            } else {
                self.disarm_timer(fx);
            }
        } else if ack == self.snd_una && self.outstanding() > 0 && pkt.flags.contains(Flags::RMA) {
            // RMA for a probe or a re-marked head; not a dup-ACK signal.
        } else if ack == self.snd_una && self.outstanding() > 0 {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                self.retransmit_head(now, fx);
                self.arm_timer(fx);
            }
        }
        self.send_available(now, fx);
    }

    fn on_timer(&mut self, token: u64, now: Time, fx: &mut Effects) {
        if token != self.timer_gen || !self.timer_armed {
            return;
        }
        self.timer_armed = false;
        fx.note(Note::Timeout);
        self.est.back_off();
        match self.state {
            State::SynSent => {
                self.emit_syn(fx);
            }
            State::WindowAcq => {
                self.emit_probe(fx);
            }
            State::Streaming => {
                if self.outstanding() == 0 {
                    return;
                }
                self.dup_acks = 0;
                // Rewind and resend from the cumulative ACK.
                self.snd_nxt = self.snd_una.min(self.pushed);
                let fin_was_sent = self.fin_sent;
                self.fin_sent = false;
                if self.snd_nxt < self.pushed {
                    self.retransmit_head(now, fx);
                    self.snd_nxt = self.snd_una + (self.pushed - self.snd_una).min(MSS);
                } else if fin_was_sent {
                    self.fin_sent = true;
                    self.snd_nxt = self.pushed + 1;
                    fx.note(Note::Retransmit);
                    self.emit_fin(fx);
                }
            }
        }
        self.arm_timer(fx);
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn acked_bytes(&self) -> u64 {
        self.snd_una.min(self.pushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::units::Dur;

    const H0: NodeId = NodeId(0);
    const H1: NodeId = NodeId(1);

    fn sender(bytes: Option<u64>) -> TfcSender {
        TfcSender::new(FlowId(1), H0, H1, bytes, TfcHostConfig::default())
    }

    fn synack() -> Packet {
        let mut p = Packet::ack(FlowId(1), H1, H0, 0);
        p.flags.set(Flags::SYN);
        p
    }

    fn rma(ack: u64, window: u64) -> Packet {
        let mut p = Packet::ack(FlowId(1), H1, H0, ack);
        p.flags.set(Flags::RMA);
        p.window = window;
        p
    }

    fn ack(n: u64) -> Packet {
        Packet::ack(FlowId(1), H1, H0, n)
    }

    #[test]
    fn syn_carries_rm() {
        let mut s = sender(Some(10_000));
        let mut fx = Effects::new();
        s.open(Time::ZERO, &mut fx);
        let syn = &fx.packets[0];
        assert!(syn.flags.contains(Flags::SYN));
        assert!(syn.flags.contains(Flags::RM));
        assert_eq!(s.state_name(), "syn-sent");
    }

    #[test]
    fn synack_triggers_probe_not_data() {
        let mut s = sender(Some(10_000));
        let mut fx = Effects::new();
        s.open(Time::ZERO, &mut fx);
        let mut fx2 = Effects::new();
        s.on_packet(&synack(), Time(100), &mut fx2);
        assert!(fx2.notes.contains(&Note::Established));
        assert_eq!(fx2.packets.len(), 1);
        let probe = &fx2.packets[0];
        assert_eq!(probe.payload, 0);
        assert!(probe.flags.contains(Flags::RM));
        assert!(!probe.flags.contains(Flags::SYN));
        assert_eq!(s.state_name(), "window-acq");
    }

    fn establish(s: &mut TfcSender, window: u64) -> Effects {
        let mut fx = Effects::new();
        s.open(Time::ZERO, &mut fx);
        let mut fx = Effects::new();
        s.on_packet(&synack(), Time(100), &mut fx);
        let mut fx = Effects::new();
        s.on_packet(&rma(0, window), Time(200), &mut fx);
        fx
    }

    #[test]
    fn probe_rma_sets_window_and_sends_marked_round() {
        let mut s = sender(Some(100_000));
        let fx = establish(&mut s, 2 * MSS);
        assert_eq!(s.state_name(), "streaming");
        assert_eq!(s.cwnd(), 2 * MSS);
        let data: Vec<_> = fx.packets.iter().filter(|p| p.is_data()).collect();
        assert_eq!(data.len(), 2);
        assert!(data[0].flags.contains(Flags::RM), "first of round marked");
        assert!(!data[1].flags.contains(Flags::RM));
        assert_eq!(data[0].window, WINDOW_INIT, "window reset for stamping");
    }

    #[test]
    fn rma_below_mss_clamped_for_ablation_safety() {
        let mut s = sender(Some(100_000));
        establish(&mut s, 100);
        assert_eq!(s.cwnd(), MSS);
    }

    #[test]
    fn each_rma_remarks_next_packet() {
        let mut s = sender(Some(100_000));
        establish(&mut s, 3 * MSS);
        // The RMA of the marked head arrives: window refreshed, the next
        // outgoing packet re-marks the new round.
        let mut fx = Effects::new();
        s.on_packet(&rma(MSS, 3 * MSS), Time(300), &mut fx);
        let sent: Vec<_> = fx.packets.iter().filter(|p| p.is_data()).collect();
        assert!(!sent.is_empty());
        assert!(sent[0].flags.contains(Flags::RM));
        // Plain ACKs within the round release unmarked packets.
        let mut fx2 = Effects::new();
        s.on_packet(&ack(2 * MSS), Time(400), &mut fx2);
        let sent2: Vec<_> = fx2.packets.iter().filter(|p| p.is_data()).collect();
        assert!(sent2.iter().all(|p| !p.flags.contains(Flags::RM)));
    }

    #[test]
    fn lost_rma_triggers_remark() {
        let mut s = sender(Some(100_000));
        establish(&mut s, 3 * MSS);
        // The marked head covered seq 0..MSS; a *plain* ACK past it means
        // the RMA echo was lost: the sender must re-mark to stay counted.
        let mut fx = Effects::new();
        s.on_packet(&ack(2 * MSS), Time(300), &mut fx);
        let sent: Vec<_> = fx.packets.iter().filter(|p| p.is_data()).collect();
        assert!(!sent.is_empty());
        assert!(sent[0].flags.contains(Flags::RM));
    }

    #[test]
    fn window_shrink_pauses_sending() {
        let mut s = sender(Some(1_000_000));
        establish(&mut s, 10 * MSS);
        assert_eq!(s.outstanding(), 10 * MSS);
        // RMA shrinks the window to 2 MSS: nothing new until drained.
        let mut fx = Effects::new();
        s.on_packet(&rma(MSS, 2 * MSS), Time(300), &mut fx);
        assert!(fx.packets.iter().all(|p| !p.is_data()));
    }

    #[test]
    fn three_dup_acks_fast_retransmit() {
        let mut s = sender(Some(1_000_000));
        establish(&mut s, 4 * MSS);
        for _ in 0..2 {
            let mut fx = Effects::new();
            s.on_packet(&ack(0), Time(300), &mut fx);
            assert!(fx.packets.is_empty());
        }
        let mut fx = Effects::new();
        s.on_packet(&ack(0), Time(300), &mut fx);
        assert!(fx.notes.contains(&Note::Retransmit));
        let rtx = fx.packets.iter().find(|p| p.is_data()).unwrap();
        assert_eq!(rtx.seq, 0);
        assert!(rtx.flags.contains(Flags::RM), "retransmitted head re-marks");
    }

    #[test]
    fn rma_not_counted_as_dup_ack() {
        let mut s = sender(Some(1_000_000));
        establish(&mut s, 4 * MSS);
        for _ in 0..5 {
            let mut fx = Effects::new();
            s.on_packet(&rma(0, 4 * MSS), Time(300), &mut fx);
            assert!(
                !fx.notes.contains(&Note::Retransmit),
                "RMAs must not trigger fast retransmit"
            );
        }
    }

    #[test]
    fn probe_loss_recovers_by_rto() {
        let mut s = sender(Some(10_000));
        let mut fx = Effects::new();
        s.open(Time::ZERO, &mut fx);
        let mut fx = Effects::new();
        s.on_packet(&synack(), Time(100), &mut fx);
        let tok = fx.timers[0].1;
        let mut fx2 = Effects::new();
        s.on_timer(tok, Time::ZERO + Dur::millis(200), &mut fx2);
        assert!(fx2.notes.contains(&Note::Timeout));
        assert!(fx2.packets[0].flags.contains(Flags::RM));
        assert_eq!(fx2.packets[0].payload, 0);
    }

    #[test]
    fn fin_and_done() {
        let mut s = sender(Some(1_000));
        let fx = establish(&mut s, 10 * MSS);
        assert!(fx.packets.iter().any(|p| p.flags.contains(Flags::FIN)));
        let mut fx2 = Effects::new();
        s.on_packet(&ack(1_001), Time(500), &mut fx2);
        assert!(fx2.notes.contains(&Note::SenderDone));
    }

    #[test]
    fn resume_after_idle_probes_again() {
        let mut s = sender(None);
        establish(&mut s, 10 * MSS);
        let mut fx = Effects::new();
        s.push_data(1_000, Time(1_000), &mut fx);
        // probe_on_resume: a fresh zero-payload probe, no data yet.
        assert_eq!(fx.packets.len(), 1);
        assert_eq!(fx.packets[0].payload, 0);
        assert!(fx.packets[0].flags.contains(Flags::RM));
        assert_eq!(s.state_name(), "window-acq");
        // RMA releases the data.
        let mut fx2 = Effects::new();
        s.on_packet(&rma(0, 5 * MSS), Time(1_200), &mut fx2);
        assert_eq!(fx2.packets.iter().filter(|p| p.is_data()).count(), 1);
        assert_eq!(fx2.packets[0].payload, 1_000);
    }

    #[test]
    fn resume_without_probe_when_disabled() {
        let cfg = TfcHostConfig {
            probe_on_resume: false,
            ..Default::default()
        };
        let mut s = TfcSender::new(FlowId(1), H0, H1, None, cfg);
        establish(&mut s, 10 * MSS);
        let mut fx = Effects::new();
        s.push_data(1_000, Time(1_000), &mut fx);
        assert_eq!(fx.packets.iter().filter(|p| p.is_data()).count(), 1);
    }

    #[test]
    fn stale_timer_ignored() {
        let mut s = sender(Some(100_000));
        let mut fx = Effects::new();
        s.open(Time::ZERO, &mut fx);
        let stale = fx.timers[0].1;
        let mut fx2 = Effects::new();
        s.on_packet(&synack(), Time(100), &mut fx2);
        let mut fx3 = Effects::new();
        s.on_timer(stale, Time(200), &mut fx3);
        assert!(fx3.notes.is_empty());
    }
}

#[cfg(test)]
mod spacing_tests {
    use super::*;
    use crate::config::TfcHostConfig;

    const H0: NodeId = NodeId(0);
    const H1: NodeId = NodeId(1);

    fn streaming_sender() -> TfcSender {
        let mut s = TfcSender::new(
            FlowId(1),
            H0,
            H1,
            Some(10_000_000),
            TfcHostConfig::default(),
        );
        let mut fx = Effects::new();
        s.open(Time::ZERO, &mut fx);
        let mut synack = Packet::ack(FlowId(1), H1, H0, 0);
        synack.flags.set(Flags::SYN);
        let mut fx = Effects::new();
        s.on_packet(&synack, Time(100), &mut fx);
        let mut rma = Packet::ack(FlowId(1), H1, H0, 0);
        rma.flags.set(Flags::RMA);
        rma.window = 4 * MSS;
        let mut fx = Effects::new();
        s.on_packet(&rma, Time(200), &mut fx);
        s
    }

    fn plain_ack(n: u64) -> Packet {
        Packet::ack(FlowId(1), H1, H0, n)
    }

    fn rma_at(ack: u64, window: u64) -> Packet {
        let mut p = Packet::ack(FlowId(1), H1, H0, ack);
        p.flags.set(Flags::RMA);
        p.window = window;
        p
    }

    /// Seeds the RTT estimator with ~100 µs samples.
    fn seed_srtt(s: &mut TfcSender) {
        for _ in 0..4 {
            s.est.sample(Dur::micros(100));
        }
    }

    #[test]
    fn marks_are_spaced_at_least_half_srtt() {
        let mut s = streaming_sender();
        seed_srtt(&mut s);
        // Two RMAs arrive almost back to back (reordered by an arbiter):
        // only one mark may go out within srtt/2.
        let mut fx = Effects::new();
        s.on_packet(&rma_at(MSS, 4 * MSS), Time(300_000), &mut fx);
        let marks1 = fx
            .packets
            .iter()
            .filter(|p| p.flags.contains(Flags::RM))
            .count();
        let mut fx2 = Effects::new();
        s.on_packet(&rma_at(2 * MSS, 4 * MSS), Time(301_000), &mut fx2);
        let marks2 = fx2
            .packets
            .iter()
            .filter(|p| p.flags.contains(Flags::RM))
            .count();
        assert_eq!(marks1 + marks2, 1, "marks must not bunch");
        // Well past srtt/2 the pending mark is released.
        let mut fx3 = Effects::new();
        s.on_packet(&plain_ack(3 * MSS), Time(500_000), &mut fx3);
        assert!(fx3.packets.iter().any(|p| p.flags.contains(Flags::RM)));
    }

    #[test]
    fn rma_loss_guard_waits_two_srtt() {
        let mut s = streaming_sender();
        seed_srtt(&mut s);
        // A mark goes out at ~t=300µs.
        let mut fx = Effects::new();
        s.on_packet(&rma_at(MSS, 4 * MSS), Time(300_000), &mut fx);
        assert!(fx.packets.iter().any(|p| p.flags.contains(Flags::RM)));
        // A plain ACK covering the mark arrives quickly (its RMA is just
        // delayed in an arbiter): no re-mark yet.
        let mut fx2 = Effects::new();
        s.on_packet(&plain_ack(3 * MSS), Time(350_000), &mut fx2);
        assert!(
            !fx2.packets.iter().any(|p| p.flags.contains(Flags::RM)),
            "guard fired before 2 x srtt"
        );
        // Much later, with a plain ACK covering the whole marked packet
        // and the RMA still missing, the guard re-marks.
        let mut fx3 = Effects::new();
        s.on_packet(&plain_ack(6 * MSS), Time(900_000), &mut fx3);
        assert!(
            fx3.packets.iter().any(|p| p.flags.contains(Flags::RM)),
            "guard never recovered the lost RMA"
        );
    }
}
