//! TFC configuration knobs.

use simnet::units::Dur;

/// Switch-side TFC parameters (§5.2 and §6.1.1).
#[derive(Debug, Clone, Copy)]
pub struct TfcSwitchConfig {
    /// Target link utilisation `rho_0` (the paper uses 0.97).
    pub rho0: f64,
    /// History weight `alpha` of the token EWMA (Eq. 8; paper: 7/8).
    pub alpha: f64,
    /// Initial `rtt_b` before any measurement (paper Init: 160 µs).
    pub init_rttb: Dur,
    /// Minimum measured utilisation for a slot to drive token
    /// adjustment. Slots below it (idle gaps, establishment slots where
    /// only SYNs and probes are on the wire) hold the token unchanged:
    /// they carry no demand signal, and boosting on them would inflate
    /// the token right before the next burst.
    pub rho_floor: f64,
    /// Upper bound on the adjusted token, as a multiple of the
    /// unadjusted `c × rtt_b`. Keeps one under-utilised slot from
    /// inflating windows without bound; the EWMA then converges.
    pub token_boost_cap: f64,
    /// Maximum delimiter-miss exponent `k` (paper: 7).
    pub max_miss_k: u32,
    /// Enable the ACK delay arbiter (§4.6). Disable only for ablation.
    pub delay_arbiter: bool,
    /// Gate full-window RMAs through the arbiter's counter as well
    /// (token-bucket shaping of every grant). The paper's literal §4.6
    /// only delays sub-MSS windows; see `DelayArbiter::set_gate_all`.
    pub arbiter_gates_all: bool,
    /// Enable token adjustment (Eq. 7). Disable only for ablation.
    pub token_adjustment: bool,
    /// Apply the `rho0 / rho` correction to the *current* token instead
    /// of the base pipe `c × rtt_b` (integral rather than proportional
    /// control). The literal Eq. 7 has a square-root equilibrium —
    /// utilisation settles at `sqrt(rho0 · rtt_b / rtt_m)` — which under-
    /// corrects whenever `rtt_b` is underestimated or windows quantise
    /// to whole packets; the integral form converges to `rho0` exactly.
    /// The clamp to `[0.25, token_boost_cap] × pipe` bounds it.
    pub integral_adjustment: bool,
    /// Average the effective-flow count over two adjacent slots before
    /// dividing the token. §4.3 observes that when flow RTTs are
    /// multiples of the slot, the per-slot count alternates (e.g. 1, 2,
    /// 1, 2 for a theoretical 1.5) and "the average of the measured
    /// values of two adjacent time slots equals the theoretical result";
    /// this knob applies that average.
    pub e_two_slot_average: bool,
    /// Use the decoupled `rtt_b` for the token and `rtt_m` for `rho`
    /// (§4.4). When disabled (ablation), the instantaneous `rtt_m` is
    /// used for the token too, re-coupling queueing delay into it.
    pub decouple_rtt: bool,
    /// Record per-slot traces (`ne`, `rtt_b`, `rtt_m`, `window`, `token`,
    /// `rho`) into the simulator's trace center.
    pub trace: bool,
}

impl Default for TfcSwitchConfig {
    fn default() -> Self {
        Self {
            rho0: 0.97,
            alpha: 7.0 / 8.0,
            init_rttb: Dur::micros(160),
            rho_floor: 0.25,
            token_boost_cap: 4.0,
            max_miss_k: 7,
            delay_arbiter: true,
            arbiter_gates_all: true,
            token_adjustment: true,
            integral_adjustment: true,
            e_two_slot_average: true,
            decouple_rtt: true,
            trace: false,
        }
    }
}

/// Host-side TFC parameters (§5.1, §5.3).
#[derive(Debug, Clone, Copy)]
pub struct TfcHostConfig {
    /// Receiver advertised window in bytes.
    pub awnd: u64,
    /// Minimum retransmission timeout. TFC rarely drops, so the RTO is a
    /// safety net; the testbed kernel default applies.
    pub min_rto: Dur,
    /// Maximum retransmission timeout.
    pub max_rto: Dur,
    /// Re-run the window-acquisition probe when a silent flow resumes
    /// (avoids bursting a stale window; see DESIGN.md).
    pub probe_on_resume: bool,
}

impl Default for TfcHostConfig {
    fn default() -> Self {
        Self {
            awnd: 1 << 20,
            min_rto: Dur::millis(200),
            max_rto: Dur::secs(60),
            probe_on_resume: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TfcSwitchConfig::default();
        assert_eq!(c.rho0, 0.97);
        assert_eq!(c.alpha, 7.0 / 8.0);
        assert_eq!(c.init_rttb, Dur::micros(160));
        assert_eq!(c.max_miss_k, 7);
        assert!(c.delay_arbiter && c.token_adjustment && c.decouple_rtt);
        let h = TfcHostConfig::default();
        assert!(h.probe_on_resume);
        assert_eq!(h.min_rto, Dur::millis(200));
    }
}
