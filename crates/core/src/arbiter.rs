//! The ACK delay arbiter: token-bucket pacing of sub-MSS windows (§4.6).
//!
//! When the computed per-flow window drops below one MSS (massive
//! concurrency), TFC does not let every sender transmit each slot.
//! Instead, each switch port keeps a byte counter that fills at line
//! rate. A returning RMA ACK whose window is smaller than one packet is
//! either promoted to a one-MSS grant (consuming counter) or held in a
//! delay queue until the counter refills. ACKs carrying a full window
//! pass through immediately but still debit the counter, so the number
//! of flows transmitting per slot never exceeds the token value.

use std::collections::VecDeque;

use simnet::packet::{Packet, MSS, WINDOW_INIT};
use simnet::units::{Bandwidth, Dur, Time};

/// Outcome of offering an RMA ACK to the arbiter.
#[derive(Debug, PartialEq)]
pub enum ArbiterVerdict {
    /// Forward the (possibly rewritten) ACK now.
    Forward,
    /// The ACK was queued; release it when
    /// [`DelayArbiter::next_release_in`] elapses.
    Delayed,
}

/// Per-port delay arbiter.
#[derive(Debug)]
pub struct DelayArbiter {
    rate_bytes_per_nano: f64,
    counter: f64,
    cap: f64,
    last_refill: Time,
    /// Held ACKs with the time they entered the queue (the hold start),
    /// so releases can report how long each flow waited for its token.
    queue: VecDeque<(Time, Packet)>,
    /// Gate full windows through the counter too (see `set_gate_all`).
    gate_all: bool,
    /// Total ACKs ever delayed (diagnostics).
    delayed_total: u64,
}

impl DelayArbiter {
    /// Creates an arbiter for a port of the given line rate; `cap` bounds
    /// the counter (one token's worth of bytes is the natural choice).
    /// The counter fills at `rho0 × line rate`: granting at the full line
    /// rate would hold the queue at whatever backlog once accumulated,
    /// while the utilisation-target margin lets it drain.
    pub fn new(rate: Bandwidth, cap: f64) -> Self {
        Self::with_fill_factor(rate, cap, 1.0)
    }

    /// Creates an arbiter whose counter fills at `fill × line rate`.
    pub fn with_fill_factor(rate: Bandwidth, cap: f64, fill: f64) -> Self {
        Self {
            rate_bytes_per_nano: rate.bytes_per_nano() * fill.clamp(0.05, 1.0),
            counter: cap.max(MSS as f64),
            cap: cap.max(MSS as f64),
            last_refill: Time::ZERO,
            queue: VecDeque::new(),
            gate_all: false,
            delayed_total: 0,
        }
    }

    /// When enabled, RMAs carrying a full window are also held until the
    /// counter can pay for them, making the arbiter a true token-bucket
    /// shaper. The paper's literal §4.6 lets full windows pass
    /// immediately (only debiting), which stops pacing exactly in the
    /// window-around-one-MSS regime where self-clocked flows hold a
    /// standing queue at the bottleneck.
    pub fn set_gate_all(&mut self, on: bool) {
        self.gate_all = on;
    }

    /// Updates the counter cap (tracks the port's token value).
    pub fn set_cap(&mut self, cap: f64) {
        self.cap = cap.max(MSS as f64);
        self.counter = self.counter.min(self.cap);
    }

    /// Offers an RMA ACK. May rewrite `pkt.window`; on `Delayed` the
    /// packet was consumed into the queue.
    pub fn offer(&mut self, pkt: &mut Packet, now: Time) -> ArbiterVerdict {
        self.refill(now);
        if pkt.window == WINDOW_INIT {
            // Never stamped by any TFC port: nothing to arbitrate.
            return ArbiterVerdict::Forward;
        }
        if pkt.window >= MSS && !self.gate_all {
            // §4.6: full windows pass immediately; the counter still
            // pays for them (and may go negative, throttling future
            // sub-MSS grants).
            self.counter -= pkt.window as f64;
            self.counter = self.counter.max(-self.cap);
            return ArbiterVerdict::Forward;
        }
        let need = self.need_of(pkt);
        if self.queue.is_empty() && self.counter >= need {
            pkt.window = pkt.window.max(MSS);
            self.counter -= need;
            ArbiterVerdict::Forward
        } else {
            self.delayed_total += 1;
            self.queue.push_back((now, pkt.clone()));
            ArbiterVerdict::Delayed
        }
    }

    /// Counter cost of granting this ACK: the wire cost the sender will
    /// actually incur — windows are consumed in whole packets, so the
    /// charge rounds up to full segments — clamped to the cap so a grant
    /// can never deadlock.
    fn need_of(&self, pkt: &Packet) -> f64 {
        let pkts = pkt.window.max(MSS).div_ceil(MSS);
        ((pkts * MSS) as f64).min(self.cap)
    }

    /// Releases every queued ACK the refilled counter can pay for.
    /// Returns the released packets (windows rewritten to one MSS) with
    /// how long each was held — the flow's token acquire wait.
    pub fn release(&mut self, now: Time) -> Vec<(Packet, Dur)> {
        self.refill(now);
        let mut out = Vec::new();
        while let Some((_, head)) = self.queue.front() {
            let need = self.need_of(head);
            if self.counter < need {
                break;
            }
            let (held_since, mut pkt) = self.queue.pop_front().expect("checked non-empty");
            pkt.window = pkt.window.max(MSS);
            self.counter -= need;
            out.push((pkt, now.since(held_since)));
        }
        out
    }

    /// Time until the head-of-line delayed ACK can be released, or
    /// `None` when the queue is empty.
    pub fn next_release_in(&self, now: Time) -> Option<Dur> {
        let (_, head) = self.queue.front()?;
        let need = self.need_of(head);
        let counter = self.peek_counter(now);
        if counter >= need {
            return Some(Dur::ZERO);
        }
        let deficit = need - counter;
        Some(Dur((deficit / self.rate_bytes_per_nano).ceil() as u64))
    }

    /// Number of ACKs currently held.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Total ACKs ever delayed.
    pub fn delayed_total(&self) -> u64 {
        self.delayed_total
    }

    /// Counter value as of `now` without mutating state.
    fn peek_counter(&self, now: Time) -> f64 {
        let dt = now.since(self.last_refill).as_nanos() as f64;
        (self.counter + dt * self.rate_bytes_per_nano).min(self.cap)
    }

    fn refill(&mut self, now: Time) {
        if now > self.last_refill {
            self.counter = self.peek_counter(now);
            self.last_refill = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::{cases, vec_u64};
    use rng::Rng;
    use simnet::packet::{Flags, FlowId, NodeId};
    use simnet::units::Bandwidth;

    const GBPS: Bandwidth = Bandwidth(1_000_000_000);

    fn rma(window: u64) -> Packet {
        let mut p = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 0);
        p.flags.set(Flags::RMA);
        p.window = window;
        p
    }

    fn arb() -> DelayArbiter {
        DelayArbiter::new(GBPS, 20_000.0)
    }

    #[test]
    fn full_window_passes_and_debits() {
        let mut a = arb();
        let mut pkt = rma(10_000);
        assert_eq!(a.offer(&mut pkt, Time(0)), ArbiterVerdict::Forward);
        assert_eq!(pkt.window, 10_000);
        // 20_000 - 10_000 left: a second 10 kB window still passes ...
        assert_eq!(a.offer(&mut rma(10_000), Time(0)), ArbiterVerdict::Forward);
        // ... and a sub-MSS ACK now has no counter.
        let mut small = rma(100);
        assert_eq!(a.offer(&mut small, Time(0)), ArbiterVerdict::Delayed);
    }

    #[test]
    fn small_window_promoted_to_one_mss() {
        let mut a = arb();
        let mut pkt = rma(100);
        assert_eq!(a.offer(&mut pkt, Time(0)), ArbiterVerdict::Forward);
        assert_eq!(pkt.window, MSS);
    }

    #[test]
    fn unstamped_ack_ignored() {
        let mut a = arb();
        let mut pkt = rma(WINDOW_INIT);
        let before = a.peek_counter(Time(0));
        assert_eq!(a.offer(&mut pkt, Time(0)), ArbiterVerdict::Forward);
        assert_eq!(pkt.window, WINDOW_INIT);
        assert_eq!(a.peek_counter(Time(0)), before);
    }

    #[test]
    fn delayed_acks_release_in_fifo_order() {
        let mut a = arb();
        // Drain the counter.
        a.offer(&mut rma(20_000), Time(0));
        for f in 0..3u64 {
            let mut p = rma(100);
            p.flow = FlowId(f);
            assert_eq!(a.offer(&mut p, Time(0)), ArbiterVerdict::Delayed);
        }
        assert_eq!(a.queued(), 3);
        // At 1 Gbps the counter refills 125 bytes/µs; 3 MSS ≈ 35 µs.
        let released = a.release(Time(40_000));
        assert_eq!(released.len(), 3);
        assert_eq!(released[0].0.flow, FlowId(0));
        assert_eq!(released[2].0.flow, FlowId(2));
        for (p, held) in &released {
            assert_eq!(p.window, MSS);
            // All were queued at t = 0 and released at t = 40 µs.
            assert_eq!(*held, Dur(40_000));
        }
    }

    #[test]
    fn partial_release_when_counter_partial() {
        let mut a = arb();
        a.offer(&mut rma(20_000), Time(0));
        for _ in 0..3 {
            a.offer(&mut rma(100), Time(0));
        }
        // Refill only enough for one MSS (~11.7 µs).
        let released = a.release(Time(12_000));
        assert_eq!(released.len(), 1);
        assert_eq!(a.queued(), 2);
    }

    #[test]
    fn next_release_predicts_refill() {
        let mut a = arb();
        a.offer(&mut rma(20_000), Time(0));
        a.offer(&mut rma(100), Time(0));
        let wait = a.next_release_in(Time(0)).unwrap();
        // Counter at 0, deficit one MSS: 1460 / 0.125 B/ns = 11_680 ns.
        assert_eq!(wait, Dur(11_680));
        // After that long, the release succeeds.
        assert_eq!(a.release(Time(wait.as_nanos())).len(), 1);
    }

    #[test]
    fn small_acks_fifo_even_with_counter() {
        // A queued ACK must not be overtaken by a newly arriving one.
        let mut a = arb();
        a.offer(&mut rma(20_000), Time(0));
        let mut first = rma(100);
        first.flow = FlowId(10);
        assert_eq!(a.offer(&mut first, Time(0)), ArbiterVerdict::Delayed);
        // Refill past one MSS, then offer another small ACK: it must
        // queue behind the first.
        let mut second = rma(100);
        second.flow = FlowId(11);
        assert_eq!(a.offer(&mut second, Time(20_000)), ArbiterVerdict::Delayed);
        let released = a.release(Time(20_000));
        assert_eq!(released[0].0.flow, FlowId(10));
        assert_eq!(released[0].1, Dur(20_000));
    }

    #[test]
    fn counter_never_exceeds_cap() {
        let a = arb();
        assert_eq!(a.peek_counter(Time(1_000_000_000)), 20_000.0);
    }

    #[test]
    fn grants_bounded_by_line_rate() {
        cases(128, |_case, rng| {
            let offers = vec_u64(rng, 1..200, 64..1460);
            let horizon_us = rng.gen_range(1..1_000u64);
            // Over any horizon, promoted grants (1 MSS each) never exceed
            // cap + rate × horizon bytes.
            let mut a = DelayArbiter::new(GBPS, 20_000.0);
            let mut granted = 0u64;
            for (i, w) in offers.iter().enumerate() {
                let t = Time(i as u64 * horizon_us * 1_000 / offers.len() as u64);
                let mut p = rma(*w);
                if a.offer(&mut p, t) == ArbiterVerdict::Forward {
                    granted += p.window;
                }
            }
            let end = Time(horizon_us * 1_000);
            granted += a.release(end).iter().map(|(p, _)| p.window).sum::<u64>();
            let budget = 20_000.0 + 125.0 * horizon_us as f64 + MSS as f64;
            assert!(
                (granted as f64) <= budget,
                "granted {granted} exceeds budget {budget} ({} offers over {horizon_us} us)",
                offers.len()
            );
        });
    }
}
