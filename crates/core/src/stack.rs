//! The TFC protocol stack factory.

use simnet::endpoint::{FlowSpec, ProtocolStack, ReceiverEndpoint, SenderEndpoint};
use simnet::packet::FlowId;
use transport::recv::{EchoMode, StreamReceiver};

use crate::config::TfcHostConfig;
use crate::sender::TfcSender;

/// TFC for every flow. Pair with [`crate::switch::TfcSwitchPolicy`]
/// switches — without them, senders fall back to the receiver's
/// advertised window and the protocol degenerates to a fixed window.
#[derive(Debug, Clone, Copy, Default)]
pub struct TfcStack {
    /// Host-side configuration.
    pub cfg: TfcHostConfig,
}

impl TfcStack {
    /// Creates a stack with the given host config.
    pub fn new(cfg: TfcHostConfig) -> Self {
        Self { cfg }
    }
}

impl ProtocolStack for TfcStack {
    fn new_sender(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn SenderEndpoint> {
        Box::new(TfcSender::with_weight(
            flow,
            spec.src,
            spec.dst,
            spec.bytes,
            self.cfg,
            spec.weight,
        ))
    }

    fn new_receiver(&self, flow: FlowId, spec: &FlowSpec) -> Box<dyn ReceiverEndpoint> {
        Box::new(StreamReceiver::new(
            flow,
            spec.dst,
            spec.src,
            spec.bytes,
            EchoMode::Tfc {
                awnd: self.cfg.awnd,
            },
        ))
    }

    fn name(&self) -> &'static str {
        "tfc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::packet::NodeId;

    #[test]
    fn stack_builds_endpoints() {
        let stack = TfcStack::default();
        assert_eq!(stack.name(), "tfc");
        let spec = FlowSpec {
            src: NodeId(0),
            dst: NodeId(1),
            bytes: Some(5_000),
            weight: 1,
        };
        let s = stack.new_sender(FlowId(3), &spec);
        assert_eq!(s.cwnd(), 0, "no window before acquisition");
        let r = stack.new_receiver(FlowId(3), &spec);
        assert_eq!(r.delivered_bytes(), 0);
    }
}
