//! The TFC switch policy: wires the per-port [`TokenEngine`]s and
//! [`DelayArbiter`]s into the simulator's switch hooks.
//!
//! Placement of the two hooks mirrors the NetFPGA datapath of Fig. 3:
//!
//! * the *egress* hook (data direction) runs the rho counter, N counter,
//!   RTT timer, token allocator and window calculator, and stamps the
//!   window field of RM packets (Header Modifier);
//! * the *ingress* hook runs the Delay Arbiter on returning RMA ACKs.
//!   An RMA ACK arrives on exactly the port its data stream egresses
//!   from (paths are symmetric in the tree topologies this workspace
//!   uses), so the ingress port index identifies the right engine.

use simnet::node::PortLink;
use simnet::packet::{Flags, NodeId, Packet};
use simnet::policy::{EgressVerdict, IngressVerdict, PolicyFx, SwitchPolicy};
use simnet::units::{Bandwidth, Time};

use crate::arbiter::{ArbiterVerdict, DelayArbiter};
use crate::config::TfcSwitchConfig;
use crate::port::TokenEngine;

const KIND_MISS: u64 = 0;
const KIND_RELEASE: u64 = 1;

fn encode_token(kind: u64, port: usize, gen: u64) -> u64 {
    kind | ((port as u64) << 1) | (gen << 17)
}

fn decode_token(token: u64) -> (u64, usize, u64) {
    (token & 1, ((token >> 1) & 0xffff) as usize, token >> 17)
}

struct TfcPort {
    engine: TokenEngine,
    arbiter: DelayArbiter,
    miss_gen: u64,
    miss_armed_at: Time,
    release_armed: bool,
}

/// TFC packet-processing policy for one switch.
pub struct TfcSwitchPolicy {
    id: NodeId,
    cfg: TfcSwitchConfig,
    ports: Vec<TfcPort>,
}

impl TfcSwitchPolicy {
    /// Creates the policy for switch `id` with the given port links.
    pub fn new(id: NodeId, links: &[PortLink], cfg: TfcSwitchConfig) -> Self {
        let ports = links
            .iter()
            .map(|l| {
                let engine = TokenEngine::new(l.rate, cfg);
                let cap = engine.token_bytes();
                let mut arbiter = DelayArbiter::with_fill_factor(l.rate, cap, cfg.rho0);
                arbiter.set_gate_all(cfg.arbiter_gates_all);
                TfcPort {
                    engine,
                    arbiter,
                    miss_gen: 0,
                    miss_armed_at: Time::ZERO,
                    release_armed: false,
                }
            })
            .collect();
        Self { id, cfg, ports }
    }

    /// Boxed-policy factory suitable for
    /// [`simnet::topology::TopologyBuilder::build`].
    pub fn factory(
        cfg: TfcSwitchConfig,
    ) -> impl FnMut(NodeId, &[PortLink]) -> Box<dyn simnet::policy::SwitchPolicy> {
        move |id, links| Box::new(TfcSwitchPolicy::new(id, links, cfg))
    }

    /// Read access to a port's token engine (tests, diagnostics).
    pub fn engine(&self, port: usize) -> &TokenEngine {
        &self.ports[port].engine
    }

    /// Read access to a port's delay arbiter (tests, diagnostics).
    pub fn arbiter(&self, port: usize) -> &DelayArbiter {
        &self.ports[port].arbiter
    }

    fn arm_miss_timer(&mut self, port: usize, now: Time, fx: &mut PolicyFx) {
        let p = &mut self.ports[port];
        if p.miss_gen > 0 {
            // Best-effort: a no-op if that generation already fired.
            fx.cancel_timer(encode_token(KIND_MISS, port, p.miss_gen));
        }
        p.miss_gen += 1;
        p.miss_armed_at = now;
        fx.timer(
            p.engine.miss_delay(),
            encode_token(KIND_MISS, port, p.miss_gen),
        );
    }

    fn arm_release_timer(&mut self, port: usize, now: Time, fx: &mut PolicyFx) {
        let p = &mut self.ports[port];
        if p.release_armed {
            return;
        }
        if let Some(wait) = p.arbiter.next_release_in(now) {
            p.release_armed = true;
            fx.timer(wait, encode_token(KIND_RELEASE, port, 0));
        }
    }

    fn trace_slot(&self, port: usize, report: &crate::port::SlotReport, fx: &mut PolicyFx) {
        if !self.cfg.trace {
            return;
        }
        let prefix = format!("tfc.s{}.p{}", self.id.0, port);
        fx.trace(format!("{prefix}.ne"), report.effective_flows);
        fx.trace(format!("{prefix}.rttb_us"), report.rtt_b.as_micros_f64());
        fx.trace(format!("{prefix}.rttm_us"), report.rtt_m.as_micros_f64());
        fx.trace(format!("{prefix}.window"), report.window_bytes as f64);
        fx.trace(format!("{prefix}.token"), report.token_bytes);
        fx.trace(format!("{prefix}.rho"), report.rho);
    }

    /// Emits the structured per-port gauge sample at slot close. Always
    /// produced (one small struct per slot); the simulator's telemetry
    /// layer discards it unless gauge collection is enabled.
    fn slot_gauges(&self, port: usize, report: &crate::port::SlotReport, fx: &mut PolicyFx) {
        let p = &self.ports[port];
        fx.slot_sample(telemetry::PortSlotSample {
            at_ns: 0, // stamped by the simulator
            node: self.id.0,
            port: port as u16,
            token_bytes: report.token_bytes,
            effective_flows: report.effective_flows,
            rho: report.rho,
            window_bytes: report.window_bytes,
            rtt_b_ns: report.rtt_b.as_nanos(),
            rtt_m_ns: report.rtt_m.as_nanos(),
            held_acks: p.arbiter.queued() as u64,
            delayed_total: p.arbiter.delayed_total(),
        });
    }
}

impl SwitchPolicy for TfcSwitchPolicy {
    fn on_ingress(
        &mut self,
        in_port: usize,
        pkt: &mut Packet,
        now: Time,
        fx: &mut PolicyFx,
    ) -> IngressVerdict {
        if !self.cfg.delay_arbiter || !pkt.flags.contains(Flags::RMA) {
            return IngressVerdict::Forward;
        }
        let verdict = self.ports[in_port].arbiter.offer(pkt, now);
        match verdict {
            ArbiterVerdict::Forward => IngressVerdict::Forward,
            ArbiterVerdict::Delayed => {
                self.arm_release_timer(in_port, now, fx);
                IngressVerdict::Consume
            }
        }
    }

    fn on_egress(
        &mut self,
        out_port: usize,
        pkt: &mut Packet,
        _queue_bytes: u64,
        now: Time,
        fx: &mut PolicyFx,
    ) -> EgressVerdict {
        let delim_before = self.ports[out_port].engine.delimiter();
        let slot_before = self.ports[out_port].engine.slot_start();
        if let Some(report) = self.ports[out_port].engine.on_data(pkt, now) {
            let token = self.ports[out_port].engine.token_bytes();
            self.ports[out_port].arbiter.set_cap(token);
            self.trace_slot(out_port, &report, fx);
            self.slot_gauges(out_port, &report, fx);
            self.arm_miss_timer(out_port, now, fx);
        } else if self.ports[out_port].engine.delimiter() != delim_before
            || self.ports[out_port].engine.slot_start() != slot_before
        {
            // A delimiter was adopted (first RM, or re-adoption after a
            // miss); start watching it. Without this, a silent flow
            // adopted during re-arm would wedge the port: no slot ever
            // closes, so no close-time re-arm can happen.
            self.arm_miss_timer(out_port, now, fx);
        }
        if pkt.flags.contains(Flags::RM) {
            let engine = &self.ports[out_port].engine;
            let w = pkt.weight;
            pkt.window = pkt
                .window
                .min(engine.window_for(w))
                .min(engine.live_window_for(w));
        }
        if pkt.flags.contains(Flags::FIN) {
            self.ports[out_port].engine.on_fin(pkt.flow);
        }
        EgressVerdict::Enqueue
    }

    /// Control-plane reboot of one port (the `PolicyReset` fault): the
    /// token engine and delay arbiter are rebuilt from scratch at the
    /// port's current line rate, exactly as at construction. All learnt
    /// state — token pool, effective-flow count, rho, delimiter, RTT
    /// estimates — is lost and must be re-learnt from live traffic.
    fn reset_port(&mut self, port: usize, rate: Bandwidth, now: Time, fx: &mut PolicyFx) {
        let engine = TokenEngine::new(rate, self.cfg);
        let cap = engine.token_bytes();
        let mut arbiter = DelayArbiter::with_fill_factor(rate, cap, self.cfg.rho0);
        arbiter.set_gate_all(self.cfg.arbiter_gates_all);
        let p = &mut self.ports[port];
        p.engine = engine;
        p.arbiter = arbiter;
        // Cancel (best-effort) and invalidate outstanding timers; the
        // stale-generation check on the miss timer remains the source of
        // truth, and a release timer that outruns the cancel fires
        // harmlessly on the empty rebuilt arbiter.
        if p.miss_gen > 0 {
            fx.cancel_timer(encode_token(KIND_MISS, port, p.miss_gen));
        }
        p.miss_gen += 1;
        p.miss_armed_at = now;
        if p.release_armed {
            fx.cancel_timer(encode_token(KIND_RELEASE, port, 0));
        }
        p.release_armed = false;
    }

    fn on_timer(&mut self, token: u64, now: Time, fx: &mut PolicyFx) {
        let (kind, port, gen) = decode_token(token);
        match kind {
            KIND_MISS => {
                let armed_at = {
                    let p = &self.ports[port];
                    if gen != p.miss_gen {
                        return; // Stale arm generation.
                    }
                    p.miss_armed_at
                };
                if let Some(_next) = self.ports[port].engine.on_miss_timer(armed_at, now) {
                    self.arm_miss_timer(port, now, fx);
                }
            }
            KIND_RELEASE => {
                self.ports[port].release_armed = false;
                let released = self.ports[port].arbiter.release(now);
                for (pkt, held) in released {
                    // The hold is the flow's token/window acquire wait;
                    // report it before the ACK re-enters the fabric.
                    fx.token_wait(pkt.flow.0, held.as_nanos());
                    fx.inject(pkt);
                }
                self.arm_release_timer(port, now, fx);
            }
            _ => unreachable!("unknown policy timer kind"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::packet::{FlowId, MSS, WINDOW_INIT};
    use simnet::units::{Bandwidth, Dur};

    fn links(n: usize) -> Vec<PortLink> {
        (0..n)
            .map(|i| PortLink {
                rate: Bandwidth::gbps(1),
                delay: Dur::micros(1),
                peer: NodeId(100 + i as u32),
                peer_port: 0,
            })
            .collect()
    }

    fn policy(n_ports: usize) -> TfcSwitchPolicy {
        TfcSwitchPolicy::new(NodeId(9), &links(n_ports), TfcSwitchConfig::default())
    }

    fn rm_data(flow: u64) -> Packet {
        let mut p = Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, MSS);
        p.flags.set(Flags::RM);
        p
    }

    fn rma(window: u64) -> Packet {
        let mut p = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 0);
        p.flags.set(Flags::RMA);
        p.window = window;
        p
    }

    #[test]
    fn token_roundtrip() {
        for kind in [KIND_MISS, KIND_RELEASE] {
            for port in [0usize, 3, 65_535] {
                for gen in [0u64, 1, 1 << 30] {
                    assert_eq!(
                        decode_token(encode_token(kind, port, gen)),
                        (kind, port, gen)
                    );
                }
            }
        }
    }

    #[test]
    fn rm_data_gets_stamped() {
        let mut p = policy(2);
        let mut fx = PolicyFx::new();
        let mut pkt = rm_data(1);
        pkt.window = WINDOW_INIT;
        p.on_egress(0, &mut pkt, 0, Time(0), &mut fx);
        assert_eq!(pkt.window, p.engine(0).window());
        // A tighter upstream stamp survives.
        let mut tight = rm_data(2);
        tight.window = 5;
        p.on_egress(0, &mut tight, 0, Time(1), &mut fx);
        assert_eq!(tight.window, 5);
    }

    #[test]
    fn adoption_arms_miss_timer() {
        let mut p = policy(1);
        let mut fx = PolicyFx::new();
        p.on_egress(0, &mut rm_data(1), 0, Time(0), &mut fx);
        assert_eq!(fx.timers.len(), 1);
        let (kind, port, _) = decode_token(fx.timers[0].1);
        assert_eq!((kind, port), (KIND_MISS, 0));
    }

    #[test]
    fn slot_close_rearms_miss_timer_and_updates_cap() {
        let mut p = policy(1);
        let mut fx = PolicyFx::new();
        p.on_egress(0, &mut rm_data(1), 0, Time(0), &mut fx);
        let mut fx2 = PolicyFx::new();
        p.on_egress(0, &mut rm_data(1), 0, Time(100_000), &mut fx2);
        assert_eq!(fx2.timers.len(), 1);
    }

    #[test]
    fn stale_miss_timer_ignored() {
        let mut p = policy(1);
        let mut fx = PolicyFx::new();
        p.on_egress(0, &mut rm_data(1), 0, Time(0), &mut fx);
        let old_token = fx.timers[0].1;
        // Slot closes, generating a new arm.
        let mut fx2 = PolicyFx::new();
        p.on_egress(0, &mut rm_data(1), 0, Time(100_000), &mut fx2);
        // The stale timer fires: nothing happens.
        let mut fx3 = PolicyFx::new();
        p.on_timer(old_token, Time(200_000), &mut fx3);
        assert!(fx3.timers.is_empty());
        assert_eq!(p.engine(0).delimiter(), Some(FlowId(1)));
    }

    #[test]
    fn live_miss_timer_rearms_port() {
        let mut p = policy(1);
        let mut fx = PolicyFx::new();
        p.on_egress(0, &mut rm_data(1), 0, Time(0), &mut fx);
        let tok = fx.timers[0].1;
        let mut fx2 = PolicyFx::new();
        p.on_timer(tok, Time(320_000), &mut fx2);
        // Doubled follow-up timer armed.
        assert_eq!(fx2.timers.len(), 1);
        // A different flow's RM is now adopted.
        let mut fx3 = PolicyFx::new();
        p.on_egress(0, &mut rm_data(2), 0, Time(321_000), &mut fx3);
        assert_eq!(p.engine(0).delimiter(), Some(FlowId(2)));
    }

    #[test]
    fn rma_below_mss_is_consumed_and_released() {
        let mut p = policy(1);
        // Drain the arbiter with a big-window RMA.
        let mut fx = PolicyFx::new();
        let mut big = rma(20_000);
        assert_eq!(
            p.on_ingress(0, &mut big, Time(0), &mut fx),
            IngressVerdict::Forward
        );
        let mut small = rma(100);
        let mut fx2 = PolicyFx::new();
        assert_eq!(
            p.on_ingress(0, &mut small, Time(0), &mut fx2),
            IngressVerdict::Consume
        );
        let (wait, tok) = fx2.timers[0];
        assert!(wait > Dur::ZERO);
        let mut fx3 = PolicyFx::new();
        p.on_timer(tok, Time(wait.as_nanos()), &mut fx3);
        assert_eq!(fx3.inject.len(), 1);
        assert_eq!(fx3.inject[0].window, MSS);
    }

    #[test]
    fn non_rma_acks_skip_arbiter() {
        let mut p = policy(1);
        let mut ack = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 0);
        let mut fx = PolicyFx::new();
        assert_eq!(
            p.on_ingress(0, &mut ack, Time(0), &mut fx),
            IngressVerdict::Forward
        );
        assert!(fx.timers.is_empty());
    }

    #[test]
    fn arbiter_ablation_forwards_everything() {
        let cfg = TfcSwitchConfig {
            delay_arbiter: false,
            ..Default::default()
        };
        let mut p = TfcSwitchPolicy::new(NodeId(9), &links(1), cfg);
        let mut fx = PolicyFx::new();
        p.on_ingress(0, &mut rma(20_000), Time(0), &mut fx);
        let mut small = rma(100);
        assert_eq!(
            p.on_ingress(0, &mut small, Time(0), &mut fx),
            IngressVerdict::Forward
        );
        assert_eq!(small.window, 100, "window untouched without arbiter");
    }

    #[test]
    fn trace_emits_series_on_slot_close() {
        let cfg = TfcSwitchConfig {
            trace: true,
            ..Default::default()
        };
        let mut p = TfcSwitchPolicy::new(NodeId(3), &links(1), cfg);
        let mut fx = PolicyFx::new();
        p.on_egress(0, &mut rm_data(1), 0, Time(0), &mut fx);
        assert!(fx.traces.is_empty());
        let mut fx2 = PolicyFx::new();
        p.on_egress(0, &mut rm_data(1), 0, Time(160_000), &mut fx2);
        let keys: Vec<&str> = fx2.traces.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"tfc.s3.p0.ne"));
        assert!(keys.contains(&"tfc.s3.p0.window"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use rng::props::{cases, vec_u64};
    use rng::Rng;
    use simnet::packet::{Flags, FlowId, Packet, MSS, WINDOW_INIT};
    use simnet::units::{Bandwidth, Dur};

    fn port_link(rate_mbps: u64) -> PortLink {
        PortLink {
            rate: Bandwidth::mbps(rate_mbps),
            delay: Dur::micros(1),
            peer: NodeId(0),
            peer_port: 0,
        }
    }

    /// Stamping composes as a running min across a chain of
    /// switches, whatever their rates and slot histories.
    #[test]
    fn window_stamp_is_min_composition() {
        cases(128, |_case, rng| {
            let rates = vec_u64(rng, 1..5, 100..10_000);
            let weight = rng.gen_range(1..4u8);
            let mut policies: Vec<TfcSwitchPolicy> = rates
                .iter()
                .map(|&r| {
                    TfcSwitchPolicy::new(
                        NodeId(9),
                        &[port_link(r)],
                        TfcSwitchConfig::default(),
                    )
                })
                .collect();
            let mut pkt = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, MSS);
            pkt.flags.set(Flags::RM);
            pkt.weight = weight;
            pkt.window = WINDOW_INIT;
            let mut expected = WINDOW_INIT;
            for p in policies.iter_mut() {
                let mut fx = PolicyFx::new();
                p.on_egress(0, &mut pkt, 0, Time(1_000), &mut fx);
                let stamp = p
                    .engine(0)
                    .window_for(weight)
                    .min(p.engine(0).live_window_for(weight));
                expected = expected.min(stamp);
                assert_eq!(pkt.window, expected, "rates {rates:?}, weight {weight}");
            }
            // A tighter upstream stamp survives every later hop.
            assert!(pkt.window <= expected);
        });
    }

    /// The arbiter never grants more than `cap + fill × elapsed`
    /// bytes over any prefix of offered RMAs, gate-all or not.
    #[test]
    fn arbiter_conserves_budget() {
        cases(128, |_case, rng| {
            let windows = vec_u64(rng, 1..100, 64..20_000);
            let gate_all = rng.gen_bool(0.5);
            let spacing_ns = rng.gen_range(100..50_000u64);
            let cap = 20_000.0;
            let mut a =
                crate::arbiter::DelayArbiter::with_fill_factor(Bandwidth::gbps(1), cap, 0.97);
            a.set_gate_all(gate_all);
            let mut granted = 0u64;
            let mut now = Time(0);
            for &w in &windows {
                now = Time(now.nanos() + spacing_ns);
                let mut pkt = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 0);
                pkt.flags.set(Flags::RMA);
                pkt.window = w;
                if a.offer(&mut pkt, now) == crate::arbiter::ArbiterVerdict::Forward {
                    granted += pkt.window.max(MSS).div_ceil(MSS) * MSS;
                }
            }
            for (pkt, _) in a.release(now) {
                granted += pkt.window.max(MSS).div_ceil(MSS) * MSS;
            }
            if gate_all {
                let budget =
                    cap + 0.97 * 0.125 * now.nanos() as f64 + (2 * MSS) as f64;
                assert!(
                    (granted as f64) <= budget,
                    "granted {granted} over budget {budget} ({} windows, spacing {spacing_ns} ns)",
                    windows.len()
                );
            }
        });
    }
}
