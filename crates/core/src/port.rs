//! The per-port token engine: §4 of the paper as a pure state machine.
//!
//! One [`TokenEngine`] instance manages one switch egress port. It
//! implements the paper's five switch modules that sit on the data path
//! of §5.2 — RTT timer, N (effective-flow) counter, rho counter, token
//! allocator, and window calculator — without touching the simulator, so
//! it can be unit-tested directly.

use simnet::packet::{FlowId, Packet, RTT_PROBE_FRAME};
use simnet::units::{Bandwidth, Dur, Time};

use crate::config::TfcSwitchConfig;

/// Per-slot measurements published when a slot closes (for tracing and
/// tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotReport {
    /// Number of effective flows measured in the closed slot.
    pub effective_flows: f64,
    /// Instantaneous slot length (`rtt_m`).
    pub rtt_m: Dur,
    /// Minimum filtered base RTT (`rtt_b`).
    pub rtt_b: Dur,
    /// Measured utilisation of the slot.
    pub rho: f64,
    /// Smoothed token value in bytes after adjustment.
    pub token_bytes: f64,
    /// Window for the next slot, in bytes.
    pub window_bytes: u64,
}

/// The token engine for one egress port.
///
/// Feed it every data-direction packet with
/// [`on_data`](TokenEngine::on_data); it returns `Some(SlotReport)` when
/// the packet was the delimiter flow's round mark and a slot closed. Read
/// the current window with [`window`](TokenEngine::window) to stamp RM
/// packets.
#[derive(Debug)]
pub struct TokenEngine {
    cfg: TfcSwitchConfig,
    rate: Bandwidth,
    delimiter: Option<FlowId>,
    slot_start: Time,
    /// Count of round marks seen this slot. The paper's Event 1 resets
    /// `E = 1` at slot close (the delimiter's own mark).
    e_count: f64,
    arrived_bytes: u64,
    rtt_b: Dur,
    rtt_m: Dur,
    /// Effective-flow count of the previous slot (for the §4.3 two-slot
    /// average).
    e_prev: Option<f64>,
    token: f64,
    window: u64,
    /// Set when the delimiter timed out; the next RM from any flow is
    /// adopted as the new delimiter.
    rearm: bool,
    miss_k: u32,
    /// Whether `rtt_b` has been measured at least once (vs. the
    /// configured initial guess).
    rttb_measured: bool,
    /// Whether the RM that opened the current slot was a full frame.
    /// `rtt_b` intervals are only valid between two full frames (§4.4):
    /// store-and-forward time depends on frame size, so a slot opened by
    /// a small probe and closed by a data packet reads short.
    slot_opener_full: bool,
}

impl TokenEngine {
    /// Creates an engine for a port of the given line rate.
    pub fn new(rate: Bandwidth, cfg: TfcSwitchConfig) -> Self {
        let init_token = rate.bytes_per_sec() * cfg.init_rttb.as_secs_f64();
        Self {
            cfg,
            rate,
            delimiter: None,
            slot_start: Time::ZERO,
            e_count: 1.0,
            arrived_bytes: 0,
            rtt_b: cfg.init_rttb,
            rtt_m: cfg.init_rttb,
            e_prev: None,
            token: init_token,
            window: init_token as u64,
            rearm: false,
            miss_k: 0,
            rttb_measured: false,
            slot_opener_full: false,
        }
    }

    /// Current window (bytes) to stamp into RM packets.
    ///
    /// Until the first real `rtt_b` measurement the stamp is capped at a
    /// few segments: the configured initial pipe (`c × 160 µs`) can be
    /// an order above the true one, and stamping it into a burst of
    /// establishing flows builds a standing queue that then inflates
    /// every subsequent RTT measurement (the queue hides the base RTT
    /// from the min filter). A short conservative start avoids the
    /// overshoot entirely; one RTT later the token snaps to the
    /// measured pipe.
    pub fn window(&self) -> u64 {
        if self.rttb_measured {
            self.window
        } else {
            self.window.min(Self::COLD_START_CAP)
        }
    }

    /// Current smoothed token value in bytes.
    pub fn token_bytes(&self) -> f64 {
        self.token
    }

    /// Base RTT estimate.
    pub fn rtt_b(&self) -> Dur {
        self.rtt_b
    }

    /// Last instantaneous slot length.
    pub fn rtt_m(&self) -> Dur {
        self.rtt_m
    }

    /// The current delimiter flow, if armed.
    pub fn delimiter(&self) -> Option<FlowId> {
        self.delimiter
    }

    /// Current delimiter-miss exponent (diagnostics).
    pub fn miss_k(&self) -> u32 {
        self.miss_k
    }

    /// When the current slot opened (adoption or last close).
    pub fn slot_start(&self) -> Time {
        self.slot_start
    }

    /// Token divided by the round marks counted *so far* in the open
    /// slot. In steady state this is at least the computed window (the
    /// live count has not reached `E` yet), so min-clamping stamps with
    /// it changes nothing; during a concurrent-arrival burst (incast
    /// establishment) it caps the k-th new flow at `token / k` instead
    /// of everyone receiving the stale single-flow window.
    pub fn live_window(&self) -> u64 {
        let w = (self.token / self.e_count.max(1.0)).max(1.0) as u64;
        if self.rttb_measured {
            w
        } else {
            w.min(Self::COLD_START_CAP)
        }
    }

    /// Pre-measurement stamp cap: four full segments.
    pub const COLD_START_CAP: u64 = 4 * simnet::packet::MSS;

    /// Window for a flow of the given allocation weight:
    /// `weight × token / E` (the unit-weight [`window`](Self::window)
    /// scaled), with the same cold-start cap.
    pub fn window_for(&self, weight: u8) -> u64 {
        let w = self.window.saturating_mul(weight.max(1) as u64);
        if self.rttb_measured {
            w
        } else {
            w.min(Self::COLD_START_CAP)
        }
    }

    /// Weighted variant of [`live_window`](Self::live_window).
    pub fn live_window_for(&self, weight: u8) -> u64 {
        self.live_window().saturating_mul(weight.max(1) as u64)
    }

    /// Processes a data-direction packet headed out this port
    /// (the paper's Event 1). Returns a report when a slot closed.
    pub fn on_data(&mut self, pkt: &Packet, now: Time) -> Option<SlotReport> {
        self.arrived_bytes += pkt.wire_bytes();
        if !pkt.flags.contains(simnet::packet::Flags::RM) {
            return None;
        }
        match self.delimiter {
            None => {
                self.adopt(pkt, now);
                None
            }
            Some(d) if d == pkt.flow => Some(self.close_slot(pkt, now)),
            Some(_) if self.rearm => {
                // The old delimiter timed out; switch to this flow.
                self.adopt(pkt, now);
                None
            }
            Some(_) => {
                // Weighted-allocation extension: a weight-w flow counts
                // as w consumers (§4.1's "any allocation policies").
                self.e_count += pkt.weight.max(1) as f64;
                None
            }
        }
    }

    /// Handles a FIN from the current delimiter flow: the port re-arms on
    /// the next round mark (§5.2, "when the current delimiter flow
    /// ends").
    pub fn on_fin(&mut self, flow: FlowId) {
        if self.delimiter == Some(flow) {
            self.delimiter = None;
            self.rearm = false;
            self.miss_k = 0;
        }
    }

    /// Delimiter-miss check (the `2^k × rtt_last` timer of §5.2).
    /// Returns the delay until the next check, or `None` when the miss
    /// budget is exhausted and the port has fully re-armed.
    pub fn on_miss_timer(&mut self, armed_at: Time, now: Time) -> Option<Dur> {
        if self.slot_start > armed_at || self.delimiter.is_none() {
            // A slot closed (or the delimiter was replaced) since the
            // timer was armed; the caller re-arms on the next close.
            return None;
        }
        let _ = now;
        self.rearm = true;
        if self.miss_k >= self.cfg.max_miss_k {
            // Give up on the delimiter entirely.
            self.delimiter = None;
            self.miss_k = 0;
            return None;
        }
        self.miss_k += 1;
        Some(self.miss_delay())
    }

    /// Current miss-timer delay: `2^(k+1) × rtt_last` (§5.2: the first
    /// re-catch happens after `2 × rtt_last`, the second after
    /// `4 × rtt_last`, and so on).
    pub fn miss_delay(&self) -> Dur {
        Dur(self.rtt_m.as_nanos() << (self.miss_k.min(self.cfg.max_miss_k) + 1))
    }

    fn adopt(&mut self, pkt: &Packet, now: Time) {
        self.delimiter = Some(pkt.flow);
        self.slot_start = now;
        self.e_count = pkt.weight.max(1) as f64;
        self.arrived_bytes = 0;
        self.rearm = false;
        // Deliberately keep `miss_k`: §5.2 escalates the re-catch delay
        // (2×, 4×, ... rtt_last) across successive re-adoptions, and the
        // escalation is what lets the check outlast a round that is
        // longer than the stale `rtt_m` (e.g. the sub-MSS paced regime).
        // A real slot close resets it.
        self.slot_opener_full = pkt.wire_bytes() >= RTT_PROBE_FRAME;
    }

    fn close_slot(&mut self, pkt: &Packet, now: Time) -> SlotReport {
        let rtt_m = now.since(self.slot_start);
        if rtt_m > Dur::ZERO {
            self.rtt_m = rtt_m;
        }
        // §4.4: only intervals between two full frames measure the base
        // RTT, because store-and-forward time depends on frame size.
        let closer_full = pkt.wire_bytes() >= RTT_PROBE_FRAME;
        let mut snapped = false;
        if closer_full && self.slot_opener_full && rtt_m > Dur::ZERO {
            self.rtt_b = self.rtt_b.min(rtt_m);
            if !self.rttb_measured {
                // First real measurement: snap the token to the measured
                // pipe instead of EWMA-dragging from the initial guess.
                self.rttb_measured = true;
                snapped = true;
                self.token = self.rate.bytes_per_sec() * self.rtt_b.as_secs_f64() * self.cfg.rho0;
            }
        }
        self.slot_opener_full = closer_full;
        let rtt_for_token = if self.cfg.decouple_rtt {
            self.rtt_b
        } else {
            self.rtt_m
        };
        let pipe = self.rate.bytes_per_sec() * rtt_for_token.as_secs_f64();
        let slot_capacity = self.rate.bytes_per_sec() * self.rtt_m.as_secs_f64();
        let rho_raw = self.arrived_bytes as f64 / slot_capacity.max(1.0);
        let raw_token = if self.cfg.token_adjustment && rho_raw >= self.cfg.rho_floor {
            // Eq. 7: the rho0 / rho correction, with rho measured over
            // the instantaneous slot. In integral mode the ratio applies
            // to the current token (see `TfcSwitchConfig`).
            let base = if self.cfg.integral_adjustment {
                self.token
            } else {
                pipe
            };
            (base * self.cfg.rho0 / rho_raw).clamp(pipe * 0.25, pipe * self.cfg.token_boost_cap)
        } else if self.cfg.token_adjustment {
            // Nearly empty slot: idle gaps carry no demand signal, so
            // boosting on them would inflate the token right before the
            // next burst (e.g. between barrier-synchronised incast
            // rounds). Hold the token instead.
            self.token
        } else {
            pipe * self.cfg.rho0
        };
        // Eq. 8: EWMA with history weight alpha. The snap slot keeps the
        // freshly measured pipe as-is.
        if !snapped {
            self.token = self.cfg.alpha * self.token + (1.0 - self.cfg.alpha) * raw_token;
        }
        let e_now = self.e_count.max(1.0);
        let e = if self.cfg.e_two_slot_average {
            let avg = (e_now + self.e_prev.unwrap_or(e_now)) / 2.0;
            self.e_prev = Some(e_now);
            avg
        } else {
            e_now
        };
        self.window = (self.token / e).max(1.0) as u64;

        let report = SlotReport {
            effective_flows: e_now,
            rtt_m: self.rtt_m,
            rtt_b: self.rtt_b,
            rho: rho_raw,
            token_bytes: self.token,
            window_bytes: self.window,
        };
        // Paper Event 1: "Let E = 1 and tstart = tnow" — the delimiter's
        // own mark opens the next slot (its weight's worth of consumers).
        self.e_count = pkt.weight.max(1) as f64;
        self.arrived_bytes = 0;
        self.slot_start = now;
        self.miss_k = 0;
        self.rearm = false;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::packet::{Flags, NodeId, MSS};
    use simnet::units::Bandwidth;

    const GBPS: Bandwidth = Bandwidth(1_000_000_000);

    fn rm_data(flow: u64, payload: u64) -> Packet {
        let mut p = Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, payload);
        p.flags.set(Flags::RM);
        p
    }

    fn data(flow: u64, payload: u64) -> Packet {
        Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, payload)
    }

    fn engine() -> TokenEngine {
        TokenEngine::new(GBPS, TfcSwitchConfig::default())
    }

    #[test]
    fn initial_window_is_cold_start_capped() {
        let mut e = engine();
        // Pre-measurement: capped at four segments, not c × 160 µs.
        assert_eq!(e.window(), TokenEngine::COLD_START_CAP);
        // After a full-frame interval the cap lifts and the token snaps
        // to the measured pipe.
        e.on_data(&rm_data(1, MSS), Time(0));
        e.on_data(&rm_data(1, MSS), Time(100_000));
        assert!(e.window() > TokenEngine::COLD_START_CAP);
        // Pipe = 1 Gbps × 100 µs × 0.97 = 12_125 B (one flow).
        assert!((e.token_bytes() - 12_125.0).abs() < 500.0);
    }

    #[test]
    fn first_rm_adopts_delimiter() {
        let mut e = engine();
        assert!(e.on_data(&rm_data(7, MSS), Time(1_000)).is_none());
        assert_eq!(e.delimiter(), Some(FlowId(7)));
    }

    #[test]
    fn slot_counts_effective_flows() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        // Two other flows mark once, delimiter closes the slot.
        e.on_data(&rm_data(2, MSS), Time(10_000));
        e.on_data(&rm_data(3, MSS), Time(20_000));
        let report = e
            .on_data(&rm_data(1, MSS), Time(100_000))
            .expect("slot closes");
        assert_eq!(report.effective_flows, 3.0);
        assert_eq!(report.rtt_m, Dur::micros(100));
    }

    #[test]
    fn window_is_token_over_e() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        for f in 2..=4 {
            e.on_data(&rm_data(f, MSS), Time(1_000 * f));
        }
        let r = e.on_data(&rm_data(1, MSS), Time(160_000)).unwrap();
        assert_eq!(r.effective_flows, 4.0);
        assert_eq!(r.window_bytes, (r.token_bytes / 4.0) as u64);
    }

    #[test]
    fn rtt_b_takes_minimum_full_frames_only() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        // A small marked frame closes a slot but must not update rtt_b.
        e.on_data(&rm_data(1, 100), Time(50_000));
        assert_eq!(e.rtt_b(), Dur::micros(160));
        // An interval opened by the small frame is invalid too, even if
        // closed by a full frame.
        e.on_data(&rm_data(1, MSS), Time(150_000));
        assert_eq!(e.rtt_b(), Dur::micros(160));
        // A full-frame-to-full-frame interval finally measures.
        e.on_data(&rm_data(1, MSS), Time(250_000));
        assert_eq!(e.rtt_b(), Dur::micros(100));
        // Larger samples never raise it back.
        e.on_data(&rm_data(1, MSS), Time(550_000));
        assert_eq!(e.rtt_b(), Dur::micros(100));
    }

    #[test]
    fn token_adjustment_boosts_underutilised_link() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        // Slots of 160 µs carrying 8 packets: rho = 0.6, well above the
        // idle threshold but below rho0, so the token must be boosted
        // past the pipe (20 kB).
        let mut last = 0.0;
        for i in 1..=60u64 {
            for _ in 0..7 {
                e.on_data(&data(2, MSS), Time(i * 160_000 - 1));
            }
            if let Some(r) = e.on_data(&rm_data(1, MSS), Time(i * 160_000)) {
                last = r.token_bytes;
            }
        }
        assert!(last > 20_000.0, "token should grow, got {last}");
        // Bounded by the boost cap.
        let cap = 4.0 * 1.25e8 * 160e-6;
        assert!(last <= cap * 1.01);
    }

    #[test]
    fn idle_slots_hold_the_token() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        e.on_data(&rm_data(1, MSS), Time(160_000));
        let after_snap = e.token_bytes();
        // Near-empty slots (one mark each, rho ≈ 0.075) must not move
        // the token.
        for i in 2..=20u64 {
            e.on_data(&rm_data(1, MSS), Time(i * 160_000));
        }
        assert_eq!(e.token_bytes(), after_snap);
    }

    #[test]
    fn token_adjustment_shrinks_overloaded_link() {
        let cfg = TfcSwitchConfig::default();
        let mut e = TokenEngine::new(GBPS, cfg);
        e.on_data(&rm_data(1, MSS), Time(0));
        // Stuff 3 pipes' worth of arrivals into each slot: rho = 3.
        for i in 1..=40u64 {
            for _ in 0..40 {
                e.on_data(&data(2, MSS), Time(i * 160_000 - 1));
            }
            e.on_data(&rm_data(1, MSS), Time(i * 160_000));
        }
        // rho ≈ 3 ⇒ token ≈ pipe × 0.97 / 3.
        let expect = 20_000.0 * 0.97 / 3.0;
        assert!(
            (e.token_bytes() - expect).abs() / expect < 0.25,
            "token {} vs expected {expect}",
            e.token_bytes()
        );
    }

    #[test]
    fn ablation_disables_adjustment() {
        let cfg = TfcSwitchConfig {
            token_adjustment: false,
            ..Default::default()
        };
        let mut e = TokenEngine::new(GBPS, cfg);
        e.on_data(&rm_data(1, MSS), Time(0));
        for i in 1..=40u64 {
            e.on_data(&rm_data(1, MSS), Time(i * 160_000));
        }
        // Without adjustment the token settles at rho0 × pipe.
        assert!((e.token_bytes() - 0.97 * 20_000.0).abs() < 200.0);
    }

    #[test]
    fn fin_clears_delimiter_and_next_rm_adopts() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        e.on_fin(FlowId(1));
        assert_eq!(e.delimiter(), None);
        e.on_data(&rm_data(9, MSS), Time(1_000));
        assert_eq!(e.delimiter(), Some(FlowId(9)));
    }

    #[test]
    fn foreign_fin_does_not_clear() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        e.on_fin(FlowId(2));
        assert_eq!(e.delimiter(), Some(FlowId(1)));
    }

    #[test]
    fn miss_timer_rearms_on_other_flow() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        // Timer armed at t=0 fires later with no delimiter RM in between.
        let next = e.on_miss_timer(Time(0), Time(320_000));
        assert!(next.is_some());
        // Another flow's RM is now adopted.
        e.on_data(&rm_data(2, MSS), Time(330_000));
        assert_eq!(e.delimiter(), Some(FlowId(2)));
    }

    #[test]
    fn miss_timer_noop_when_slot_progressed() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        e.on_data(&rm_data(1, MSS), Time(100_000)); // slot closed
        assert_eq!(e.on_miss_timer(Time(0), Time(320_000)), None);
        assert_eq!(e.delimiter(), Some(FlowId(1)));
    }

    #[test]
    fn miss_budget_exhausts_to_full_rearm() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        let mut armed = Time(0);
        let mut fired = 0;
        while let Some(d) = e.on_miss_timer(armed, Time(armed.nanos() + 1)) {
            armed = Time(armed.nanos() + d.as_nanos());
            fired += 1;
            assert!(fired < 100, "miss loop must terminate");
        }
        assert_eq!(e.delimiter(), None);
        assert_eq!(fired, TfcSwitchConfig::default().max_miss_k);
    }

    #[test]
    fn miss_delay_doubles() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        let d0 = e.miss_delay();
        e.on_miss_timer(Time(0), Time(400_000));
        let d1 = e.miss_delay();
        assert_eq!(d1.as_nanos(), d0.as_nanos() * 2);
    }

    #[test]
    fn weighted_flows_count_as_multiple_consumers() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        // A weight-3 flow's mark counts as three consumers.
        let mut heavy = rm_data(2, MSS);
        heavy.weight = 3;
        e.on_data(&heavy, Time(10_000));
        let r = e.on_data(&rm_data(1, MSS), Time(160_000)).unwrap();
        assert_eq!(r.effective_flows, 4.0);
        // And its stamp is three unit windows.
        assert_eq!(e.window_for(3), e.window().saturating_mul(3));
    }

    /// Packet spray (ECMP): during route churn one flow transiently
    /// holds delimiter slots on several ports of the same switch. The
    /// engines are fully independent, so each port adopts it, counts
    /// its own E from the marks it actually sees, and computes its own
    /// window — and a FIN releases the slot at *every* port holding it.
    #[test]
    fn sprayed_flow_holds_slots_on_several_ports() {
        let mut a = engine();
        let mut b = engine();
        // Flow 1's marks reach both ports (spray); flow 2 rides port a
        // only.
        a.on_data(&rm_data(1, MSS), Time(0));
        b.on_data(&rm_data(1, MSS), Time(0));
        assert_eq!(a.delimiter(), Some(FlowId(1)));
        assert_eq!(b.delimiter(), Some(FlowId(1)));
        a.on_data(&rm_data(2, MSS), Time(50_000));
        let ra = a.on_data(&rm_data(1, MSS), Time(160_000)).unwrap();
        let rb = b.on_data(&rm_data(1, MSS), Time(160_000)).unwrap();
        // Per-port E reflects per-port marks: the shared port sees two
        // consumers, the private one only the sprayed flow.
        assert_eq!(ra.effective_flows, 2.0);
        assert_eq!(rb.effective_flows, 1.0);
        // The flow's end-to-end stamp is the min along its path, i.e.
        // the busier port governs.
        assert!(a.window() <= b.window());
        // FIN releases the slot everywhere it was held.
        a.on_fin(FlowId(1));
        b.on_fin(FlowId(1));
        assert_eq!(a.delimiter(), None);
        assert_eq!(b.delimiter(), None);
    }

    /// Route repair moves a flow off a port mid-stream: the abandoned
    /// port's miss timer escalates and reclaims the delimiter within
    /// the budget, after which a surviving flow is adopted — the slot
    /// is never leaked to a flow that no longer maps there.
    #[test]
    fn migrated_delimiter_is_reclaimed_by_the_miss_timer() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        e.on_data(&rm_data(1, MSS), Time(160_000)); // steady slot
        // Flow 1 reroutes away; only flow 2's marks still arrive.
        let armed = Time(160_000);
        let mut fired = 0;
        while e.on_miss_timer(armed, Time(armed.nanos() + 1)).is_some() {
            fired += 1;
            // While re-arming, the next foreign RM takes over.
            e.on_data(&rm_data(2, MSS), Time(armed.nanos() + 2));
            break;
        }
        assert!(fired > 0, "miss timer must fire for the moved flow");
        assert_eq!(e.delimiter(), Some(FlowId(2)));
    }

    /// Property test for spray/churn: random flows spraying marks over
    /// random ports of one switch, with random mid-run migrations.
    /// Invariants at every slot close and at the end of the run: the
    /// reported E is bounded by the round marks the port actually
    /// received during the slot (per-port accounting never invents
    /// consumers), windows never collapse below one byte, and every
    /// abandoned delimiter is reclaimed within the miss budget.
    ///
    /// Audit note: E is *not* bounded by the live flow count — when the
    /// delimiter migrates away mid-slot the slot stretches and other
    /// flows mark several times, each counted (the paper's estimator
    /// assumes path stability). The miss timer bounds how long such an
    /// inflated slot can last; the over-count itself only makes windows
    /// conservative (token / E shrinks), never unsafe.
    #[test]
    fn spray_and_churn_keep_per_port_accounting_sound() {
        use rng::Rng as _;
        rng::props::cases(48, |case, rg| {
            let n_ports = rg.gen_range(2..5usize);
            let n_flows = rg.gen_range(2..7u64);
            let rounds = rg.gen_range(4..12u64);
            let mut engines: Vec<TokenEngine> = (0..n_ports).map(|_| engine()).collect();
            // port_of[f] = the flow's current port; churn re-rolls it.
            let mut port_of: Vec<usize> =
                (0..n_flows).map(|_| rg.gen_range(0..n_ports)).collect();
            // Round marks fed to each port since its last slot close.
            let mut marks = vec![0u64; n_ports];
            let mut t = 0u64;
            for round in 0..rounds {
                for f in 0..n_flows {
                    if rg.gen_range(0..8u32) == 0 {
                        // Reroute: the flow migrates to another port.
                        port_of[f as usize] = rg.gen_range(0..n_ports);
                    }
                    t += rg.gen_range(1_000..40_000u64);
                    let p = port_of[f as usize];
                    marks[p] += 1;
                    let report = engines[p].on_data(&rm_data(f, MSS), Time(t));
                    if let Some(r) = report {
                        assert!(
                            r.effective_flows >= 1.0
                                && r.effective_flows <= marks[p] as f64,
                            "case {case} round {round}: E {} outside [1, {}]",
                            r.effective_flows,
                            marks[p]
                        );
                        assert!(r.window_bytes >= 1, "window collapsed");
                        assert!(r.token_bytes.is_finite() && r.token_bytes > 0.0);
                        // The closing mark opens the next slot.
                        marks[p] = 1;
                    }
                }
            }
            // Reclamation: every port whose delimiter no longer maps to
            // it clears (or re-adopts) within the miss budget.
            for (p, e) in engines.iter_mut().enumerate() {
                let Some(d) = e.delimiter() else { continue };
                if port_of[d.0 as usize] == p {
                    continue;
                }
                let mut armed = Time(t);
                let mut fired = 0u32;
                while let Some(delay) = e.on_miss_timer(armed, Time(armed.nanos() + 1)) {
                    armed = Time(armed.nanos() + delay.as_nanos());
                    fired += 1;
                    assert!(fired <= TfcSwitchConfig::default().max_miss_k, "miss loop leaked");
                }
                assert_eq!(e.delimiter(), None, "stale delimiter survived reclamation");
            }
        });
    }

    #[test]
    fn non_rm_packets_only_count_arrivals() {
        let mut e = engine();
        e.on_data(&rm_data(1, MSS), Time(0));
        for _ in 0..5 {
            assert!(e.on_data(&data(2, MSS), Time(1_000)).is_none());
        }
        let r = e.on_data(&rm_data(1, MSS), Time(160_000)).unwrap();
        assert_eq!(r.effective_flows, 1.0);
        // 5 non-RM + 1 RM(open) + 1 RM(close): rho counts them all.
        assert!(r.rho > 0.0);
    }
}
