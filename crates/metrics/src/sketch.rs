//! Streaming quantile sketches with bounded memory.
//!
//! [`QuantileSketch`] is a DDSketch-style log-bucketed histogram: values
//! land in geometric buckets `(γ^(k-1), γ^k]` with `γ = (1+α)/(1-α)`,
//! so any quantile estimate carries at most `α` *relative* error while
//! the whole sketch needs O(log(max/min)/α) integers — a few KB for
//! nanosecond latencies at α = 1 % — independent of how many samples
//! were recorded. Sketches merge by bucket-count addition, which is
//! exact (commutative and associative), so per-shard or per-run
//! sketches can be combined without losing the error bound.
//!
//! This is the retirement target for completed-flow and per-hop latency
//! records at million-flow scale: recording is O(1), memory stays flat,
//! and the p50/p99/p999 read off the buckets.

use std::collections::BTreeMap;

/// Default relative-accuracy target (1 %).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Default bound on live buckets. At α = 1 % the bucket key of a value
/// `v` is ~`ln(v)/0.02`, so nanosecond values up to ~10^17 (≈ 3 years)
/// fit in under 2000 buckets; the bound exists only as a memory
/// backstop for degenerate inputs.
pub const DEFAULT_MAX_BUCKETS: usize = 4096;

/// A mergeable log-bucketed quantile sketch for non-negative values.
///
/// Values below 1.0 (sub-nanosecond, for latency use) are counted in a
/// dedicated zero bucket and reported as 0. If the bucket bound is ever
/// exceeded, the *lowest* buckets collapse together (as in DDSketch),
/// preserving the accuracy of the high quantiles the tail analysis
/// cares about.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    ln_gamma: f64,
    buckets: BTreeMap<i32, u64>,
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    max_buckets: usize,
    collapsed: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// Creates an empty sketch with relative accuracy `alpha`
    /// (clamped to a sane (0, 0.5) range).
    pub fn new(alpha: f64) -> Self {
        let alpha = alpha.clamp(1e-4, 0.5 - 1e-9);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            max_buckets: DEFAULT_MAX_BUCKETS,
            collapsed: 0,
        }
    }

    /// Rebuilds a sketch from exported parts (the `spans.json` schema):
    /// the inverse of [`bucket_entries`](Self::bucket_entries) plus the
    /// scalar summaries. Used by artifact readers (`tfc-trace diff`).
    pub fn from_parts(
        alpha: f64,
        zero: u64,
        entries: &[(i32, u64)],
        sum: f64,
        min: f64,
        max: f64,
    ) -> Self {
        let mut s = Self::new(alpha);
        s.zero = zero;
        s.count = zero;
        for &(k, c) in entries {
            *s.buckets.entry(k).or_insert(0) += c;
            s.count += c;
        }
        s.sum = sum;
        s.min = if s.count == 0 { f64::INFINITY } else { min };
        s.max = if s.count == 0 { f64::NEG_INFINITY } else { max };
        s
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one value. Negative or non-finite values clamp to 0.
    #[inline]
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < 1.0 {
            self.zero += 1;
            return;
        }
        let key = (v.ln() / self.ln_gamma).ceil() as i32;
        *self.buckets.entry(key).or_insert(0) += 1;
        if self.buckets.len() > self.max_buckets {
            self.collapse_lowest();
        }
    }

    /// Merges another sketch into this one by bucket addition.
    ///
    /// # Panics
    ///
    /// Panics if the accuracies differ — merging across α values would
    /// silently void the error bound.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different accuracies ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.collapsed += other.collapsed;
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
        while self.buckets.len() > self.max_buckets {
            self.collapse_lowest();
        }
    }

    /// Folds the two lowest buckets together (bounded-memory backstop;
    /// biases only the low quantiles, never the tail).
    fn collapse_lowest(&mut self) {
        let Some((&lo, &lo_c)) = self.buckets.iter().next() else {
            return;
        };
        self.buckets.remove(&lo);
        if let Some((&next, _)) = self.buckets.iter().next() {
            *self.buckets.get_mut(&next).expect("key exists") += lo_c;
            let _ = next;
        } else {
            self.zero += lo_c;
        }
        self.collapsed += lo_c;
    }

    /// Estimates the `q`-quantile (`q` in [0, 1]) with relative error at
    /// most α. Returns `None` for an empty sketch. Estimates are clamped
    /// to the observed `[min, max]`, so a bucket midpoint can never
    /// report a value outside the recorded range (q=0 returns the exact
    /// minimum, q=1 the exact maximum).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).floor() as u64;
        // The extreme ranks are known exactly — the scalar min/max ride
        // alongside the buckets — so return them rather than a bucket
        // midpoint that can only approximate them.
        if rank == 0 {
            return Some(self.min);
        }
        if rank == self.count - 1 {
            return Some(self.max);
        }
        let mut cum = self.zero;
        if cum > rank {
            return Some(0.0f64.clamp(self.min, self.max));
        }
        let gamma = self.ln_gamma.exp();
        for (&k, &c) in &self.buckets {
            cum += c;
            if cum > rank {
                // Midpoint of (γ^(k-1), γ^k]: 2γ^k/(γ+1), whose ratio to
                // any value in the bucket is within [1-α, 1+α].
                let mid = 2.0 * (self.ln_gamma * k as f64).exp() / (gamma + 1.0);
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Values counted in the zero bucket (below 1.0).
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// Live log-bucket `(key, count)` pairs in key order — the portable
    /// serial form (plus α, zero count, and the scalar summaries).
    pub fn bucket_entries(&self) -> Vec<(i32, u64)> {
        self.buckets.iter().map(|(&k, &c)| (k, c)).collect()
    }

    /// Number of live buckets (memory diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Values absorbed by low-bucket collapses (0 in normal operation).
    pub fn collapsed(&self) -> u64 {
        self.collapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::cases;
    use rng::Rng;

    /// Exact oracle: the same floor-rank convention the sketch uses.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
        sorted[rank]
    }

    fn assert_within_alpha(s: &QuantileSketch, sorted: &[f64], q: f64, ctx: &str) {
        let est = s.quantile(q).expect("non-empty");
        let exact = exact_quantile(sorted, q);
        if exact < 1.0 {
            assert!(est <= 1.0 + s.alpha(), "{ctx}: q{q} est {est} for sub-unit exact {exact}");
            return;
        }
        let rel = (est - exact).abs() / exact;
        assert!(
            rel <= s.alpha() * 1.0001,
            "{ctx}: q{q} exact {exact} est {est} rel err {rel} > {}",
            s.alpha()
        );
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn single_value_roundtrips_within_alpha() {
        let mut s = QuantileSketch::default();
        s.record(123_456.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            assert!((est - 123_456.0).abs() / 123_456.0 <= s.alpha());
        }
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), Some(123_456.0));
        assert_eq!(s.max(), Some(123_456.0));
    }

    /// Regression: a sketch holding a single value used to report the
    /// geometric bucket midpoint (~100.5 for 100.0) at every quantile,
    /// and q=0 never returned the recorded minimum. Estimates are now
    /// clamped to the observed `[min, max]`, which for one value pins
    /// every quantile to that value exactly.
    #[test]
    fn single_value_quantiles_are_exact() {
        let mut s = QuantileSketch::default();
        s.record(100.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(100.0), "q = {q}");
        }
    }

    /// Regression companion: with two values, q=0 must return the exact
    /// minimum and q=1 the exact maximum — bucket midpoints may only
    /// surface strictly inside the observed range.
    #[test]
    fn two_value_quantiles_stay_inside_observed_range() {
        let mut s = QuantileSketch::default();
        s.record(100.0);
        s.record(200.0);
        assert_eq!(s.quantile(0.0), Some(100.0));
        assert_eq!(s.quantile(1.0), Some(200.0));
        for q in [0.25, 0.5, 0.75] {
            let est = s.quantile(q).unwrap();
            assert!((100.0..=200.0).contains(&est), "q {q} est {est}");
        }
    }

    /// Acceptance property: estimates never leave `[min, max]`, for any
    /// recorded distribution and any quantile.
    #[test]
    fn quantile_estimates_never_leave_min_max() {
        cases(64, |_case, rng| {
            let n = rng.gen_range(1..500usize);
            let mut s = QuantileSketch::default();
            for _ in 0..n {
                // Spans sub-unit (zero-bucket) through huge magnitudes.
                let exp = rng.gen_range(-3.0..12.0f64);
                s.record(10f64.powf(exp));
            }
            let (lo, hi) = (s.min().unwrap(), s.max().unwrap());
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let est = s.quantile(q).unwrap();
                assert!(
                    (lo..=hi).contains(&est),
                    "n {n}: q {q} est {est} outside [{lo}, {hi}]"
                );
            }
        });
    }

    #[test]
    fn zero_and_negative_values_hit_the_zero_bucket() {
        let mut s = QuantileSketch::default();
        s.record(0.0);
        s.record(-5.0);
        s.record(0.5);
        s.record(f64::NAN);
        assert_eq!(s.zero_count(), 4);
        assert_eq!(s.quantile(0.5), Some(0.0));
    }

    /// Satellite property test: quantiles vs an exact sorted-Vec oracle
    /// across seeded distributions (uniform, Pareto, bimodal).
    #[test]
    fn quantiles_match_oracle_across_distributions() {
        cases(48, |case, rng| {
            let n = rng.gen_range(100..5_000usize);
            let dist = case % 3;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                let v: f64 = match dist {
                    // Uniform ns in [1, 10^7).
                    0 => rng.gen_range(1.0..1e7),
                    // Pareto (heavy tail): x_m / U^(1/a), a = 1.3.
                    1 => {
                        let u: f64 = rng.gen_range(1e-9..1.0);
                        1_000.0 / u.powf(1.0 / 1.3)
                    }
                    // Bimodal: fast path ~2 µs, slow path ~5 ms.
                    _ => {
                        if rng.gen_bool(0.8) {
                            rng.gen_range(1_000.0..3_000.0)
                        } else {
                            rng.gen_range(4_000_000.0..6_000_000.0)
                        }
                    }
                };
                vals.push(v);
            }
            let mut s = QuantileSketch::default();
            for &v in &vals {
                s.record(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                assert_within_alpha(&s, &sorted, q, &format!("dist {dist} n {n}"));
            }
            assert_eq!(s.count(), n as u64);
            assert!(
                s.bucket_count() <= DEFAULT_MAX_BUCKETS,
                "memory bound violated"
            );
            assert_eq!(s.collapsed(), 0, "realistic inputs must never collapse");
        });
    }

    /// Satellite property test: merge is commutative (exactly — bucket
    /// addition) and associative, and a merged sketch still answers
    /// within the error bound on the concatenated data.
    #[test]
    fn merge_is_commutative_associative_and_accurate() {
        cases(48, |_case, rng| {
            let mut parts: Vec<Vec<f64>> = Vec::new();
            for _ in 0..3 {
                let n = rng.gen_range(50..1_000usize);
                parts.push((0..n).map(|_| rng.gen_range(1.0..1e9)).collect());
            }
            let sk = |vals: &[f64]| {
                let mut s = QuantileSketch::default();
                for &v in vals {
                    s.record(v);
                }
                s
            };
            let (a, b, c) = (sk(&parts[0]), sk(&parts[1]), sk(&parts[2]));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge(a,b) must equal merge(b,a) exactly");
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            // Bucket counts associate exactly; the float `sum` only up
            // to addition rounding.
            assert_eq!(ab_c.bucket_entries(), a_bc.bucket_entries());
            assert_eq!(ab_c.count(), a_bc.count());
            assert_eq!(ab_c.zero_count(), a_bc.zero_count());
            assert_eq!(ab_c.min(), a_bc.min());
            assert_eq!(ab_c.max(), a_bc.max());
            let (s1, s2) = (ab_c.sum(), a_bc.sum());
            assert!((s1 - s2).abs() <= s1.abs() * 1e-12, "sums diverged: {s1} vs {s2}");
            // Accuracy on the union.
            let mut all: Vec<f64> = parts.concat();
            all.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for q in [0.05, 0.5, 0.95, 0.999] {
                assert_within_alpha(&ab_c, &all, q, "merged");
            }
            assert_eq!(ab_c.count(), all.len() as u64);
        });
    }

    #[test]
    #[should_panic(expected = "different accuracies")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }

    #[test]
    fn from_parts_roundtrips() {
        let mut s = QuantileSketch::default();
        for v in [0.0, 1.0, 250.0, 1e6, 3.5e9] {
            s.record(v);
        }
        let back = QuantileSketch::from_parts(
            s.alpha(),
            s.zero_count(),
            &s.bucket_entries(),
            s.sum(),
            s.min().unwrap(),
            s.max().unwrap(),
        );
        assert_eq!(back.count(), s.count());
        assert_eq!(back.bucket_entries(), s.bucket_entries());
        for q in [0.0, 0.5, 0.99] {
            assert_eq!(back.quantile(q), s.quantile(q));
        }
    }

    #[test]
    fn collapse_preserves_the_tail() {
        let mut s = QuantileSketch::default();
        s.max_buckets = 8;
        // 200 distinct magnitudes forces collapsing.
        for i in 1..200u32 {
            s.record((i as f64).exp2().min(1e300));
        }
        assert!(s.bucket_count() <= 8);
        assert!(s.collapsed() > 0);
        // The top quantile still lands near the true maximum.
        let p999 = s.quantile(0.999).unwrap();
        let max = s.max().unwrap();
        // The second-highest of 199 powers of two is max/2; allow the
        // bucket-midpoint slack on top of that.
        assert!(p999 >= max * 0.4, "tail lost: p999 {p999} max {max}");
    }
}
