//! Fixed-window rate (goodput) metering.

use crate::{timeseries::TimeSeries, NANOS_PER_SEC};

/// Accumulates byte counts and emits a rate sample per fixed window.
///
/// This is how the paper's goodput curves are produced: bytes delivered
/// to the application are counted, and every `window_ns` the meter emits
/// one `(time, bits_per_second)` point (e.g. 20 ms windows in Fig. 9).
///
/// # Examples
///
/// ```
/// // 1 ms windows; 125_000 bytes per window = 1 Gbps.
/// let mut m = tfc_metrics::RateMeter::new("flow0", 1_000_000);
/// m.add(0, 125_000);
/// m.flush(2_000_000);
/// let pts = m.series().points();
/// assert_eq!(pts[0].1, 1e9);
/// ```
#[derive(Debug, Clone)]
pub struct RateMeter {
    window_ns: u64,
    window_start: u64,
    bytes_in_window: u64,
    series: TimeSeries,
}

impl RateMeter {
    /// Creates a meter emitting one sample per `window_ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(name: impl Into<String>, window_ns: u64) -> Self {
        assert!(window_ns > 0, "zero window");
        Self {
            window_ns,
            window_start: 0,
            bytes_in_window: 0,
            series: TimeSeries::new(name),
        }
    }

    /// Records `bytes` delivered at time `t` (ns), closing any windows
    /// that ended before `t`.
    pub fn add(&mut self, t: u64, bytes: u64) {
        self.close_until(t);
        self.bytes_in_window += bytes;
    }

    /// Closes every window ending at or before `t`, emitting samples
    /// (including zero-rate windows, so gaps show up in the curve).
    pub fn flush(&mut self, t: u64) {
        self.close_until(t);
    }

    /// The emitted rate series in bits per second.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Mean rate over all emitted windows, in bits per second.
    pub fn mean_bps(&self) -> f64 {
        self.series.mean_value().unwrap_or(0.0)
    }

    fn close_until(&mut self, t: u64) {
        while t >= self.window_start + self.window_ns {
            let bps = self.bytes_in_window as f64 * 8.0 * NANOS_PER_SEC / self.window_ns as f64;
            self.series.push(self.window_start + self.window_ns, bps);
            self.window_start += self.window_ns;
            self.bytes_in_window = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_rate_per_window() {
        let mut m = RateMeter::new("f", 1_000_000);
        m.add(100, 125_000); // 1 Gbps worth in 1 ms
        m.add(1_500_000, 62_500); // 0.5 Gbps worth in the second window
        m.flush(2_000_000);
        let pts = m.series().points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 1e9).abs() < 1.0);
        assert!((pts[1].1 - 5e8).abs() < 1.0);
    }

    #[test]
    fn zero_windows_emitted() {
        let mut m = RateMeter::new("f", 1_000);
        m.flush(3_000);
        assert_eq!(m.series().len(), 3);
        assert_eq!(m.mean_bps(), 0.0);
    }

    #[test]
    fn late_add_closes_intermediate_windows() {
        let mut m = RateMeter::new("f", 1_000);
        m.add(0, 10);
        m.add(2_500, 10);
        m.flush(3_000);
        let pts = m.series().points();
        assert_eq!(pts.len(), 3);
        assert!(pts[1].1 == 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        RateMeter::new("f", 0);
    }
}
