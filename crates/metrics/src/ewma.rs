//! Exponentially weighted moving average.

/// An EWMA with history weight `alpha`.
///
/// The update rule is `v = alpha * v + (1 - alpha) * sample`, matching
/// the paper's token smoothing (Eq. 8, `alpha = 7/8`). Until the first
/// sample arrives the average is undefined.
///
/// # Examples
///
/// ```
/// let mut e = tfc_metrics::Ewma::new(0.5);
/// e.update(10.0);
/// assert_eq!(e.get(), Some(10.0));
/// e.update(20.0);
/// assert_eq!(e.get(), Some(15.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with the given history weight.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha out of range: {alpha}");
        Self { alpha, value: None }
    }

    /// Feeds a sample; the first sample initialises the average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(v) => self.alpha * v + (1.0 - self.alpha) * sample,
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `None` before the first sample.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Resets the average to uninitialised.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::{cases, vec_f64};
    use rng::Rng;

    #[test]
    fn first_sample_initialises() {
        let mut e = Ewma::new(0.875);
        assert_eq!(e.get(), None);
        e.update(7.0);
        assert_eq!(e.get(), Some(7.0));
    }

    #[test]
    fn paper_alpha_smoothing() {
        // alpha = 7/8 as in Eq. (8).
        let mut e = Ewma::new(7.0 / 8.0);
        e.update(8.0);
        let v = e.update(16.0);
        assert!((v - (8.0 * 7.0 / 8.0 + 16.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.update(1.0);
        e.reset();
        assert_eq!(e.get(), None);
    }

    #[test]
    #[should_panic]
    fn alpha_one_rejected() {
        Ewma::new(1.0);
    }

    #[test]
    fn stays_within_sample_hull() {
        cases(128, |_case, rng| {
            let alpha: f64 = rng.gen_range(0.0..0.999);
            let samples = vec_f64(rng, 1..50, -1e6..1e6);
            let mut e = Ewma::new(alpha);
            for &s in &samples {
                e.update(s);
            }
            let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let v = e.get().unwrap();
            assert!(
                v >= lo - 1e-6 && v <= hi + 1e-6,
                "ewma {v} outside [{lo}, {hi}] (alpha {alpha}, {samples:?})"
            );
        });
    }
}
