//! Empirical cumulative distribution functions.

/// An empirical CDF built from collected samples.
///
/// Used both for reporting (e.g. the measured `rtt_b` CDF of Fig. 6) and
/// for workload generation (sampling from a piecewise-linear CDF of flow
/// sizes, as in the benchmark of §6.1.2).
///
/// # Examples
///
/// ```
/// let cdf = tfc_metrics::Cdf::from_samples(&[1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct Cdf {
    /// Sorted sample values.
    values: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples. Non-finite samples are dropped.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut values: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("filtered non-finite"));
        Self { values }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of samples `<= x`, in `[0, 1]`. Returns 0 for an empty CDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let idx = self.values.partition_point(|&v| v <= x);
        idx as f64 / self.values.len() as f64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by closest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        assert!(!self.values.is_empty(), "quantile of empty CDF");
        let n = self.values.len();
        let rank = (q * n as f64).ceil() as usize;
        self.values[rank.saturating_sub(1).min(n - 1)]
    }

    /// Iterates the CDF as `(value, cumulative_fraction)` step points.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.values.len() as f64;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }

    /// Renders the CDF down-sampled to at most `max_points` step points,
    /// suitable for printing a figure series.
    pub fn sampled_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let pts: Vec<(f64, f64)> = self.points().collect();
        if pts.len() <= max_points || max_points == 0 {
            return pts;
        }
        let stride = pts.len().div_ceil(max_points);
        let mut out: Vec<(f64, f64)> = pts.iter().step_by(stride).copied().collect();
        if out.last() != pts.last() {
            out.push(*pts.last().expect("non-empty"));
        }
        out
    }
}

/// A piecewise-linear CDF specified by `(value, cumulative_probability)`
/// knots, used to *generate* samples (inverse-transform sampling).
///
/// The knot list must be strictly increasing in both coordinates and end
/// at probability 1.0.
#[derive(Debug, Clone)]
pub struct PiecewiseCdf {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseCdf {
    /// Creates a piecewise CDF from `(value, cum_prob)` knots.
    ///
    /// # Panics
    ///
    /// Panics if the knots are not monotone, empty, or do not end at 1.0.
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(!knots.is_empty(), "empty knot list");
        for w in knots.windows(2) {
            assert!(w[0].0 < w[1].0, "values must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "probabilities must be non-decreasing");
        }
        let last = knots.last().expect("non-empty");
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "final cumulative probability must be 1.0, got {}",
            last.1
        );
        Self { knots }
    }

    /// The `(value, cumulative_probability)` knots the CDF was built
    /// from (goodness-of-fit tests bin samples against these).
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Inverse CDF: maps a uniform `u` in `[0, 1)` to a value.
    pub fn inverse(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.knots[0];
        if u <= first.1 {
            return first.0;
        }
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return v1;
                }
                let f = (u - p0) / (p1 - p0);
                return v0 + f * (v1 - v0);
            }
        }
        self.knots.last().expect("non-empty").0
    }

    /// The mean of the distribution, by trapezoidal integration of the
    /// inverse CDF.
    pub fn mean(&self) -> f64 {
        // Integrate value dP across segments; within a segment the value
        // is linear in probability, so the average is the midpoint.
        let mut mean = self.knots[0].0 * self.knots[0].1;
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            mean += (v0 + v1) * 0.5 * (p1 - p0);
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::{cases, vec_f64};
    use rng::Rng;

    #[test]
    fn fraction_counts_duplicates() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(4.0), 1.0);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn quantile_closest_rank() {
        let cdf = Cdf::from_samples(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.25), 10.0);
        assert_eq!(cdf.quantile(0.5), 20.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
    }

    #[test]
    fn points_step_up_to_one() {
        let cdf = Cdf::from_samples(&[5.0, 1.0]);
        let pts: Vec<_> = cdf.points().collect();
        assert_eq!(pts, vec![(1.0, 0.5), (5.0, 1.0)]);
    }

    #[test]
    fn sampled_points_keeps_last() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cdf = Cdf::from_samples(&vals);
        let pts = cdf.sampled_points(10);
        assert!(pts.len() <= 11);
        assert_eq!(pts.last().copied(), Some((99.0, 1.0)));
    }

    #[test]
    fn piecewise_inverse_hits_knots() {
        let p = PiecewiseCdf::new(vec![(1.0, 0.1), (10.0, 0.5), (100.0, 1.0)]);
        assert_eq!(p.inverse(0.0), 1.0);
        assert_eq!(p.inverse(0.1), 1.0);
        assert_eq!(p.inverse(0.5), 10.0);
        assert_eq!(p.inverse(1.0), 100.0);
        let mid = p.inverse(0.3);
        assert!(mid > 1.0 && mid < 10.0);
    }

    #[test]
    fn piecewise_mean_uniform() {
        // Uniform on [0, 1]: mean 0.5.
        let p = PiecewiseCdf::new(vec![(0.0, 0.0), (1.0, 1.0)]);
        assert!((p.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn piecewise_rejects_nonmonotone() {
        PiecewiseCdf::new(vec![(5.0, 0.5), (1.0, 1.0)]);
    }

    #[test]
    fn inverse_is_monotone() {
        cases(256, |_case, rng| {
            let u1: f64 = rng.gen_range(0.0..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let p = PiecewiseCdf::new(vec![(1.0, 0.2), (50.0, 0.7), (200.0, 1.0)]);
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            let a = p.inverse(lo);
            let b = p.inverse(hi);
            assert!(a <= b + 1e-9, "inverse({lo})={a} > inverse({hi})={b}");
        });
    }

    #[test]
    fn empirical_fraction_monotone() {
        cases(128, |_case, rng| {
            let vals = vec_f64(rng, 1..100, -1e6..1e6);
            let x1: f64 = rng.gen_range(-1e6..1e6);
            let x2: f64 = rng.gen_range(-1e6..1e6);
            let cdf = Cdf::from_samples(&vals);
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            assert!(
                cdf.fraction_at_or_below(lo) <= cdf.fraction_at_or_below(hi),
                "fraction not monotone between {lo} and {hi} over {vals:?}"
            );
        });
    }
}
