//! Statistics substrate for the TFC reproduction.
//!
//! This crate is a leaf dependency shared by the simulator, the protocol
//! implementations, and the experiment harness. It provides:
//!
//! * exact percentile computation over collected samples ([`Sampler`]),
//! * empirical CDFs ([`Cdf`]),
//! * time series and fixed-window rate meters ([`TimeSeries`],
//!   [`RateMeter`]),
//! * exponentially weighted moving averages ([`Ewma`]),
//! * summary statistics ([`Summary`]),
//! * flow-completion-time bookkeeping with the paper's size bins
//!   ([`FctCollector`], [`SizeBin`]),
//! * logarithmic histograms for latency shapes ([`Histogram`]),
//! * mergeable streaming quantile sketches with bounded memory and a
//!   relative error guarantee ([`QuantileSketch`]).
//!
//! All times are `u64` nanoseconds and all derived statistics are `f64`;
//! this crate knows nothing about the network simulator.

pub mod cdf;
pub mod ewma;
pub mod fct;
pub mod histogram;
pub mod percentile;
pub mod rate;
pub mod sketch;
pub mod summary;
pub mod timeseries;

pub use cdf::{Cdf, PiecewiseCdf};
pub use ewma::Ewma;
pub use fct::{FctCollector, FctSummary, FlowRecord, SizeBin};
pub use histogram::Histogram;
pub use percentile::Sampler;
pub use rate::RateMeter;
pub use sketch::QuantileSketch;
pub use summary::{jain_index, Summary};
pub use timeseries::TimeSeries;

/// Nanoseconds per second, used across the crate for rate conversions.
pub const NANOS_PER_SEC: f64 = 1e9;
