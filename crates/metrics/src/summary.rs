//! Streaming summary statistics.

/// Streaming mean / min / max / variance without storing samples.
///
/// Uses Welford's online algorithm for numerically stable variance.
///
/// # Examples
///
/// ```
/// let mut s = tfc_metrics::Summary::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite values are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum sample; +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample; -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance; 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Jain's fairness index over a set of allocations: `(Σx)² / (n·Σx²)`.
///
/// 1.0 means perfectly equal shares; `1/n` means one flow has
/// everything. Values ≤ 0 are treated as zero allocations.
///
/// # Examples
///
/// ```
/// assert_eq!(tfc_metrics::jain_index(&[1.0, 1.0, 1.0]), 1.0);
/// assert!((tfc_metrics::jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let xs: Vec<f64> = values.iter().map(|&v| v.max(0.0)).collect();
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::{cases, vec_f64};

    #[test]
    fn empty_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn basic_stats() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 2.5);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn ignores_nan() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn jain_basics() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
        assert!((jain_index(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One hog out of four: (x)^2 / (4 x^2) = 0.25.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Negative treated as zero.
        assert!((jain_index(&[1.0, -5.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jain_bounded() {
        cases(128, |_case, rng| {
            let values = vec_f64(rng, 1..50, 0.0..1e9);
            let j = jain_index(&values);
            assert!(j >= 1.0 / values.len() as f64 - 1e-9, "jain {j} for {values:?}");
            assert!(j <= 1.0 + 1e-9, "jain {j} for {values:?}");
        });
    }

    #[test]
    fn merge_equals_sequential() {
        cases(128, |_case, rng| {
            let a = vec_f64(rng, 0..50, -1e6..1e6);
            let b = vec_f64(rng, 0..50, -1e6..1e6);
            let mut s1 = Summary::new();
            let mut s2 = Summary::new();
            let mut all = Summary::new();
            for &v in &a {
                s1.record(v);
                all.record(v);
            }
            for &v in &b {
                s2.record(v);
                all.record(v);
            }
            s1.merge(&s2);
            assert_eq!(s1.count(), all.count());
            assert!(
                (s1.mean() - all.mean()).abs() < 1e-6,
                "merged mean {} vs sequential {} ({a:?} + {b:?})",
                s1.mean(),
                all.mean()
            );
            assert!(
                (s1.variance() - all.variance()).abs() < 1e-3,
                "merged variance {} vs sequential {} ({a:?} + {b:?})",
                s1.variance(),
                all.variance()
            );
        });
    }
}
