//! Timestamped value traces.

/// A trace of `(time_ns, value)` points, e.g. a queue-length trace.
///
/// Points must be appended in non-decreasing time order, which the
/// simulator guarantees.
///
/// # Examples
///
/// ```
/// let mut ts = tfc_metrics::TimeSeries::new("queue_len");
/// ts.push(0, 0.0);
/// ts.push(1_000, 1500.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.max_value(), Some(1500.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last appended timestamp.
    pub fn push(&mut self, t: u64, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time went backwards: {t} < {last}");
        }
        self.points.push((t, v));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Largest value, or `None` if empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).reduce(f64::max)
    }

    /// Mean value (unweighted by time), or `None` if empty.
    pub fn mean_value(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Time-weighted mean over the trace duration, treating the series as
    /// a step function; `None` when fewer than two points exist.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0) as f64;
            area += w[0].1 * dt;
            span += dt;
        }
        if span == 0.0 {
            return self.mean_value();
        }
        Some(area / span)
    }

    /// Restricts to points with `t` in `[start, end)`.
    pub fn window(&self, start: u64, end: u64) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points
            .iter()
            .copied()
            .filter(move |&(t, _)| t >= start && t < end)
    }

    /// Down-samples to at most `max_points` for printing.
    pub fn sampled(&self, max_points: usize) -> Vec<(u64, f64)> {
        if self.points.len() <= max_points || max_points == 0 {
            return self.points.clone();
        }
        let stride = self.points.len().div_ceil(max_points);
        let mut out: Vec<(u64, f64)> = self.points.iter().step_by(stride).copied().collect();
        if out.last() != self.points.last() {
            out.push(*self.points.last().expect("non-empty"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut ts = TimeSeries::new("q");
        ts.push(0, 1.0);
        ts.push(10, 3.0);
        ts.push(10, 2.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max_value(), Some(3.0));
        assert_eq!(ts.mean_value(), Some(2.0));
    }

    #[test]
    #[should_panic]
    fn rejects_time_reversal() {
        let mut ts = TimeSeries::new("q");
        ts.push(10, 1.0);
        ts.push(5, 1.0);
    }

    #[test]
    fn time_weighted_mean_step() {
        let mut ts = TimeSeries::new("q");
        ts.push(0, 10.0);
        ts.push(100, 0.0);
        ts.push(200, 0.0);
        // 10 for half the span, 0 for the other half.
        assert_eq!(ts.time_weighted_mean(), Some(5.0));
    }

    #[test]
    fn window_filters() {
        let mut ts = TimeSeries::new("q");
        for t in 0..10 {
            ts.push(t, t as f64);
        }
        let w: Vec<_> = ts.window(3, 6).collect();
        assert_eq!(w, vec![(3, 3.0), (4, 4.0), (5, 5.0)]);
    }

    #[test]
    fn sampled_bounds_size() {
        let mut ts = TimeSeries::new("q");
        for t in 0..1000 {
            ts.push(t, 0.0);
        }
        let s = ts.sampled(50);
        assert!(s.len() <= 51);
        assert_eq!(s.last().copied(), Some((999, 0.0)));
    }
}
