//! Flow-completion-time bookkeeping.

use crate::percentile::Sampler;
use crate::sketch::QuantileSketch;

/// Flow size bins used by the paper's background-flow FCT figures
/// (Fig. 13b and Fig. 16b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeBin {
    /// `< 1 KB`
    Under1K,
    /// `1 KB – 10 KB`
    K1To10,
    /// `10 KB – 100 KB`
    K10To100,
    /// `100 KB – 1 MB`
    K100To1M,
    /// `1 MB – 10 MB`
    M1To10,
    /// `> 10 MB`
    Over10M,
}

impl SizeBin {
    /// All bins, in ascending size order.
    pub const ALL: [SizeBin; 6] = [
        SizeBin::Under1K,
        SizeBin::K1To10,
        SizeBin::K10To100,
        SizeBin::K100To1M,
        SizeBin::M1To10,
        SizeBin::Over10M,
    ];

    /// Classifies a flow of `bytes` into its bin.
    pub fn of(bytes: u64) -> SizeBin {
        const KB: u64 = 1_000;
        const MB: u64 = 1_000_000;
        match bytes {
            b if b < KB => SizeBin::Under1K,
            b if b < 10 * KB => SizeBin::K1To10,
            b if b < 100 * KB => SizeBin::K10To100,
            b if b < MB => SizeBin::K100To1M,
            b if b < 10 * MB => SizeBin::M1To10,
            _ => SizeBin::Over10M,
        }
    }

    /// The paper's label for the bin.
    pub fn label(&self) -> &'static str {
        match self {
            SizeBin::Under1K => "<1KB",
            SizeBin::K1To10 => "1-10KB",
            SizeBin::K10To100 => "10KB-100KB",
            SizeBin::K100To1M => "100KB-1MB",
            SizeBin::M1To10 => "1-10MB",
            SizeBin::Over10M => ">10MB",
        }
    }
}

/// One completed flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    /// Application bytes transferred.
    pub bytes: u64,
    /// Time the application requested the transfer (ns).
    pub start_ns: u64,
    /// Time the receiver held the full byte stream (ns).
    pub end_ns: u64,
}

impl FlowRecord {
    /// Flow completion time in nanoseconds.
    pub fn fct_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Flow completion time in microseconds.
    pub fn fct_us(&self) -> f64 {
        self.fct_ns() as f64 / 1_000.0
    }
}

/// FCT percentile summary for one class of flows, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FctSummary {
    /// Number of completed flows summarised.
    pub count: usize,
    /// Mean FCT (µs).
    pub mean_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// 99.9th percentile (µs).
    pub p999_us: f64,
    /// 99.99th percentile (µs).
    pub p9999_us: f64,
}

impl FctSummary {
    /// Builds the summary from a streaming sketch of FCT samples in
    /// *nanoseconds* (the unit the retirement pipeline records), or
    /// `None` if the sketch is empty.
    ///
    /// Experiments that retire flows into sketches keep their output
    /// schema: the percentiles come from the sketch (within its
    /// relative-error bound `alpha`) instead of the exact record
    /// vector, but the summary shape is identical.
    pub fn from_sketch(s: &QuantileSketch) -> Option<FctSummary> {
        if s.is_empty() {
            return None;
        }
        let us = |q: f64| s.quantile(q).expect("non-empty sketch") / 1_000.0;
        Some(FctSummary {
            count: s.count() as usize,
            mean_us: s.mean().expect("non-empty sketch") / 1_000.0,
            p95_us: us(0.95),
            p99_us: us(0.99),
            p999_us: us(0.999),
            p9999_us: us(0.9999),
        })
    }
}

/// Collects [`FlowRecord`]s and summarises them the way the paper's FCT
/// figures do: percentiles overall and per size bin.
///
/// # Examples
///
/// ```
/// use tfc_metrics::{FctCollector, FlowRecord};
/// let mut c = FctCollector::new();
/// c.record(FlowRecord { bytes: 2_000, start_ns: 0, end_ns: 1_000_000 });
/// let s = c.summary().unwrap();
/// assert_eq!(s.count, 1);
/// assert_eq!(s.mean_us, 1_000.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FctCollector {
    records: Vec<FlowRecord>,
}

impl FctCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed flow.
    pub fn record(&mut self, r: FlowRecord) {
        self.records.push(r);
    }

    /// Number of completed flows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no flows completed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Percentile summary over all flows, or `None` if empty.
    pub fn summary(&self) -> Option<FctSummary> {
        Self::summarise(self.records.iter())
    }

    /// Percentile summary over flows in one size bin.
    pub fn summary_for_bin(&self, bin: SizeBin) -> Option<FctSummary> {
        Self::summarise(self.records.iter().filter(|r| SizeBin::of(r.bytes) == bin))
    }

    /// `(bin, summary)` for every non-empty bin, ascending.
    pub fn per_bin(&self) -> Vec<(SizeBin, FctSummary)> {
        SizeBin::ALL
            .iter()
            .filter_map(|&b| self.summary_for_bin(b).map(|s| (b, s)))
            .collect()
    }

    fn summarise<'a>(records: impl Iterator<Item = &'a FlowRecord>) -> Option<FctSummary> {
        let mut s = Sampler::new();
        for r in records {
            s.record(r.fct_us());
        }
        if s.is_empty() {
            return None;
        }
        Some(FctSummary {
            count: s.len(),
            mean_us: s.mean().expect("non-empty"),
            p95_us: s.percentile(95.0).expect("non-empty"),
            p99_us: s.percentile(99.0).expect("non-empty"),
            p999_us: s.percentile(99.9).expect("non-empty"),
            p9999_us: s.percentile(99.99).expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_bins_boundaries() {
        assert_eq!(SizeBin::of(999), SizeBin::Under1K);
        assert_eq!(SizeBin::of(1_000), SizeBin::K1To10);
        assert_eq!(SizeBin::of(9_999), SizeBin::K1To10);
        assert_eq!(SizeBin::of(10_000), SizeBin::K10To100);
        assert_eq!(SizeBin::of(100_000), SizeBin::K100To1M);
        assert_eq!(SizeBin::of(1_000_000), SizeBin::M1To10);
        assert_eq!(SizeBin::of(10_000_000), SizeBin::Over10M);
    }

    #[test]
    fn fct_math() {
        let r = FlowRecord {
            bytes: 1,
            start_ns: 500,
            end_ns: 2_500,
        };
        assert_eq!(r.fct_ns(), 2_000);
        assert_eq!(r.fct_us(), 2.0);
    }

    #[test]
    fn empty_summary_is_none() {
        let c = FctCollector::new();
        assert!(c.summary().is_none());
        assert!(c.per_bin().is_empty());
    }

    #[test]
    fn per_bin_splits_flows() {
        let mut c = FctCollector::new();
        c.record(FlowRecord {
            bytes: 500,
            start_ns: 0,
            end_ns: 1_000,
        });
        c.record(FlowRecord {
            bytes: 5_000,
            start_ns: 0,
            end_ns: 9_000,
        });
        let bins = c.per_bin();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].0, SizeBin::Under1K);
        assert_eq!(bins[1].0, SizeBin::K1To10);
        assert_eq!(bins[0].1.count, 1);
    }

    /// `from_sketch` must agree with the exact collector within the
    /// sketch's relative-error bound on every reported percentile.
    #[test]
    fn from_sketch_matches_exact_summary_within_alpha() {
        let alpha = 0.01;
        let mut exact = FctCollector::new();
        let mut sketch = QuantileSketch::new(alpha);
        // Heavy-tailed FCTs: i^2 microseconds over 10k flows.
        for i in 1..=10_000u64 {
            let fct_ns = i * i * 1_000;
            exact.record(FlowRecord {
                bytes: 1_000,
                start_ns: 0,
                end_ns: fct_ns,
            });
            sketch.record(fct_ns as f64);
        }
        let a = exact.summary().unwrap();
        let b = FctSummary::from_sketch(&sketch).unwrap();
        assert_eq!(a.count, b.count);
        let close = |x: f64, y: f64| (x - y).abs() / y <= 2.0 * alpha;
        assert!(close(b.mean_us, a.mean_us), "mean {} vs {}", b.mean_us, a.mean_us);
        assert!(close(b.p95_us, a.p95_us), "p95 {} vs {}", b.p95_us, a.p95_us);
        assert!(close(b.p99_us, a.p99_us), "p99 {} vs {}", b.p99_us, a.p99_us);
        assert!(close(b.p999_us, a.p999_us), "p999 {} vs {}", b.p999_us, a.p999_us);
        assert!(close(b.p9999_us, a.p9999_us), "p9999 {} vs {}", b.p9999_us, a.p9999_us);
        assert!(FctSummary::from_sketch(&QuantileSketch::new(alpha)).is_none());
    }

    #[test]
    fn percentiles_ordered() {
        let mut c = FctCollector::new();
        for i in 1..=1000u64 {
            c.record(FlowRecord {
                bytes: 100,
                start_ns: 0,
                end_ns: i * 1_000,
            });
        }
        let s = c.summary().unwrap();
        assert!(s.mean_us <= s.p95_us);
        assert!(s.p95_us <= s.p99_us);
        assert!(s.p99_us <= s.p999_us);
        assert!(s.p999_us <= s.p9999_us);
    }
}
