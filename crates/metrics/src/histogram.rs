//! Logarithmic histograms for latency-style data.

/// A base-2 logarithmic histogram over positive values.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` of the chosen unit; values below
/// 1 land in bucket 0. Suited to latency distributions spanning many
/// orders of magnitude (µs RTTs next to 200 ms RTO events), where an
/// exact [`crate::Sampler`] would be used for percentiles and this for
/// compact shape reporting.
///
/// # Examples
///
/// ```
/// let mut h = tfc_metrics::Histogram::new();
/// h.record(3.0); // bucket 1: [2, 4)
/// h.record(3.5);
/// h.record(100.0); // bucket 6: [64, 128)
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(1), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a value; non-finite or negative values are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        let idx = Self::bucket_of(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(v: f64) -> usize {
        if v < 1.0 {
            0
        } else {
            v.log2().floor() as usize
        }
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_low(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            (1u64 << i.min(62)) as f64
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Count in bucket `i` (0 for untouched buckets).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Iterates non-empty buckets as `(low_bound, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_low(i), c))
    }

    /// Approximate quantile by bucket interpolation (`0.0 ..= 1.0`).
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = Self::bucket_low(i);
                let hi = if i == 0 { 1.0 } else { lo * 2.0 };
                let frac = (target - seen) as f64 / c as f64;
                return Some(lo + (hi - lo) * frac);
            }
            seen += c;
        }
        Some(Self::bucket_low(self.buckets.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::{cases, vec_f64};
    use rng::Rng;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(0.9), 0);
        assert_eq!(Histogram::bucket_of(1.0), 0);
        assert_eq!(Histogram::bucket_of(2.0), 1);
        assert_eq!(Histogram::bucket_of(1023.0), 9);
        assert_eq!(Histogram::bucket_of(1024.0), 10);
        assert_eq!(Histogram::bucket_low(0), 0.0);
        assert_eq!(Histogram::bucket_low(10), 1024.0);
    }

    #[test]
    fn counts_and_mean() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 2);
        let nonempty: Vec<_> = h.buckets().collect();
        assert_eq!(nonempty, vec![(0.0, 1), (2.0, 2)]);
    }

    #[test]
    fn ignores_bad_values() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_brackets_value() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(10.0); // bucket 3: [8, 16)
        }
        let med = h.quantile(0.5).unwrap();
        assert!((8.0..=16.0).contains(&med), "median {med}");
    }

    #[test]
    fn quantile_is_monotone() {
        cases(128, |_case, rng| {
            let vals = vec_f64(rng, 1..200, 0.0..1e6);
            let q1: f64 = rng.gen_range(0.0..1.0);
            let q2: f64 = rng.gen_range(0.0..1.0);
            let mut h = Histogram::new();
            for &v in &vals {
                h.record(v);
            }
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let a = h.quantile(lo).unwrap();
            let b = h.quantile(hi).unwrap();
            assert!(a <= b + 1e-9, "q{lo}={a} > q{hi}={b} over {vals:?}");
        });
    }

    #[test]
    fn value_lands_in_its_bucket() {
        cases(512, |_case, rng| {
            let v: f64 = rng.gen_range(0.0..1e12);
            let i = Histogram::bucket_of(v);
            let lo = Histogram::bucket_low(i);
            assert!(v >= lo, "{v} below bucket {i} low {lo}");
            if i > 0 {
                assert!(v < lo * 2.0, "{v} above bucket {i} high {}", lo * 2.0);
            }
        });
    }
}
