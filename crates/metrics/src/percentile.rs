//! Exact percentile computation over collected samples.

/// Collects `f64` samples and answers exact percentile queries.
///
/// Percentiles use linear interpolation between closest ranks, matching
/// the convention of numpy's `percentile(..., interpolation="linear")`.
/// Samples are sorted lazily and the sort result is cached until the next
/// insertion.
///
/// # Examples
///
/// ```
/// let mut s = tfc_metrics::Sampler::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.percentile(50.0), Some(2.5));
/// assert_eq!(s.percentile(100.0), Some(4.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sampler {
    samples: Vec<f64>,
    sorted: bool,
}

impl Sampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sampler with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Records one sample. Non-finite values are ignored.
    pub fn record(&mut self, v: f64) {
        if v.is_finite() {
            self.samples.push(v);
            self.sorted = false;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// The `p`-th percentile (`0.0 ..= 100.0`), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return Some(self.samples[0]);
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Convenience: the median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Read-only view of the samples in insertion order is not preserved;
    /// this returns the (possibly sorted) backing storage.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another sampler's samples into this one.
    pub fn merge(&mut self, other: &Sampler) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
            self.sorted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::props::{cases, vec_f64};
    use rng::Rng;

    #[test]
    fn empty_sampler_returns_none() {
        let mut s = Sampler::new();
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = Sampler::new();
        s.record(42.0);
        assert_eq!(s.percentile(0.0), Some(42.0));
        assert_eq!(s.percentile(50.0), Some(42.0));
        assert_eq!(s.percentile(100.0), Some(42.0));
    }

    #[test]
    fn interpolates_between_ranks() {
        let mut s = Sampler::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            s.record(v);
        }
        assert_eq!(s.percentile(50.0), Some(25.0));
        assert_eq!(s.percentile(25.0), Some(17.5));
    }

    #[test]
    fn mean_min_max() {
        let mut s = Sampler::new();
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = Sampler::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Sampler::new();
        a.record(1.0);
        let mut b = Sampler::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), Some(2.0));
    }

    #[test]
    #[should_panic]
    fn percentile_out_of_range_panics() {
        let mut s = Sampler::new();
        s.record(1.0);
        s.percentile(101.0);
    }

    #[test]
    fn percentile_is_monotone() {
        cases(128, |_case, rng| {
            let vals = vec_f64(rng, 1..200, -1e9..1e9);
            let p1: f64 = rng.gen_range(0.0..100.0);
            let p2: f64 = rng.gen_range(0.0..100.0);
            let mut s = Sampler::new();
            for &v in &vals {
                s.record(v);
            }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = s.percentile(lo).unwrap();
            let b = s.percentile(hi).unwrap();
            assert!(a <= b + 1e-9, "p{lo}={a} > p{hi}={b} over {vals:?}");
        });
    }

    #[test]
    fn percentile_bounded_by_min_max() {
        cases(128, |_case, rng| {
            let vals = vec_f64(rng, 1..200, -1e9..1e9);
            let p: f64 = rng.gen_range(0.0..100.0);
            let mut s = Sampler::new();
            for &v in &vals {
                s.record(v);
            }
            let v = s.percentile(p).unwrap();
            assert!(v >= s.min().unwrap() - 1e-9, "p{p}={v} below min, {vals:?}");
            assert!(v <= s.max().unwrap() + 1e-9, "p{p}={v} above max, {vals:?}");
        });
    }
}
