//! Fig. 6 — accuracy of measuring `rtt_b`.
//!
//! Two hosts send long-lived TFC flows to a third; the bottleneck port's
//! token engine measures `rtt_m` every slot, and — like the paper — we
//! sample "`rtt_b`" as the minimum `rtt_m` per wall-clock window.
//! Concurrently, a reference flow keeps exactly one full-size packet per
//! round trip in flight and records its sender-side RTT samples (the
//! paper's "referenced rtt"). With random host processing delay enabled,
//! the measured `rtt_b` CDF sits a few microseconds below the referenced
//! RTT — the min filter strips the processing jitter — exactly as in the
//! paper (59 µs vs 65 µs on their testbed).

use metrics::Cdf;
use simnet::app::{Application, FlowEvent};
use simnet::endpoint::FlowSpec;
use simnet::packet::{FlowId, NodeId};
use simnet::sim::{SimApi, SimConfig, Simulator};
use simnet::topology::testbed;
use simnet::units::{Dur, Time};
use telemetry::TelemetryConfig;
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};

use crate::util::{trace_points, window_minima};

/// Fig. 6 parameters.
#[derive(Debug, Clone)]
pub struct RttbConfig {
    /// Run length.
    pub duration: Dur,
    /// Window over which each `rtt_b` sample takes the minimum `rtt_m`
    /// (the paper uses 1 s; scaled down by default to keep runs fast).
    pub sample_window: Dur,
    /// Host processing jitter range.
    pub jitter: (Dur, Dur),
    /// Propagation delay per link.
    pub link_delay: Dur,
    /// RNG seed.
    pub seed: u64,
    /// Structured telemetry (event log, gauges, export; off by default).
    pub telemetry: TelemetryConfig,
}

impl Default for RttbConfig {
    fn default() -> Self {
        Self {
            duration: Dur::millis(500),
            sample_window: Dur::millis(10),
            jitter: (Dur::micros(2), Dur::micros(8)),
            link_delay: Dur::nanos(500),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }
}

/// Fig. 6 output: the two CDFs (microseconds).
#[derive(Debug)]
pub struct RttbResult {
    /// Measured `rtt_b` samples, one per window.
    pub measured_rttb: Cdf,
    /// Referenced RTT samples from the 1-packet-per-RTT flow.
    pub reference_rtt: Cdf,
}

/// Load flows plus a concurrent 1-packet-per-RTT reference ping.
struct LoadAndPing {
    load_pairs: Vec<(NodeId, NodeId)>,
    ping: (NodeId, NodeId),
    chunk: u64,
    load_flows: Vec<FlowId>,
    ping_flow: Option<FlowId>,
    backlog: std::collections::BTreeMap<FlowId, i64>,
}

impl Application for LoadAndPing {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for &(src, dst) in &self.load_pairs.clone() {
            let flow = api.start_flow(FlowSpec {
                src,
                dst,
                bytes: None,
                weight: 1,
            });
            api.watch_delivery(flow);
            api.push_data(flow, self.chunk);
            self.backlog.insert(flow, self.chunk as i64);
            self.load_flows.push(flow);
        }
        let (src, dst) = self.ping;
        let ping = api.start_flow(FlowSpec {
            src,
            dst,
            bytes: None,
            weight: 1,
        });
        api.watch_delivery(ping);
        api.watch_rtt(ping);
        api.push_data(ping, simnet::MSS);
        self.ping_flow = Some(ping);
    }

    fn on_flow_event(&mut self, ev: FlowEvent, api: &mut SimApi<'_>) {
        let FlowEvent::Delivered { flow, bytes } = ev else {
            return;
        };
        if Some(flow) == self.ping_flow {
            // Next ping only once the previous one fully arrived.
            api.push_data(flow, simnet::MSS);
            return;
        }
        let backlog = self.backlog.entry(flow).or_insert(0);
        *backlog -= bytes as i64;
        if *backlog < self.chunk as i64 {
            api.push_data(flow, self.chunk);
            *backlog += self.chunk as i64;
        }
    }
}

/// Runs the Fig. 6 experiment.
pub fn run(cfg: &RttbConfig) -> RttbResult {
    // H1 and H2 send two long flows each to H3 (all on leaf NF1); the
    // engine at NF1's port toward H3 publishes rtt_m per slot. H1 also
    // pings H3 with one MSS per round trip.
    let (t, hosts, switches) = testbed(cfg.link_delay);
    let tfc_cfg = TfcSwitchConfig {
        trace: true,
        ..Default::default()
    };
    let net = t.build(TfcSwitchPolicy::factory(tfc_cfg));
    let horizon = cfg.duration.as_nanos();
    let app = LoadAndPing {
        load_pairs: vec![
            (hosts[0], hosts[2]),
            (hosts[1], hosts[2]),
            (hosts[0], hosts[2]),
            (hosts[1], hosts[2]),
        ],
        ping: (hosts[0], hosts[2]),
        chunk: 128 * 1024,
        load_flows: Vec::new(),
        ping_flow: None,
        backlog: Default::default(),
    };
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        app,
        SimConfig {
            seed: cfg.seed,
            end: Some(Time(horizon)),
            host_jitter: Some(cfg.jitter),
            packet_log: 0,
            telemetry: cfg.telemetry.clone(),
            ..Default::default()
        },
    );
    sim.run();
    crate::artifacts::maybe_export(sim.core(), "testbed(3 hosts, 2 switches)", format!("{cfg:?}"));

    let nf1 = switches[1];
    let port = sim.core().route_of(nf1, hosts[2]).expect("route to H3");
    let key = format!("tfc.s{}.p{}.rttm_us", nf1.0, port);
    let rttm = trace_points(sim.core(), &key);
    assert!(
        !rttm.is_empty(),
        "no rtt_m trace recorded; TFC engine inactive?"
    );
    let measured = window_minima(&rttm, cfg.sample_window);

    let ping = sim.app().ping_flow.expect("ping flow started");
    let reference: Vec<f64> = sim
        .core()
        .flow(ping)
        .rtt_samples
        .iter()
        .map(|&(_, rtt)| rtt as f64 / 1_000.0)
        .collect();
    assert!(!reference.is_empty(), "ping flow produced no RTT samples");

    RttbResult {
        measured_rttb: Cdf::from_samples(&measured),
        reference_rtt: Cdf::from_samples(&reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rttb_sits_below_reference() {
        let cfg = RttbConfig {
            duration: Dur::millis(80),
            sample_window: Dur::millis(4),
            ..Default::default()
        };
        let r = run(&cfg);
        assert!(r.measured_rttb.len() >= 10);
        assert!(r.reference_rtt.len() >= 50);
        let measured_med = r.measured_rttb.quantile(0.5);
        let ref_med = r.reference_rtt.quantile(0.5);
        // The min filter strips processing jitter: measured below the
        // referenced median, but in the same ballpark (paper: 59 vs 65).
        assert!(
            measured_med < ref_med,
            "measured {measured_med} vs reference {ref_med}"
        );
        assert!(measured_med > ref_med * 0.4);
    }
}
