//! Fig. 14 — impact of the target utilisation `rho0`.
//!
//! Hosts H1–H5 each run one continuous TFC flow to H6; `rho0` sweeps
//! from 0.90 to 1.00. Goodput at the receiver tracks `rho0` (the
//! remaining bandwidth pays for headers), and the bottleneck queue stays
//! around a packet until `rho0` approaches 1.0, where the vanishing
//! drain margin lets backlog accumulate.

use simnet::sim::{SimConfig, Simulator};
use simnet::topology::testbed;
use simnet::units::{Dur, Time};
use telemetry::TelemetryConfig;
use workloads::{OnOffApp, OnOffFlow};

use crate::proto::{Proto, ProtoConfig};
use crate::util::{mean_of, sample_queue, trace_points};

/// Fig. 14 parameters.
#[derive(Debug, Clone)]
pub struct RhoConfig {
    /// `rho0` values to sweep (paper: 0.90 ..= 1.00).
    pub rho0_values: Vec<f64>,
    /// Run length per point.
    pub duration: Dur,
    /// Per-link propagation delay.
    pub link_delay: Dur,
    /// RNG seed.
    pub seed: u64,
    /// Structured telemetry; an export name gets the point's `rho0`
    /// appended so sweep points land in distinct directories.
    pub telemetry: TelemetryConfig,
}

impl Default for RhoConfig {
    fn default() -> Self {
        Self {
            rho0_values: vec![0.90, 0.92, 0.94, 0.96, 0.98, 1.00],
            duration: Dur::millis(200),
            link_delay: Dur::nanos(500),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct RhoPoint {
    /// The configured target utilisation.
    pub rho0: f64,
    /// Receiver goodput (bits/s).
    pub goodput_bps: f64,
    /// Mean sampled queue at the bottleneck (bytes).
    pub avg_queue_bytes: f64,
    /// Peak queue (bytes).
    pub max_queue_bytes: u64,
}

/// Runs the Fig. 14 sweep.
pub fn run(cfg: &RhoConfig) -> Vec<RhoPoint> {
    cfg.rho0_values
        .iter()
        .map(|&rho0| run_point(cfg, rho0))
        .collect()
}

fn run_point(cfg: &RhoConfig, rho0: f64) -> RhoPoint {
    let (t, hosts, switches) = testbed(cfg.link_delay);
    let mut proto_cfg = ProtoConfig::default();
    proto_cfg.tfc_switch.rho0 = rho0;
    let net = proto_cfg.build_net(Proto::Tfc, t);
    let horizon = cfg.duration.as_nanos();
    let h6 = hosts[5];
    // H1..H5 each send one continuous flow to H6.
    let flows: Vec<OnOffFlow> = hosts[..5]
        .iter()
        .map(|&src| OnOffFlow {
            src,
            dst: h6,
            active: vec![(0, horizon)],
        })
        .collect();
    let app = OnOffApp::new(flows, 128 * 1024);
    let mut telemetry = cfg.telemetry.clone();
    if let Some(name) = &mut telemetry.export {
        *name = format!("{name}-rho{rho0}");
    }
    let mut sim = Simulator::new(
        net,
        proto_cfg.stack(Proto::Tfc),
        app,
        SimConfig {
            seed: cfg.seed,
            end: Some(Time(horizon)),
            host_jitter: None,
            packet_log: 0,
            telemetry,
            ..Default::default()
        },
    );
    let nf2 = switches[2];
    let port = sim.core().route_of(nf2, h6).expect("route to H6");
    sample_queue(sim.core_mut(), nf2, port, Dur::millis(1), "queue");
    sim.run();
    crate::artifacts::maybe_export(
        sim.core(),
        "testbed(6 hosts, 3 switches)",
        format!("rho0={rho0} {cfg:?}"),
    );

    // Receiver goodput: total delivered over the run (skip nothing; the
    // ramp-up is microseconds against a multi-ms run).
    let delivered: u64 = sim.core().flows().map(|(_, st)| st.delivered).sum();
    let goodput_bps = delivered as f64 * 8.0 / cfg.duration.as_secs_f64();
    let queue = trace_points(sim.core(), "queue");
    // Skip the startup transient for the queue average.
    let late: Vec<(u64, f64)> = queue
        .iter()
        .copied()
        .filter(|&(t, _)| t > horizon / 4)
        .collect();
    let max_q = sim.core().port_stats(nf2, port).max_queue_bytes;
    RhoPoint {
        rho0,
        goodput_bps,
        avg_queue_bytes: mean_of(&late),
        max_queue_bytes: max_q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_tracks_rho0_and_queue_grows_at_one() {
        let cfg = RhoConfig {
            rho0_values: vec![0.90, 0.97, 1.00],
            duration: Dur::millis(120),
            ..Default::default()
        };
        let pts = run(&cfg);
        assert_eq!(pts.len(), 3);
        // Goodput is monotone in rho0 and lands in the paper's band
        // (880–940 Mbps across the sweep).
        assert!(pts[0].goodput_bps < pts[2].goodput_bps);
        for p in &pts {
            assert!(
                p.goodput_bps > 0.8e9 && p.goodput_bps < 1.0e9,
                "rho0={}: goodput {:.0} Mbps",
                p.rho0,
                p.goodput_bps / 1e6
            );
        }
        // Queue at rho0=1.0 exceeds the queue at 0.90.
        assert!(
            pts[2].avg_queue_bytes > pts[0].avg_queue_bytes,
            "queue at rho0=1.0 ({:.0}) should exceed rho0=0.9 ({:.0})",
            pts[2].avg_queue_bytes,
            pts[0].avg_queue_bytes
        );
    }
}
