//! Fig. 11 — work conservation under multiple bottlenecks.
//!
//! Topology of Fig. 5: `h1 – S1 – S2 – {h3, h4}`, `h2 – S2`. Host 1
//! sends `n1 = 8` flows to h4 and `n2 = 2` flows to h3; host 2 sends
//! `n3 = 2` flows to h3. Two bottlenecks form: h1's uplink (managed at
//! S1's port toward S2) and S2's downlink to h3. The `n2` flows are
//! limited by the first bottleneck, so without token adjustment S2's
//! downlink would idle; TFC's Eq. 7 boosts S2's token until the `n3`
//! flows absorb the slack.

use simnet::sim::{SimConfig, Simulator};
use simnet::topology::multi_bottleneck;
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::TelemetryConfig;
use workloads::{OnOffApp, OnOffFlow};

use crate::proto::{Proto, ProtoConfig};
use crate::util::{mean_of, sample_queue, sum_series, trace_points};

/// Fig. 11 parameters.
#[derive(Debug, Clone)]
pub struct WorkConservingConfig {
    /// Flows h1→h4 (paper: 8).
    pub n1: usize,
    /// Flows h1→h3 (paper: 2).
    pub n2: usize,
    /// Flows h2→h3 (paper: 2).
    pub n3: usize,
    /// Run length (paper: 20 s; scaled by default).
    pub duration: Dur,
    /// Goodput meter window.
    pub meter_window: Dur,
    /// Whether TFC token adjustment is enabled (ablation switch).
    pub token_adjustment: bool,
    /// Per-link propagation delay. The default (20 µs, as in §6.2.2)
    /// puts the per-flow window above one MSS, the regime where the
    /// work-conserving problem manifests; at tiny RTTs the sub-MSS delay
    /// arbiter paces all flows at line rate and masks it.
    pub link_delay: Dur,
    /// RNG seed.
    pub seed: u64,
    /// Structured telemetry (event log, gauges, export; off by default).
    pub telemetry: TelemetryConfig,
}

impl Default for WorkConservingConfig {
    fn default() -> Self {
        Self {
            n1: 8,
            n2: 2,
            n3: 2,
            duration: Dur::millis(400),
            meter_window: Dur::millis(10),
            token_adjustment: true,
            link_delay: Dur::micros(20),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }
}

/// Fig. 11 output.
#[derive(Debug)]
pub struct WorkConservingResult {
    /// Aggregate goodput through bottleneck 1 (h1's flows), `(t, bps)`.
    pub s1_goodput: Vec<(u64, f64)>,
    /// Aggregate goodput through bottleneck 2 (flows into h3), `(t, bps)`.
    pub s2_goodput: Vec<(u64, f64)>,
    /// Queue trace at S1's port toward S2.
    pub s1_queue: Vec<(u64, f64)>,
    /// Queue trace at S2's port toward h3.
    pub s2_queue: Vec<(u64, f64)>,
    /// Steady-state mean goodput (bits/s) at the two bottlenecks.
    pub s1_mean_bps: f64,
    /// Steady-state mean goodput (bits/s) at bottleneck 2.
    pub s2_mean_bps: f64,
    /// Total drops across both switches.
    pub drops: u64,
}

/// Runs the Fig. 11 experiment (TFC; the ablation switch allows
/// demonstrating the non-work-conserving failure mode).
pub fn run(cfg: &WorkConservingConfig) -> WorkConservingResult {
    let (t, hosts, switches) = multi_bottleneck(Bandwidth::gbps(1), cfg.link_delay);
    let mut proto_cfg = ProtoConfig::default();
    proto_cfg.tfc_switch.token_adjustment = cfg.token_adjustment;
    let net = proto_cfg.build_net(Proto::Tfc, t);

    let horizon = cfg.duration.as_nanos();
    let (h1, h2, h3, h4) = (hosts[0], hosts[1], hosts[2], hosts[3]);
    let mut flows = Vec::new();
    for _ in 0..cfg.n1 {
        flows.push(OnOffFlow {
            src: h1,
            dst: h4,
            active: vec![(0, horizon)],
        });
    }
    for _ in 0..cfg.n2 {
        flows.push(OnOffFlow {
            src: h1,
            dst: h3,
            active: vec![(0, horizon)],
        });
    }
    for _ in 0..cfg.n3 {
        flows.push(OnOffFlow {
            src: h2,
            dst: h3,
            active: vec![(0, horizon)],
        });
    }
    let app = OnOffApp::new(flows, 128 * 1024).with_meters(cfg.meter_window);
    let mut sim = Simulator::new(
        net,
        proto_cfg.stack(Proto::Tfc),
        app,
        SimConfig {
            seed: cfg.seed,
            end: Some(Time(horizon)),
            host_jitter: None,
            packet_log: 0,
            telemetry: cfg.telemetry.clone(),
            ..Default::default()
        },
    );
    let (s1, s2) = (switches[0], switches[1]);
    let s1_port = sim.core().route_of(s1, h4).expect("S1 toward S2");
    let s2_port = sim.core().route_of(s2, h3).expect("S2 toward h3");
    sample_queue(sim.core_mut(), s1, s1_port, Dur::millis(1), "q.s1");
    sample_queue(sim.core_mut(), s2, s2_port, Dur::millis(1), "q.s2");
    sim.run();
    crate::artifacts::maybe_export(
        sim.core(),
        "multi_bottleneck(4 hosts, 2 switches)",
        format!("{cfg:?}"),
    );

    let ids = sim.app().flow_ids().to_vec();
    let series_of = |range: std::ops::Range<usize>| {
        let refs: Vec<&metrics::TimeSeries> = ids[range]
            .iter()
            .map(|&f| {
                sim.core()
                    .flow(f)
                    .meter
                    .as_ref()
                    .map(|m| m.series())
                    .expect("metered")
            })
            .collect();
        sum_series(&refs)
    };
    // Bottleneck 1 carries h1's flows (n1 + n2); bottleneck 2 carries
    // the flows into h3 (n2 + n3).
    let s1_goodput = series_of(0..cfg.n1 + cfg.n2);
    let n2_series = series_of(cfg.n1..cfg.n1 + cfg.n2);
    let n3_series = series_of(cfg.n1 + cfg.n2..cfg.n1 + cfg.n2 + cfg.n3);
    let s2_goodput: Vec<(u64, f64)> = n2_series
        .iter()
        .zip(n3_series.iter())
        .map(|(&(t, a), &(_, b))| (t, a + b))
        .collect();

    // Steady state: skip the first quarter of the run.
    let skip = horizon / 4;
    let steady = |pts: &[(u64, f64)]| {
        let late: Vec<(u64, f64)> = pts.iter().copied().filter(|&(t, _)| t > skip).collect();
        mean_of(&late)
    };
    WorkConservingResult {
        s1_mean_bps: steady(&s1_goodput),
        s2_mean_bps: steady(&s2_goodput),
        s1_queue: trace_points(sim.core(), "q.s1"),
        s2_queue: trace_points(sim.core(), "q.s2"),
        s1_goodput,
        s2_goodput,
        drops: sim.core().total_drops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_bottlenecks_fully_utilised() {
        let r = run(&WorkConservingConfig::default());
        // Paper Fig. 11a: both around 910–945 Mbps.
        assert!(
            r.s1_mean_bps > 0.85e9,
            "S1 bottleneck at {:.0} Mbps",
            r.s1_mean_bps / 1e6
        );
        assert!(
            r.s2_mean_bps > 0.85e9,
            "S2 bottleneck at {:.0} Mbps",
            r.s2_mean_bps / 1e6
        );
        assert_eq!(r.drops, 0);
    }

    #[test]
    fn queues_stay_near_one_packet() {
        let r = run(&WorkConservingConfig::default());
        let skip = 100_000_000;
        for (name, q) in [("s1", &r.s1_queue), ("s2", &r.s2_queue)] {
            let late: Vec<(u64, f64)> = q.iter().copied().filter(|&(t, _)| t > skip).collect();
            let mean = mean_of(&late);
            // Paper Fig. 11b: ~2 kB, about one packet.
            assert!(mean < 8_000.0, "{name} queue mean {mean}");
        }
    }

    #[test]
    fn ablation_without_adjustment_underutilises_s2() {
        let with = run(&WorkConservingConfig::default());
        let without = run(&WorkConservingConfig {
            token_adjustment: false,
            ..Default::default()
        });
        // Without Eq. 7 the n3 flows cannot absorb what the n2 flows
        // leave on the table at S2's downlink (analytically ~0.79 of
        // capacity for the 8/2/2 split; the whole-packet rounding of the
        // senders claws a little back).
        assert!(
            without.s2_mean_bps < 0.86e9,
            "expected underutilisation without adjustment, got {:.0} Mbps",
            without.s2_mean_bps / 1e6
        );
        assert!(
            without.s2_mean_bps + 80e6 < with.s2_mean_bps,
            "adjustment should add >80 Mbps: with {:.0}, without {:.0} Mbps",
            with.s2_mean_bps / 1e6,
            without.s2_mean_bps / 1e6
        );
    }
}
