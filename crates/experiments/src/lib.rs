//! Paper-experiment assembly: one module per figure of §6.
pub mod ablations;
pub mod artifacts;
pub mod benchmark;
pub mod faults;
pub mod goodput;
pub mod incast;
pub mod million;
pub mod ne;
pub mod proto;
pub mod reroute;
pub mod rho;
pub mod rttb;
pub mod sweeps;
pub mod util;
pub mod workconserving;

pub use proto::{Proto, ProtoConfig};
