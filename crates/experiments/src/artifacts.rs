//! Run-artifact export shared by every experiment driver.
//!
//! A driver that finds [`TelemetryConfig::export`] set on its simulator
//! writes the full artifact bundle (manifest, counters, events, flows,
//! TFC slot gauges, lifecycle-span sketches, legacy trace series) under
//! `results/<run>/` via [`maybe_export`]. With export unset (the
//! default) nothing touches the filesystem.

use std::path::PathBuf;

use simnet::sim::SimCore;
use telemetry::export::{export_run, git_describe, SimMeta};
use telemetry::{FlowSummary, RunManifest};

/// Copies per-flow ground truth out of the simulator core.
pub fn flow_summaries(core: &SimCore) -> Vec<FlowSummary> {
    core.flows()
        .map(|(id, st)| FlowSummary {
            flow: id.0,
            src: st.spec.src.0,
            dst: st.spec.dst.0,
            bytes: st.spec.bytes.unwrap_or(0),
            delivered: st.delivered,
            retransmits: st.retransmits,
            timeouts: st.timeouts,
            started_ns: st.started_at.nanos(),
            established_ns: st.established_at.map(|t| t.nanos()),
            receiver_done_ns: st.receiver_done_at.map(|t| t.nanos()),
            sender_done_ns: st.sender_done_at.map(|t| t.nanos()),
        })
        .collect()
}

/// Exports the run's artifacts if the simulator was configured with an
/// export name; returns the artifact directory. Export failures are
/// reported on stderr but never abort the experiment.
///
/// This is the single tracing exit point: the structured event log, the
/// span sketches, and the legacy `TraceCenter` rho/queue series all
/// leave through the same `results/<run>/` bundle.
pub fn maybe_export(
    core: &SimCore,
    topology: impl Into<String>,
    config: impl Into<String>,
) -> Option<PathBuf> {
    let run = core.config().telemetry.export.clone()?;
    let cfg = core.config();
    let manifest = RunManifest {
        run,
        seed: cfg.seed,
        topology: topology.into(),
        config: config.into(),
        git: git_describe(),
        sim: Some(SimMeta {
            scheduler: format!("{:?}", cfg.scheduler),
            coalesce: cfg.coalesce,
            trace: cfg.telemetry.trace.describe(),
        }),
    };
    let tel = core.telemetry();
    let series: Vec<(&str, &[(u64, f64)])> = core
        .trace()
        .iter()
        .map(|(name, ts)| (name, ts.points()))
        .collect();
    // Streaming runs export their per-class retired sketches alongside
    // the (few) flows still live at shutdown; the slab high-water marks
    // ride along as the resident-memory proxy.
    let retired = core.retirer().map(|r| {
        let (_, peak, capacity) = core.flow_slab_stats();
        r.to_export(capacity as u64, peak as u64)
    });
    match export_run(
        &manifest,
        &tel.log,
        &tel.loop_stats,
        &tel.slots,
        &flow_summaries(core),
        retired.as_ref(),
        &tel.spans,
        &series,
    ) {
        Ok(dir) => Some(dir),
        Err(e) => {
            eprintln!("telemetry export for run {:?} failed: {e}", manifest.run);
            None
        }
    }
}
