//! Ablations of TFC's design choices (§4.4–§4.6): each function runs a
//! scenario with one mechanism disabled and returns both results, so
//! tests and benches can show what each mechanism buys.

use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use workloads::{OnOffApp, OnOffFlow};

use crate::incast::{self, IncastExpConfig};
use crate::proto::{Proto, ProtoConfig};
use crate::util::{mean_of, sample_queue, trace_points};

/// Result pair of an ablation: the mechanism on vs. off.
#[derive(Debug)]
pub struct Ablation<T> {
    /// With the mechanism enabled (the default configuration).
    pub with: T,
    /// With the mechanism disabled.
    pub without: T,
}

/// §4.6's delay arbiter vs. none, under heavy incast. Without it, the
/// sub-MSS windows are rounded up by every sender simultaneously and
/// the fan-in overflows the buffer.
pub fn delay_arbiter_incast(senders: usize, rounds: u32) -> Ablation<incast::IncastExpResult> {
    let mut on = IncastExpConfig::testbed(Proto::Tfc, senders, rounds);
    on.proto_cfg.tfc_switch.delay_arbiter = false;
    let without = incast::run(&on);
    let with = incast::run(&IncastExpConfig::testbed(Proto::Tfc, senders, rounds));
    Ablation { with, without }
}

/// Sustained-load queue statistics: `(avg_queue_bytes, max_queue_bytes,
/// goodput_bps)` for `n` continuous flows into one receiver.
fn continuous_load_queue(decouple: bool, n: usize, duration: Dur) -> (f64, u64, f64) {
    let (t, hosts, sw) = star(n + 1, Bandwidth::gbps(1), Dur::micros(20));
    let mut pc = ProtoConfig::default();
    pc.tfc_switch.decouple_rtt = decouple;
    // Isolate §4.4: under the integral adjustment the token feeds back
    // on itself and the pipe term only bounds the clamp, hiding the
    // coupling; the literal Eq. 7 exposes it.
    pc.tfc_switch.integral_adjustment = false;
    let net = pc.build_net(Proto::Tfc, t);
    let horizon = duration.as_nanos();
    let receiver = hosts[n];
    let flows: Vec<OnOffFlow> = hosts[..n]
        .iter()
        .map(|&src| OnOffFlow {
            src,
            dst: receiver,
            active: vec![(0, horizon)],
        })
        .collect();
    let app = OnOffApp::new(flows, 128 * 1024);
    let mut sim = Simulator::new(
        net,
        pc.stack(Proto::Tfc),
        app,
        SimConfig {
            end: Some(Time(horizon)),
            ..Default::default()
        },
    );
    let port = sim.core().route_of(sw, receiver).expect("downlink");
    sample_queue(sim.core_mut(), sw, port, Dur::millis(1), "q");
    sim.run();
    let q = trace_points(sim.core(), "q");
    let late: Vec<(u64, f64)> = q
        .iter()
        .copied()
        .filter(|&(t, _)| t > horizon / 4)
        .collect();
    let max_q = sim.core().port_stats(sw, port).max_queue_bytes;
    let delivered: u64 = sim.core().flows().map(|(_, st)| st.delivered).sum();
    (
        mean_of(&late),
        max_q,
        delivered as f64 * 8.0 / duration.as_secs_f64(),
    )
}

/// §4.4's decoupling of the token RTT (`rtt_b`) from the measurement
/// RTT (`rtt_m`), under sustained load. Re-coupling feeds queueing delay
/// back into the token: a longer queue ⇒ larger measured RTT ⇒ larger
/// token ⇒ an even longer queue. Returns `(avg_q, max_q, goodput)`.
pub fn decouple_rtt_queue(n: usize, duration: Dur) -> Ablation<(f64, u64, f64)> {
    Ablation {
        with: continuous_load_queue(true, n, duration),
        without: continuous_load_queue(false, n, duration),
    }
}

/// The window-acquisition phase (§4.6) vs. none: with
/// `probe_on_resume` off, every barrier round bursts stale windows.
pub fn window_acquisition_incast(senders: usize, rounds: u32) -> Ablation<incast::IncastExpResult> {
    let mut off = IncastExpConfig::testbed(Proto::Tfc, senders, rounds);
    off.fresh_connections = false; // persistent flows resume per round
    off.proto_cfg.tfc_host.probe_on_resume = false;
    let without = incast::run(&off);
    let mut on = IncastExpConfig::testbed(Proto::Tfc, senders, rounds);
    on.fresh_connections = false;
    let with = incast::run(&on);
    Ablation { with, without }
}

/// Scaled-down default used by tests and benches.
pub fn default_scale() -> (usize, u32) {
    (32, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::units::Bandwidth;

    #[test]
    fn delay_arbiter_prevents_incast_loss() {
        let (n, rounds) = default_scale();
        let a = delay_arbiter_incast(n, rounds);
        assert_eq!(a.with.drops, 0, "TFC with arbiter must not drop");
        // Without the arbiter the queue at least grows far beyond the
        // gated case (and typically drops).
        assert!(
            a.without.max_queue_bytes > 2 * a.with.max_queue_bytes,
            "no-arbiter max queue {} vs gated {}",
            a.without.max_queue_bytes,
            a.with.max_queue_bytes
        );
    }

    #[test]
    fn decoupling_keeps_queue_low() {
        let a = decouple_rtt_queue(5, Dur::millis(150));
        let (with_avg, _, with_bps) = a.with;
        let (without_avg, _, _) = a.without;
        assert!(
            without_avg > 1.5 * with_avg,
            "coupled avg queue {without_avg:.0} should exceed decoupled {with_avg:.0}"
        );
        assert!(with_bps > 0.8e9, "decoupled goodput {with_bps:.2e}");
    }

    #[test]
    fn acquisition_probe_bounds_resume_bursts() {
        let a = window_acquisition_incast(24, 3);
        assert_eq!(a.with.drops, 0, "probe-on-resume must stay loss-free");
        assert!(
            a.without.max_queue_bytes >= a.with.max_queue_bytes,
            "stale-window resume ({}) should not beat probing ({})",
            a.without.max_queue_bytes,
            a.with.max_queue_bytes
        );
    }

    #[test]
    fn ablation_struct_is_generic() {
        let a = Ablation {
            with: Bandwidth::gbps(1),
            without: Bandwidth::mbps(1),
        };
        assert!(a.with > a.without);
    }
}
