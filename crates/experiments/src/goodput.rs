//! Figs. 8–10 — queue length, goodput/fairness, and convergence rate.
//!
//! Hosts H1 and H2 establish two flows each to H3 at fixed intervals
//! (the paper uses 3 s). One run per protocol produces: the bottleneck
//! queue trace (Fig. 8), per-flow goodput curves (Fig. 9), and the
//! convergence time of the third flow to its fair share (Fig. 10).

use metrics::TimeSeries;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::testbed;
use simnet::units::{Dur, Time};
use telemetry::TelemetryConfig;
use workloads::{OnOffApp, OnOffFlow};

use crate::proto::{Proto, ProtoConfig};
use crate::util::{convergence_time, mean_of, sample_queue, trace_points};

/// Figs. 8–10 parameters.
#[derive(Debug, Clone)]
pub struct GoodputConfig {
    /// Protocol under test.
    pub proto: Proto,
    /// Interval between flow joins (paper: 3 s; scaled by default).
    pub join_interval: Dur,
    /// Extra run time after the last join.
    pub tail: Dur,
    /// Goodput meter window (paper samples every 20 ms).
    pub meter_window: Dur,
    /// Queue-length sampling period.
    pub queue_sample: Dur,
    /// Per-link propagation delay.
    pub link_delay: Dur,
    /// Protocol knobs.
    pub proto_cfg: ProtoConfig,
    /// RNG seed.
    pub seed: u64,
    /// Structured telemetry (event log, gauges, export; off by default).
    pub telemetry: TelemetryConfig,
}

impl GoodputConfig {
    /// Scaled-down defaults that keep runs fast while preserving the
    /// dynamics (joins well past convergence time).
    pub fn scaled(proto: Proto) -> Self {
        Self {
            proto,
            join_interval: Dur::millis(150),
            tail: Dur::millis(150),
            meter_window: Dur::millis(5),
            queue_sample: Dur::millis(1),
            link_delay: Dur::nanos(500),
            proto_cfg: ProtoConfig::default(),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }

    /// Paper-scale run (3 s joins, 20 ms meters, 12 s total).
    pub fn paper(proto: Proto) -> Self {
        Self {
            proto,
            join_interval: Dur::secs(3),
            tail: Dur::secs(3),
            meter_window: Dur::millis(20),
            queue_sample: Dur::millis(10),
            link_delay: Dur::nanos(500),
            proto_cfg: ProtoConfig::default(),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }

    fn horizon(&self) -> u64 {
        3 * self.join_interval.as_nanos() + self.tail.as_nanos()
    }
}

/// Figs. 8–10 output for one protocol.
#[derive(Debug)]
pub struct GoodputResult {
    /// Per-flow goodput series (bits/s), in join order.
    pub flows: Vec<TimeSeries>,
    /// Bottleneck queue trace `(time_ns, bytes)`.
    pub queue: Vec<(u64, f64)>,
    /// Delay from flow 3's join to its goodput holding within 20% of
    /// the fair share (c/3), if it ever converges.
    pub convergence: Option<Dur>,
    /// Total enqueue drops at the bottleneck port.
    pub drops: u64,
    /// Mean aggregate goodput after the last join (bits/s).
    pub aggregate_bps: f64,
    /// Max queue ever seen at the bottleneck port (bytes).
    pub max_queue_bytes: u64,
    /// Jain's fairness index of per-flow goodput over the fully loaded
    /// phase (1.0 = perfectly fair).
    pub fairness: f64,
}

/// Runs one protocol through the Figs. 8–10 scenario.
pub fn run(cfg: &GoodputConfig) -> GoodputResult {
    let (t, hosts, switches) = testbed(cfg.link_delay);
    let net = cfg.proto_cfg.build_net(cfg.proto, t);
    let j = cfg.join_interval.as_nanos();
    let horizon = cfg.horizon();
    let sources = [hosts[0], hosts[1], hosts[0], hosts[1]];
    let flows_cfg: Vec<OnOffFlow> = sources
        .iter()
        .enumerate()
        .map(|(i, &src)| OnOffFlow {
            src,
            dst: hosts[2],
            active: vec![(i as u64 * j, horizon)],
        })
        .collect();
    let app = OnOffApp::new(flows_cfg, 128 * 1024).with_meters(cfg.meter_window);
    let mut sim = Simulator::new(
        net,
        cfg.proto_cfg.stack(cfg.proto),
        app,
        SimConfig {
            seed: cfg.seed,
            end: Some(Time(horizon)),
            host_jitter: None,
            packet_log: 0,
            telemetry: cfg.telemetry.clone(),
            ..Default::default()
        },
    );
    let nf1 = switches[1];
    let port = sim.core().route_of(nf1, hosts[2]).expect("route to H3");
    sample_queue(sim.core_mut(), nf1, port, cfg.queue_sample, "queue");
    sim.run();
    crate::artifacts::maybe_export(sim.core(), "testbed(3 hosts, 2 switches)", format!("{cfg:?}"));

    let flow_ids = sim.app().flow_ids().to_vec();
    let flows: Vec<TimeSeries> = flow_ids
        .iter()
        .map(|&f| {
            sim.core()
                .flow(f)
                .meter
                .as_ref()
                .map(|m| m.series().clone())
                .expect("meter attached at start")
        })
        .collect();
    let queue = trace_points(sim.core(), "queue");
    // Fair share of the bottleneck among 3 active flows (flow 3 joins
    // when flows 1–2 are running; goodput excludes headers).
    let fair = 1e9 / 3.0 * (1460.0 / 1500.0);
    let convergence =
        convergence_time(&flows[2], Time(2 * j), fair, 0.2, 3).map(|t| t.since(Time(2 * j)));
    let stats = sim.core().port_stats(nf1, port);
    let (max_q, drops) = (stats.max_queue_bytes, stats.drops);
    let loaded_start = 3 * j;
    let per_flow_means: Vec<f64> = flows
        .iter()
        .map(|s| {
            let pts: Vec<(u64, f64)> = s.window(loaded_start, horizon).collect();
            mean_of(&pts)
        })
        .collect();
    GoodputResult {
        flows,
        queue,
        convergence,
        drops,
        aggregate_bps: per_flow_means.iter().sum(),
        max_queue_bytes: max_q,
        fairness: metrics::jain_index(&per_flow_means),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::max_of;

    fn result(proto: Proto) -> GoodputResult {
        run(&GoodputConfig::scaled(proto))
    }

    #[test]
    fn all_protocols_fill_the_link() {
        for proto in Proto::ALL {
            let r = result(proto);
            assert!(
                r.aggregate_bps > 0.75e9,
                "{}: aggregate {:.0} Mbps",
                proto.label(),
                r.aggregate_bps / 1e6
            );
        }
    }

    #[test]
    fn tfc_queue_far_below_tcp() {
        let tfc = result(Proto::Tfc);
        let tcp = result(Proto::Tcp);
        // Steady-state comparison past the startup transient.
        let late = |r: &GoodputResult| {
            let pts: Vec<(u64, f64)> = r
                .queue
                .iter()
                .copied()
                .filter(|&(t, _)| t > 100_000_000)
                .collect();
            (mean_of(&pts), max_of(&pts))
        };
        let (tfc_mean, tfc_max) = late(&tfc);
        let (tcp_mean, tcp_max) = late(&tcp);
        assert!(
            tfc_mean * 5.0 < tcp_mean.max(1.0),
            "TFC mean queue {tfc_mean} vs TCP {tcp_mean}"
        );
        assert!(tfc_max < tcp_max, "TFC max {tfc_max} vs TCP max {tcp_max}");
        // Near-zero queueing in absolute terms (paper: ~9 kB max).
        assert!(tfc_mean < 6_000.0, "TFC mean queue {tfc_mean}");
    }

    #[test]
    fn dctcp_queue_sits_at_marking_threshold() {
        let r = result(Proto::Dctcp);
        let pts: Vec<(u64, f64)> = r
            .queue
            .iter()
            .copied()
            .filter(|&(t, _)| t > 100_000_000)
            .collect();
        let mean = mean_of(&pts);
        // K = 32 kB: DCTCP hovers below/around it (paper: ~30 kB).
        assert!(mean > 2_000.0 && mean < 60_000.0, "DCTCP mean queue {mean}");
    }

    #[test]
    fn tfc_converges_fastest() {
        let tfc = result(Proto::Tfc);
        let tcp = result(Proto::Tcp);
        let tfc_conv = tfc.convergence.expect("TFC converges");
        // TFC: a couple of RTTs (~tens of µs) plus one meter window.
        assert!(
            tfc_conv < Dur::millis(25),
            "TFC convergence took {tfc_conv}"
        );
        if let Some(tcp_conv) = tcp.convergence {
            assert!(tfc_conv <= tcp_conv, "TCP converged faster than TFC");
        }
    }

    #[test]
    fn tfc_is_fairest() {
        let tfc = result(Proto::Tfc);
        let tcp = result(Proto::Tcp);
        assert!(
            tfc.fairness > 0.99,
            "TFC Jain index {:.4} (paper: fair even at small timescales)",
            tfc.fairness
        );
        assert!(
            tfc.fairness >= tcp.fairness - 0.005,
            "TFC ({:.4}) less fair than TCP ({:.4})",
            tfc.fairness,
            tcp.fairness
        );
    }

    #[test]
    fn tfc_does_not_drop() {
        let r = result(Proto::Tfc);
        assert_eq!(r.drops, 0);
    }

    #[test]
    fn tfc_fair_share_in_loaded_phase() {
        let r = result(Proto::Tfc);
        let j = GoodputConfig::scaled(Proto::Tfc).join_interval.as_nanos();
        let horizon = GoodputConfig::scaled(Proto::Tfc).horizon();
        // All four flows active: each should sit near c/4.
        let fair = 1e9 / 4.0 * (1460.0 / 1500.0);
        for (i, s) in r.flows.iter().enumerate() {
            let pts: Vec<(u64, f64)> = s.window(3 * j + j / 2, horizon).collect();
            let mean = mean_of(&pts);
            assert!(
                (mean - fair).abs() / fair < 0.25,
                "flow {i} mean {mean:.0} vs fair {fair:.0}"
            );
        }
    }
}
