//! Protocol selection shared by every experiment.

use simnet::endpoint::ProtocolStack;
use simnet::policy::{DropTail, EcnMark, SwitchPolicy};
use simnet::topology::{Network, TopologyBuilder};
use tfc::config::{TfcHostConfig, TfcSwitchConfig};
use tfc::{TfcStack, TfcSwitchPolicy};
use transport::{DctcpStack, TcpConfig, TcpStack};

/// The three protocols the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// TCP NewReno on drop-tail switches.
    Tcp,
    /// DCTCP on ECN-marking switches.
    Dctcp,
    /// TFC on token-engine switches.
    Tfc,
}

impl Proto {
    /// All three, in the paper's usual presentation order.
    pub const ALL: [Proto; 3] = [Proto::Tfc, Proto::Dctcp, Proto::Tcp];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Proto::Tcp => "TCP",
            Proto::Dctcp => "DCTCP",
            Proto::Tfc => "TFC",
        }
    }
}

/// Per-run protocol parameters with paper defaults.
#[derive(Debug, Clone, Copy)]
pub struct ProtoConfig {
    /// ECN marking threshold for DCTCP switches (paper: 32 KB at
    /// 1 Gbps; scale with the line rate for 10 Gbps runs).
    pub ecn_k_bytes: u64,
    /// TFC switch parameters.
    pub tfc_switch: TfcSwitchConfig,
    /// TFC host parameters.
    pub tfc_host: TfcHostConfig,
    /// Baseline TCP/DCTCP parameters.
    pub tcp: TcpConfig,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        Self {
            ecn_k_bytes: 32 * 1024,
            tfc_switch: TfcSwitchConfig::default(),
            tfc_host: TfcHostConfig::default(),
            tcp: TcpConfig::default(),
        }
    }
}

impl ProtoConfig {
    /// Scales rate-dependent knobs for a 10 Gbps fabric (§6.2): ECN K of
    /// 65 full frames, and an initial `rtt_b` matching the 160 µs
    /// inter-rack RTT of the simulation topology.
    pub fn ten_gig() -> Self {
        Self {
            ecn_k_bytes: 65 * 1500,
            ..Self::default()
        }
    }

    /// Builds the network for `proto` from a prepared topology builder.
    pub fn build_net(&self, proto: Proto, builder: TopologyBuilder) -> Network {
        match proto {
            Proto::Tcp => builder.build(|_, _| Box::new(DropTail)),
            Proto::Dctcp => {
                let k = self.ecn_k_bytes;
                builder.build(move |_, _| Box::new(EcnMark::new(k)) as Box<dyn SwitchPolicy>)
            }
            Proto::Tfc => builder.build(TfcSwitchPolicy::factory(self.tfc_switch)),
        }
    }

    /// Builds the end-host stack for `proto`.
    pub fn stack(&self, proto: Proto) -> Box<dyn ProtocolStack> {
        match proto {
            Proto::Tcp => Box::new(TcpStack::new(self.tcp)),
            Proto::Dctcp => Box::new(DctcpStack::new(self.tcp)),
            Proto::Tfc => Box::new(TfcStack::new(self.tfc_host)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology::star;
    use simnet::units::{Bandwidth, Dur};

    #[test]
    fn labels() {
        assert_eq!(Proto::Tcp.label(), "TCP");
        assert_eq!(Proto::Dctcp.label(), "DCTCP");
        assert_eq!(Proto::Tfc.label(), "TFC");
    }

    #[test]
    fn builds_every_combination() {
        let cfg = ProtoConfig::default();
        for proto in Proto::ALL {
            let (t, _, _) = star(3, Bandwidth::gbps(1), Dur::micros(1));
            let net = cfg.build_net(proto, t);
            assert_eq!(net.hosts.len(), 3);
            let stack = cfg.stack(proto);
            assert_eq!(stack.name().to_uppercase(), proto.label());
        }
    }

    #[test]
    fn ten_gig_scales_k() {
        let cfg = ProtoConfig::ten_gig();
        assert_eq!(cfg.ecn_k_bytes, 65 * 1500);
    }
}
