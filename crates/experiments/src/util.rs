//! Shared helpers for experiment assembly and post-processing.

use metrics::TimeSeries;
use simnet::packet::NodeId;
use simnet::sim::SimCore;
use simnet::trace::QueueSampler;
use simnet::units::{Dur, Time};

/// Attaches a periodic queue-length sampler to `(switch, port)` under the
/// given trace key.
pub fn sample_queue(core: &mut SimCore, switch: NodeId, port: usize, every: Dur, key: &str) {
    core.add_queue_sampler(QueueSampler {
        node: switch,
        port,
        every,
        key: key.to_owned(),
        until: None,
    });
}

/// Points of a named trace, or empty if absent.
pub fn trace_points(core: &SimCore, key: &str) -> Vec<(u64, f64)> {
    core.trace()
        .get(key)
        .map(|ts| ts.points().to_vec())
        .unwrap_or_default()
}

/// Sums several equally-windowed rate series point-wise (aggregate
/// goodput of a flow group). Shorter series are zero-padded.
pub fn sum_series(series: &[&TimeSeries]) -> Vec<(u64, f64)> {
    let longest = series.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut out: Vec<(u64, f64)> = Vec::with_capacity(longest);
    for i in 0..longest {
        let mut t = 0;
        let mut v = 0.0;
        for s in series {
            if let Some(&(ti, vi)) = s.points().get(i) {
                t = t.max(ti);
                v += vi;
            }
        }
        out.push((t, v));
    }
    out
}

/// Per-window minima of a `(time, value)` trace — how the paper samples
/// `rtt_b` ("set to the minimum of the measured rtt_m during 1 second").
pub fn window_minima(points: &[(u64, f64)], window: Dur) -> Vec<f64> {
    let w = window.as_nanos().max(1);
    let mut out = Vec::new();
    let mut current_window = None;
    let mut min = f64::INFINITY;
    for &(t, v) in points {
        let idx = t / w;
        match current_window {
            None => {
                current_window = Some(idx);
                min = v;
            }
            Some(c) if c == idx => min = min.min(v),
            Some(_) => {
                out.push(min);
                current_window = Some(idx);
                min = v;
            }
        }
    }
    if current_window.is_some() {
        out.push(min);
    }
    out
}

/// First time a rate series reaches within `tol` (fraction) of `target`
/// and stays there for `hold` consecutive windows; `None` if never.
pub fn convergence_time(
    series: &TimeSeries,
    start: Time,
    target: f64,
    tol: f64,
    hold: usize,
) -> Option<Time> {
    let lo = target * (1.0 - tol);
    let hi = target * (1.0 + tol);
    let pts: Vec<(u64, f64)> = series
        .points()
        .iter()
        .copied()
        .filter(|&(t, _)| t >= start.nanos())
        .collect();
    let mut run = 0;
    let mut run_start = 0;
    for &(t, v) in &pts {
        if v >= lo && v <= hi {
            if run == 0 {
                run_start = t;
            }
            run += 1;
            if run >= hold {
                return Some(Time(run_start));
            }
        } else {
            run = 0;
        }
    }
    None
}

/// Mean of the values of a `(time, value)` point list (0.0 when empty).
pub fn mean_of(points: &[(u64, f64)]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(|&(_, v)| v).sum::<f64>() / points.len() as f64
}

/// Max of the values of a `(time, value)` point list (0.0 when empty).
pub fn max_of(points: &[(u64, f64)]) -> f64 {
    points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_minima_partitions() {
        let pts = vec![(0, 5.0), (10, 3.0), (25, 9.0), (26, 7.0), (51, 1.0)];
        let mins = window_minima(&pts, Dur(25));
        assert_eq!(mins, vec![3.0, 7.0, 1.0]);
    }

    #[test]
    fn window_minima_empty() {
        assert!(window_minima(&[], Dur(10)).is_empty());
    }

    #[test]
    fn sum_series_pads() {
        let mut a = TimeSeries::new("a");
        a.push(10, 1.0);
        a.push(20, 2.0);
        let mut b = TimeSeries::new("b");
        b.push(10, 5.0);
        let sum = sum_series(&[&a, &b]);
        assert_eq!(sum, vec![(10, 6.0), (20, 2.0)]);
    }

    #[test]
    fn convergence_detects_hold() {
        let mut s = TimeSeries::new("r");
        for (i, v) in [0.0, 0.2, 0.95, 1.02, 0.97, 1.0, 0.5].iter().enumerate() {
            s.push(i as u64 * 10, *v);
        }
        let t = convergence_time(&s, Time(0), 1.0, 0.1, 3).unwrap();
        assert_eq!(t, Time(20));
        assert!(convergence_time(&s, Time(0), 1.0, 0.1, 5).is_none());
    }

    #[test]
    fn mean_max_helpers() {
        let pts = vec![(0, 1.0), (1, 3.0)];
        assert_eq!(mean_of(&pts), 2.0);
        assert_eq!(max_of(&pts), 3.0);
        assert_eq!(mean_of(&[]), 0.0);
    }
}
