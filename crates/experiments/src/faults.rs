//! Chaos suite — recovery under injected faults (§4.2/§4.3 dynamics).
//!
//! A star topology with `senders` backlogged flows into one receiver;
//! one scripted fault strikes mid-run. The *victim* scenarios (host
//! stall, access-link flap) silence one sender without FIN — exactly
//! the case TFC's rho counter exists for: the switch must notice the
//! silent flow within two time slots, reclaim its tokens, and hand the
//! freed window to the survivors, while drop-tail TCP's survivors must
//! grow their windows additively. The *bottleneck* scenarios (rate
//! dip, loss burst, policy reset) stress everyone's recovery machinery
//! on the shared link instead.
//!
//! Recovery is judged on the aggregate delivery rate: depth of the dip
//! below the pre-fault baseline, and time from fault clear until the
//! rate is back to 90 % of baseline (see [`chaos::recovery`]).

use std::path::PathBuf;

use chaos::recovery::{self, DipSummary};
use chaos::FaultTimeline;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::{LogMode, TelemetryConfig, TraceEvent};
use workloads::{OnOffApp, OnOffFlow};

use crate::proto::{Proto, ProtoConfig};

/// The standard chaos scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// One sender goes silent without FIN, then resumes (§4.3).
    HostStall,
    /// One sender's access link flaps down and back up.
    LinkFlap,
    /// The bottleneck link renegotiates down to 100 Mbps, then back.
    RateDip,
    /// A bursty loss window on the bottleneck egress port.
    LossBurst,
    /// Control-plane reboot wipes the bottleneck port's policy state.
    PolicyReset,
}

impl Scenario {
    /// Every scenario, in suite order.
    pub const ALL: [Scenario; 5] = [
        Scenario::HostStall,
        Scenario::LinkFlap,
        Scenario::RateDip,
        Scenario::LossBurst,
        Scenario::PolicyReset,
    ];

    /// Whether the fault silences one sender (vs. degrading the shared
    /// bottleneck). Victim scenarios are judged on how fast the
    /// *surviving* flows absorb the freed capacity.
    pub fn is_victim(self) -> bool {
        matches!(self, Scenario::HostStall | Scenario::LinkFlap)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::HostStall => "host-stall",
            Scenario::LinkFlap => "link-flap",
            Scenario::RateDip => "rate-dip",
            Scenario::LossBurst => "loss-burst",
            Scenario::PolicyReset => "policy-reset",
        }
    }
}

/// Chaos-run parameters.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// Protocol under test.
    pub proto: Proto,
    /// Which fault strikes.
    pub scenario: Scenario,
    /// Backlogged senders sharing the bottleneck.
    pub senders: usize,
    /// Total run time.
    pub horizon: Dur,
    /// When the fault is injected.
    pub fault_at: Dur,
    /// How long it lasts (ignored by `PolicyReset`, which is a point
    /// event).
    pub fault_dur: Dur,
    /// Bin width for the aggregate delivery rate (dip measurement).
    pub bin: Dur,
    /// Per-link propagation delay.
    pub link_delay: Dur,
    /// Protocol knobs.
    pub proto_cfg: ProtoConfig,
    /// RNG seed (also seeds the loss-window draws).
    pub seed: u64,
    /// Structured telemetry. The dip metrics need the event log, so
    /// the constructors enable it; export stays off unless set.
    pub telemetry: TelemetryConfig,
}

impl FaultsConfig {
    /// Defaults sized so TCP's additive-increase recovery is visibly
    /// slower than TFC's token reclamation, but runs stay fast.
    pub fn scaled(proto: Proto, scenario: Scenario) -> Self {
        Self {
            proto,
            scenario,
            senders: 4,
            horizon: Dur::millis(80),
            fault_at: Dur::millis(20),
            fault_dur: Dur::millis(10),
            bin: Dur::micros(500),
            link_delay: Dur::nanos(500),
            proto_cfg: ProtoConfig::default(),
            seed: 1,
            telemetry: TelemetryConfig {
                events: LogMode::Full,
                sample_one_in: 1,
                tfc_gauges: true,
                profile: false,
                trace: telemetry::TraceConfig::Off,
                export: None,
            },
        }
    }

    /// Like [`Self::scaled`] but exporting artifacts under `run`.
    /// Profiling stays off so identical runs export byte-identical
    /// artifacts (wall-clock nanos are not deterministic).
    pub fn exporting(proto: Proto, scenario: Scenario, run: impl Into<String>) -> Self {
        let mut cfg = Self::scaled(proto, scenario);
        cfg.telemetry.export = Some(run.into());
        cfg
    }

    /// When the fault stops acting (equals the injection time for the
    /// point-event `PolicyReset`).
    pub fn fault_end(&self) -> Time {
        match self.scenario {
            Scenario::PolicyReset => Time(self.fault_at.as_nanos()),
            _ => Time(self.fault_at.as_nanos() + self.fault_dur.as_nanos()),
        }
    }
}

/// Outcome of one chaos run.
#[derive(Debug)]
pub struct FaultsResult {
    /// Protocol under test.
    pub proto: Proto,
    /// Which fault struck.
    pub scenario: Scenario,
    /// Injection time, ns.
    pub fault_start_ns: u64,
    /// Clear time, ns.
    pub fault_end_ns: u64,
    /// Aggregate-goodput dip around the fault window. Beware the queue
    /// mask: the bottleneck's backlog keeps serving a silenced victim's
    /// stale packets, so the aggregate barely dips for victim faults —
    /// use [`Self::survivor_rise_ns`] for those.
    pub dip: Option<DipSummary>,
    /// For victim scenarios only: time from fault injection until the
    /// surviving flows' aggregate goodput sustainedly reaches 90 % of
    /// the link's payload capacity (§4.3 — how fast the victim's tokens
    /// are reclaimed and re-shared). `None` for bottleneck scenarios or
    /// when the survivors never get there.
    pub survivor_rise_ns: Option<u64>,
    /// Time from fault clear to the first TFC window (re-)acquisition
    /// (`None` for non-TFC runs or when none happened).
    pub reacquire_ns: Option<u64>,
    /// Total bytes delivered over the run.
    pub delivered: u64,
    /// Packets lost to the fault itself, across the switch's ports.
    pub fault_drops: u64,
    /// Ordinary queue-overflow drops at the switch, for telling fault
    /// loss apart from congestion loss.
    pub queue_drops: u64,
    /// Artifact directory when export was configured.
    pub export_dir: Option<PathBuf>,
}

/// Runs one protocol through one chaos scenario.
pub fn run(cfg: &FaultsConfig) -> FaultsResult {
    assert!(cfg.senders >= 2, "need survivors to measure recovery");
    let (t, hosts, sw) = star(cfg.senders + 1, Bandwidth::gbps(1), cfg.link_delay);
    let receiver = hosts[cfg.senders];
    let victim = hosts[0];
    let net = cfg.proto_cfg.build_net(cfg.proto, t);
    let horizon = cfg.horizon.as_nanos();
    let flows_cfg: Vec<OnOffFlow> = hosts[..cfg.senders]
        .iter()
        .map(|&src| OnOffFlow {
            src,
            dst: receiver,
            active: vec![(0, horizon)],
        })
        .collect();
    let app = OnOffApp::new(flows_cfg, 128 * 1024).with_meters(cfg.bin);
    let mut sim = Simulator::new(
        net,
        cfg.proto_cfg.stack(cfg.proto),
        app,
        SimConfig {
            seed: cfg.seed,
            end: Some(Time(horizon)),
            host_jitter: None,
            packet_log: 0,
            telemetry: cfg.telemetry.clone(),
            ..Default::default()
        },
    );
    let port = sim.core().route_of(sw, receiver).expect("route to receiver");
    let at = Time(cfg.fault_at.as_nanos());
    let dur = cfg.fault_dur;
    let timeline = match cfg.scenario {
        Scenario::HostStall => FaultTimeline::new().host_stall(at, dur, victim),
        Scenario::LinkFlap => FaultTimeline::new().link_flap(at, dur, victim, 0),
        Scenario::RateDip => FaultTimeline::new().rate_dip(
            at,
            dur,
            sw,
            port,
            Bandwidth::mbps(100),
            Bandwidth::gbps(1),
        ),
        Scenario::LossBurst => FaultTimeline::new().loss_burst(at, dur, sw, port, 100),
        Scenario::PolicyReset => FaultTimeline::new().policy_reset(at, sw, port),
    };
    timeline.install(sim.core_mut());
    sim.run();
    let export_dir = crate::artifacts::maybe_export(
        sim.core(),
        format!("star(n={})", cfg.senders + 1),
        format!("{cfg:?}"),
    );

    let fault_start_ns = at.nanos();
    let fault_end_ns = cfg.fault_end().nanos();
    let victim_flow = sim.app().flow_ids()[0];
    let mut deliveries = Vec::new();
    let mut survivor_deliveries = Vec::new();
    let mut acquired = Vec::new();
    for rec in sim.core().telemetry().log.records() {
        match rec.event {
            TraceEvent::PktDeliver { flow, bytes, .. } => {
                deliveries.push((rec.at_ns, bytes));
                if flow != victim_flow.0 {
                    survivor_deliveries.push((rec.at_ns, bytes));
                }
            }
            TraceEvent::FlowWindowAcquired { .. } => acquired.push(rec.at_ns),
            _ => {}
        }
    }
    let dip = recovery::goodput_dip(
        &deliveries,
        fault_start_ns,
        fault_end_ns,
        cfg.bin.as_nanos(),
    );
    let survivor_rise_ns = if cfg.scenario.is_victim() {
        // Payload capacity of the 1 Gbps bottleneck (goodput excludes
        // headers); sustain 4 bins so the queue-mask mirage — the
        // victim's already-queued packets draining after the fault —
        // can't fake an instant recovery.
        let payload_cap = Bandwidth::gbps(1).as_bps() as f64 * (1460.0 / 1500.0);
        recovery::rise_time_ns(
            &survivor_deliveries,
            fault_start_ns,
            0.9 * payload_cap,
            cfg.bin.as_nanos(),
            4,
        )
    } else {
        None
    };
    let (mut fault_drops, mut queue_drops) = (0, 0);
    for p in 0..=cfg.senders {
        let stats = sim.core().port_stats(sw, p);
        fault_drops += stats.fault_drops;
        queue_drops += stats.drops;
    }
    FaultsResult {
        proto: cfg.proto,
        scenario: cfg.scenario,
        fault_start_ns,
        fault_end_ns,
        dip,
        survivor_rise_ns,
        reacquire_ns: recovery::time_to_first_after(&acquired, fault_end_ns),
        delivered: sim.core().flows().map(|(_, st)| st.delivered).sum(),
        fault_drops,
        queue_drops,
        export_dir,
    }
}

/// Runs the full scenario suite for one protocol.
pub fn run_suite(proto: Proto, seed: u64) -> Vec<FaultsResult> {
    Scenario::ALL
        .iter()
        .map(|&scenario| {
            let mut cfg = FaultsConfig::scaled(proto, scenario);
            cfg.seed = seed;
            run(&cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(proto: Proto, scenario: Scenario) -> FaultsResult {
        run(&FaultsConfig::scaled(proto, scenario))
    }

    /// §4.3: a silently stalled sender costs TFC at most a couple of
    /// time slots — rho notices the silence, the tokens are reclaimed,
    /// and the survivors' RMA stamps grow within the next round. TCP's
    /// survivors must discover the freed capacity by additive increase
    /// behind a draining drop-tail queue.
    #[test]
    fn tfc_recovers_from_host_stall_faster_than_tcp() {
        let tfc = result(Proto::Tfc, Scenario::HostStall);
        let tcp = result(Proto::Tcp, Scenario::HostStall);
        let tfc_rise = tfc.survivor_rise_ns.expect("TFC survivors reach capacity");
        // Two token slots are ~320 µs; one 500 µs bin of rounding on top.
        assert!(
            tfc_rise <= 1_000_000,
            "TFC survivors took {tfc_rise} ns to absorb the freed capacity"
        );
        match tcp.survivor_rise_ns {
            None => {} // TCP survivors never sustained capacity — strictly slower.
            Some(tcp_rise) => assert!(
                tfc_rise < tcp_rise,
                "TFC survivors rose in {tfc_rise} ns, TCP in {tcp_rise} ns"
            ),
        }
    }

    #[test]
    fn tfc_recovers_from_link_flap_faster_than_tcp() {
        let tfc = result(Proto::Tfc, Scenario::LinkFlap);
        let tcp = result(Proto::Tcp, Scenario::LinkFlap);
        let tfc_rise = tfc.survivor_rise_ns.expect("TFC survivors reach capacity");
        assert!(
            tfc_rise <= 1_000_000,
            "TFC survivors took {tfc_rise} ns to absorb the freed capacity"
        );
        match tcp.survivor_rise_ns {
            None => {}
            Some(tcp_rise) => assert!(
                tfc_rise < tcp_rise,
                "TFC survivors rose in {tfc_rise} ns, TCP in {tcp_rise} ns"
            ),
        }
        assert!(tfc.fault_drops > 0, "a flapped access link loses packets");
    }

    #[test]
    fn policy_reset_is_survivable_for_tfc() {
        let r = result(Proto::Tfc, Scenario::PolicyReset);
        // The port re-learns its state from live traffic; goodput must
        // come back within the horizon.
        let dip = r.dip.expect("baseline exists");
        assert!(dip.recovery_ns.is_some(), "TFC re-learns after a reset");
        assert!(r.delivered > 0);
    }

    #[test]
    fn suite_covers_every_scenario() {
        let results = run_suite(Proto::Tfc, 3);
        assert_eq!(results.len(), Scenario::ALL.len());
        for r in &results {
            assert!(r.delivered > 0, "{}: nothing delivered", r.scenario.label());
        }
    }

    /// Identical seed + identical timeline ⇒ identical outcome.
    #[test]
    fn chaos_runs_are_deterministic() {
        let a = result(Proto::Tfc, Scenario::LossBurst);
        let b = result(Proto::Tfc, Scenario::LossBurst);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.fault_drops, b.fault_drops);
        assert_eq!(a.dip.map(|d| d.recovery_ns), b.dip.map(|d| d.recovery_ns));
    }
}

