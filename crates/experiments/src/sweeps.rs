//! Parameter-sensitivity sweeps beyond Fig. 14: the token-EWMA weight
//! `alpha` (Eq. 8) and the initial `rtt_b` guess. The paper fixes
//! `alpha = 7/8` and `rtt_b(0) = 160 µs` without studying sensitivity;
//! these sweeps show the design is robust across a wide band of both.

use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use workloads::{OnOffApp, OnOffFlow};

use crate::proto::{Proto, ProtoConfig};
use crate::util::{mean_of, sample_queue, trace_points};

/// One sweep point: the parameter value and what it produced.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// Aggregate goodput (bits/s).
    pub goodput_bps: f64,
    /// Mean bottleneck queue after warm-up (bytes).
    pub avg_queue_bytes: f64,
    /// Drops over the run.
    pub drops: u64,
}

fn run_point(mutate: impl FnOnce(&mut ProtoConfig), duration: Dur, n: usize) -> SweepPoint {
    let (t, hosts, sw) = star(n + 1, Bandwidth::gbps(1), Dur::micros(20));
    let mut pc = ProtoConfig::default();
    mutate(&mut pc);
    let net = pc.build_net(Proto::Tfc, t);
    let horizon = duration.as_nanos();
    let receiver = hosts[n];
    let flows: Vec<OnOffFlow> = hosts[..n]
        .iter()
        .map(|&src| OnOffFlow {
            src,
            dst: receiver,
            active: vec![(0, horizon)],
        })
        .collect();
    let app = OnOffApp::new(flows, 128 * 1024);
    let mut sim = Simulator::new(
        net,
        pc.stack(Proto::Tfc),
        app,
        SimConfig {
            end: Some(Time(horizon)),
            ..Default::default()
        },
    );
    let port = sim.core().route_of(sw, receiver).expect("downlink");
    sample_queue(sim.core_mut(), sw, port, Dur::millis(1), "q");
    sim.run();
    let q = trace_points(sim.core(), "q");
    let late: Vec<(u64, f64)> = q
        .iter()
        .copied()
        .filter(|&(t, _)| t > horizon / 4)
        .collect();
    let delivered: u64 = sim.core().flows().map(|(_, st)| st.delivered).sum();
    SweepPoint {
        value: 0.0,
        goodput_bps: delivered as f64 * 8.0 / duration.as_secs_f64(),
        avg_queue_bytes: mean_of(&late),
        drops: sim.core().total_drops(),
    }
}

/// Sweeps the token-EWMA weight `alpha` (Eq. 8).
pub fn alpha_sweep(values: &[f64], duration: Dur) -> Vec<SweepPoint> {
    values
        .iter()
        .map(|&a| {
            let mut p = run_point(|pc| pc.tfc_switch.alpha = a, duration, 4);
            p.value = a;
            p
        })
        .collect()
}

/// Sweeps the initial `rtt_b` guess (paper Init: 160 µs).
pub fn init_rttb_sweep(values_us: &[u64], duration: Dur) -> Vec<SweepPoint> {
    values_us
        .iter()
        .map(|&us| {
            let mut p = run_point(|pc| pc.tfc_switch.init_rttb = Dur::micros(us), duration, 4);
            p.value = us as f64;
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_band_is_robust() {
        let pts = alpha_sweep(&[0.5, 0.75, 7.0 / 8.0, 0.95], Dur::millis(120));
        for p in &pts {
            assert!(
                p.goodput_bps > 0.85e9,
                "alpha {}: goodput {:.2e}",
                p.value,
                p.goodput_bps
            );
            assert_eq!(p.drops, 0, "alpha {} dropped", p.value);
            assert!(
                p.avg_queue_bytes < 25_000.0,
                "alpha {}: queue {:.0}",
                p.value,
                p.avg_queue_bytes
            );
        }
    }

    #[test]
    fn init_rttb_guess_is_forgiven() {
        // From far too small to far too large: the cold-start cap plus
        // the first-measurement snap make the initial guess irrelevant.
        let pts = init_rttb_sweep(&[20, 160, 1_000], Dur::millis(120));
        for p in &pts {
            assert!(
                p.goodput_bps > 0.85e9,
                "init {} µs: goodput {:.2e}",
                p.value,
                p.goodput_bps
            );
            assert_eq!(p.drops, 0, "init {} µs dropped", p.value);
        }
        // And outcomes stay close: the guess only affects the first
        // couple of RTTs (ramp pace), a bounded slice of this short run.
        let g: Vec<f64> = pts.iter().map(|p| p.goodput_bps).collect();
        let spread = (g.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - g.iter().cloned().fold(f64::INFINITY, f64::min))
            / g[0];
        assert!(spread < 0.12, "goodput spread {spread:.3}");
    }
}
