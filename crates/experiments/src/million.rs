//! `tfc-million` — the streaming million-flow scale experiment.
//!
//! Drives the open-loop [`workloads::stream`] engine over the paper's
//! §6.2.2 leaf-spine fabric (10 Gbps edges) with a two-class RPC mix —
//! a thin stream of web-search background elephants over a torrent of
//! cache-follower mice — until a target number of flows has *completed
//! and retired*. The point of the experiment is not a new figure but a
//! systems claim: the run finishes millions of flows while the flow
//! slab, the timer table, and the packet arena stay at their peak-
//! concurrency high-water marks, and the per-class FCT/slowdown
//! quantiles come out of fixed-size sketches instead of an unbounded
//! record vector.
//!
//! Validation is in-run: an oracle configuration keeps exact per-class
//! [`metrics::FctCollector`] records *alongside* the sketches (same
//! simulation, same flows), so any disagreement beyond the sketch's
//! 2·alpha relative-error bound is pure sketch error, not behavioural
//! drift. The oracle is only affordable at small scale; the full run
//! drops `keep_exact` and trusts the bound the small run established.

use std::time::Instant;

use metrics::{FctSummary, QuantileSketch};
use simnet::retire::RetireConfig;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::leaf_spine;
use simnet::units::{Bandwidth, Dur};
use telemetry::TelemetryConfig;
use workloads::dist::{background_flow_sizes, cache_follower_flow_sizes};
use workloads::{StreamApp, StreamClass, StreamConfig};

use crate::proto::{Proto, ProtoConfig};

/// Parameters of one streaming run.
#[derive(Debug, Clone)]
pub struct MillionConfig {
    /// Protocol under test.
    pub proto: Proto,
    /// Leaf switches.
    pub leaves: usize,
    /// Servers per leaf.
    pub hosts_per_leaf: usize,
    /// Completed-and-retired flows to stop at.
    pub target_flows: u64,
    /// Mean interarrival of the cache-follower mice (aggregate, across
    /// the whole fabric).
    pub cache_interarrival: Dur,
    /// Mean interarrival of the web-search background flows.
    pub web_interarrival: Dur,
    /// Open-loop safety valve (0 = unlimited): arrivals are shed, not
    /// queued, while this many flows are in flight.
    pub max_active: u64,
    /// Sketch relative-error bound.
    pub alpha: f64,
    /// Keep exact per-class records alongside the sketches (unbounded
    /// memory — small oracle runs only).
    pub keep_exact: bool,
    /// RNG seed.
    pub seed: u64,
    /// Telemetry (Ring/sampled modes keep artifact size flat; see
    /// [`MillionConfig::streaming_telemetry`]).
    pub telemetry: TelemetryConfig,
    /// Event-scheduler backend (the equivalence suite sweeps this).
    pub scheduler: simnet::SchedulerKind,
    /// Same-tick batch dispatch in the wheel backend.
    pub coalesce: bool,
}

impl MillionConfig {
    /// The full acceptance-scale run: 360 hosts, one million retired
    /// flows, mice-dominated mix (~1k web-search elephants ride along).
    pub fn full() -> Self {
        Self {
            proto: Proto::Tfc,
            leaves: 18,
            hosts_per_leaf: 20,
            target_flows: 1_000_000,
            cache_interarrival: Dur::nanos(1_100),
            web_interarrival: Dur::millis(1),
            max_active: 0,
            alpha: metrics::sketch::DEFAULT_ALPHA,
            keep_exact: false,
            seed: 61,
            telemetry: TelemetryConfig::off(),
            scheduler: simnet::SchedulerKind::default(),
            coalesce: true,
        }
    }

    /// CI-sized variant: same fabric shape scaled down, 100k flows.
    pub fn quick() -> Self {
        Self {
            leaves: 6,
            hosts_per_leaf: 8,
            target_flows: 100_000,
            ..Self::full()
        }
    }

    /// Small oracle run with exact records kept for sketch validation.
    /// The web-search class is boosted to ~9 % of arrivals so both
    /// classes accumulate meaningful sample counts in a short run.
    pub fn oracle() -> Self {
        Self {
            leaves: 4,
            hosts_per_leaf: 6,
            target_flows: 20_000,
            web_interarrival: Dur::micros(11),
            keep_exact: true,
            ..Self::full()
        }
    }

    /// Flat-memory telemetry for streaming runs: a bounded event ring
    /// and heavy packet-event sampling, exported under `run`. The
    /// events.json size is capped by the ring, and flows.json carries
    /// the fixed-size retired sketches plus only still-live flows.
    pub fn streaming_telemetry(run: impl Into<String>) -> TelemetryConfig {
        TelemetryConfig {
            events: telemetry::LogMode::Ring(4096),
            sample_one_in: 256,
            tfc_gauges: false,
            profile: false,
            trace: telemetry::TraceConfig::Off,
            export: Some(run.into()),
        }
    }

    fn retire(&self) -> RetireConfig {
        RetireConfig {
            alpha: self.alpha,
            // Host–leaf–spine–leaf–host and back at the configured
            // per-link delay, plus slack for serialisation.
            base_rtt: Dur::micros(170),
            line_rate: Bandwidth::gbps(10),
            classes: vec!["cache-follower".into(), "web-search".into()],
            keep_exact: self.keep_exact,
            ..RetireConfig::default()
        }
    }

    fn stream(&self, hosts: Vec<simnet::packet::NodeId>) -> StreamConfig {
        StreamConfig {
            hosts,
            classes: vec![
                StreamClass {
                    name: "cache-follower".into(),
                    mean_interarrival: self.cache_interarrival,
                    sizes: cache_follower_flow_sizes(),
                    weight: 1,
                },
                StreamClass {
                    name: "web-search".into(),
                    mean_interarrival: self.web_interarrival,
                    sizes: background_flow_sizes(),
                    weight: 1,
                },
            ],
            target_completed: Some(self.target_flows),
            horizon: None,
            max_active: self.max_active,
        }
    }
}

/// Per-class FCT view of one run: the sketch-derived summary and, on
/// oracle runs, the exact records next to it.
#[derive(Debug)]
pub struct ClassReport {
    /// Class name.
    pub name: String,
    /// Flows retired into the class.
    pub count: u64,
    /// Percentiles from the streaming sketch.
    pub sketch: Option<FctSummary>,
    /// Percentiles from the exact records (oracle runs only).
    pub exact: Option<FctSummary>,
    /// The class's FCT sketch itself (fixed size).
    pub fct_sketch: QuantileSketch,
    /// Exact per-flow FCTs in ns (oracle runs only, else empty).
    pub exact_fct_ns: Vec<f64>,
    /// Median slowdown (FCT over ideal FCT).
    pub slowdown_p50: Option<f64>,
    /// 99th-percentile slowdown.
    pub slowdown_p99: Option<f64>,
}

/// Outcome of one streaming run.
#[derive(Debug)]
pub struct MillionStats {
    /// Flows whose receiver held the full stream (the generator's stop
    /// criterion).
    pub completed: u64,
    /// Flows fully retired (receiver *and* sender done, state freed).
    /// Trails `completed` by the handful of flows whose FIN ack was
    /// still in flight when the target tripped.
    pub retired: u64,
    /// Flows the generator started.
    pub started: u64,
    /// Arrivals shed by the open-loop valve.
    pub shed: u64,
    /// Simulated time consumed (ns).
    pub sim_ns: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Retired flows per wall-clock second.
    pub flows_per_sec: f64,
    /// Scheduler events processed.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Flows still live at shutdown.
    pub slab_live: usize,
    /// Peak concurrently-live flows.
    pub slab_peak: usize,
    /// Flow-slab slots ever created (resident-memory proxy; bounded by
    /// peak concurrency plus the id quarantine, not by `retired`).
    pub slab_capacity: usize,
    /// Packet-arena high-water mark (slots ever created).
    pub arena_capacity: usize,
    /// Packets ever allocated through the arena.
    pub arena_allocated: u64,
    /// Switch drops.
    pub drops: u64,
    /// Per-class FCT reports.
    pub classes: Vec<ClassReport>,
}

fn slowdown_q(s: &QuantileSketch, q: f64) -> Option<f64> {
    s.quantile(q).map(|v| v / simnet::retire::SLOWDOWN_SCALE)
}

/// Runs one streaming configuration to its completion target.
pub fn run(cfg: &MillionConfig) -> MillionStats {
    let proto_cfg = ProtoConfig::ten_gig();
    let (builder, hosts, _) = leaf_spine(
        cfg.leaves,
        cfg.hosts_per_leaf,
        Bandwidth::gbps(10),
        Bandwidth::gbps(40),
        Dur::micros(20),
    );
    let net = proto_cfg.build_net(cfg.proto, builder);
    let app = StreamApp::new(cfg.stream(hosts));
    let mut sim = Simulator::new(
        net,
        proto_cfg.stack(cfg.proto),
        app,
        SimConfig {
            seed: cfg.seed,
            retire: Some(cfg.retire()),
            telemetry: cfg.telemetry.clone(),
            scheduler: cfg.scheduler,
            coalesce: cfg.coalesce,
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    sim.run();
    let wall_secs = t0.elapsed().as_secs_f64();
    crate::artifacts::maybe_export(
        sim.core(),
        format!("leaf_spine({},{})", cfg.leaves, cfg.hosts_per_leaf),
        format!("{cfg:?}"),
    );

    let core = sim.core();
    let retirer = core.retirer().expect("streaming run retires flows");
    let classes = retirer
        .classes()
        .iter()
        .map(|c| ClassReport {
            name: c.name.clone(),
            count: c.count,
            sketch: FctSummary::from_sketch(&c.fct_ns),
            exact: c.exact.summary(),
            fct_sketch: c.fct_ns.clone(),
            exact_fct_ns: c.exact.records().iter().map(|r| r.fct_ns() as f64).collect(),
            slowdown_p50: slowdown_q(&c.slowdown_milli, 0.5),
            slowdown_p99: slowdown_q(&c.slowdown_milli, 0.99),
        })
        .collect();
    let (slab_live, slab_peak, slab_capacity) = core.flow_slab_stats();
    let arena = core.packet_arena();
    let retired = retirer.total();
    let events = core.events_processed();
    MillionStats {
        completed: sim.app().completed(),
        retired,
        started: sim.app().started(),
        shed: sim.app().shed(),
        sim_ns: core.now().nanos(),
        wall_secs,
        flows_per_sec: retired as f64 / wall_secs.max(1e-9),
        events,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        slab_live,
        slab_peak,
        slab_capacity,
        arena_capacity: arena.capacity(),
        arena_allocated: arena.allocated_total(),
        drops: core.total_drops(),
        classes,
    }
}

/// Asserts every sketch quantile of every populated class sits within
/// `2·alpha` (relative) of the exact oracle value at the same rank.
/// Requires a run made with [`RetireConfig::keep_exact`]; returns the
/// checked class count.
///
/// The oracle uses the sketch's own floor-rank convention
/// (`sorted[floor(q·(n−1))]`): that is the order statistic the sketch's
/// α-relative-error guarantee is stated against, so the bound holds
/// deterministically at any sample count. Interpolating percentile
/// conventions disagree by the gap between adjacent order statistics,
/// which a heavy-tailed FCT distribution makes arbitrarily large.
///
/// # Panics
///
/// Panics if the run kept no exact records or a quantile falls outside
/// the bound.
pub fn assert_sketch_matches_exact(stats: &MillionStats, alpha: f64) -> usize {
    let mut checked = 0;
    for c in &stats.classes {
        if c.count == 0 {
            continue;
        }
        assert!(
            !c.exact_fct_ns.is_empty(),
            "{}: oracle run must keep exact records",
            c.name
        );
        assert_eq!(c.exact_fct_ns.len() as u64, c.count, "{}: counts diverge", c.name);
        let mut sorted = c.exact_fct_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite FCTs"));
        // Mean is tracked exactly (running sum), so it must agree to
        // floating-point precision, not just within α.
        let exact_mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let sketch_mean = c.fct_sketch.mean().expect("non-empty class sketch");
        assert!(
            (sketch_mean - exact_mean).abs() / exact_mean < 1e-9,
            "{}: sketch mean {sketch_mean} vs exact {exact_mean}",
            c.name
        );
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let want = sorted[(q * (sorted.len() - 1) as f64).floor() as usize];
            let got = c.fct_sketch.quantile(q).expect("non-empty class sketch");
            assert!(
                (got - want).abs() / want <= 2.0 * alpha,
                "{}: sketch q{q} {got} vs exact {want} beyond 2α",
                c.name
            );
        }
        checked += 1;
    }
    assert!(checked > 0, "no class had both sketch and exact records");
    checked
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The oracle configuration at reduced scale: retirement on with
    /// exact records kept, so the 2α agreement check runs against the
    /// very same flows the sketches saw.
    #[test]
    fn oracle_run_validates_sketches_and_bounds_slab() {
        // Full oracle scale: the slab bound needs enough flows that the
        // 2 ms id-quarantine (arrival_rate × reuse_after ids) is small
        // against the total.
        let cfg = MillionConfig::oracle();
        let stats = run(&cfg);
        assert!(
            stats.completed >= cfg.target_flows,
            "completed {}",
            stats.completed
        );
        // All but the last FIN-ack stragglers retired through sketches.
        assert!(
            stats.retired >= cfg.target_flows * 95 / 100,
            "retired {} of {} completed",
            stats.retired,
            stats.completed
        );
        assert_eq!(assert_sketch_matches_exact(&stats, cfg.alpha), 2);
        // Bounded memory: the slab never grew anywhere near the flow
        // count — it tracks peak concurrency plus the id quarantine.
        assert!(
            stats.slab_capacity < stats.retired as usize / 2,
            "slab capacity {} vs {} retired flows",
            stats.slab_capacity,
            stats.retired
        );
        assert!(stats.slab_peak <= stats.slab_capacity);
        // Both classes saw traffic, mice dominating.
        assert!(stats.classes[0].count > stats.classes[1].count);
        assert!(stats.classes[1].count > 0, "web-search class starved");
    }

    #[test]
    fn same_seed_same_outcome() {
        let cfg = MillionConfig {
            target_flows: 1_500,
            ..MillionConfig::oracle()
        };
        let (a, b) = (run(&cfg), run(&cfg));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.retired, b.retired);
        assert_eq!(a.started, b.started);
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.events, b.events);
        assert_eq!(a.slab_capacity, b.slab_capacity);
        assert_eq!(a.arena_allocated, b.arena_allocated);
    }
}
