//! Figs. 12 and 15 — the incast communication pattern.
//!
//! A receiver requests fixed-size blocks from `n` senders over
//! persistent connections; all senders respond synchronously and the
//! next round starts only when every block arrived. Fig. 12 runs the
//! testbed variant (1 Gbps, 256 KB buffers, 256 KB blocks, up to 100
//! senders); Fig. 15 the large-scale one (10 Gbps, 512 KB buffers,
//! blocks of 64/128/256 KB, up to 400 senders, 2 s horizon).

use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::TelemetryConfig;
use workloads::{IncastApp, IncastConfig};

use crate::proto::{Proto, ProtoConfig};
use crate::util::{mean_of, sample_queue, trace_points};

/// One incast run's parameters.
#[derive(Debug, Clone)]
pub struct IncastExpConfig {
    /// Protocol under test.
    pub proto: Proto,
    /// Number of senders.
    pub senders: usize,
    /// Block size per sender per round.
    pub block_bytes: u64,
    /// Rounds to run (the run also stops at `horizon` if set).
    pub rounds: u32,
    /// Link rate (all links identical).
    pub rate: Bandwidth,
    /// Switch buffer per port.
    pub buffer_bytes: u64,
    /// Per-link propagation delay.
    pub link_delay: Dur,
    /// Hard stop (Fig. 15 uses a 2 s horizon).
    pub horizon: Option<Dur>,
    /// Open fresh connections every round (the classic incast setup);
    /// otherwise persistent connections carry every block.
    pub fresh_connections: bool,
    /// Protocol knobs.
    pub proto_cfg: ProtoConfig,
    /// RNG seed.
    pub seed: u64,
    /// Structured telemetry (event log, gauges, export; off by default).
    pub telemetry: TelemetryConfig,
}

impl IncastExpConfig {
    /// Fig. 12 testbed settings (scaled round count).
    pub fn testbed(proto: Proto, senders: usize, rounds: u32) -> Self {
        Self {
            proto,
            senders,
            block_bytes: 256 * 1024,
            rounds,
            rate: Bandwidth::gbps(1),
            buffer_bytes: 256 * 1024,
            link_delay: Dur::nanos(500),
            horizon: None,
            fresh_connections: true,
            proto_cfg: ProtoConfig::default(),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }

    /// Fig. 15 large-scale settings (10 Gbps, 512 KB buffers).
    pub fn large(proto: Proto, senders: usize, block_bytes: u64, horizon: Dur) -> Self {
        Self {
            proto,
            senders,
            block_bytes,
            rounds: u32::MAX,
            rate: Bandwidth::gbps(10),
            buffer_bytes: 512 * 1024,
            link_delay: Dur::micros(20),
            horizon: Some(horizon),
            fresh_connections: true,
            proto_cfg: ProtoConfig::ten_gig(),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }
}

/// One incast run's results.
#[derive(Debug, Clone, Copy)]
pub struct IncastExpResult {
    /// Application goodput over the run (bits/s).
    pub goodput_bps: f64,
    /// Mean over rounds of the worst per-flow timeout count (Fig. 15b).
    pub max_timeouts_per_block: f64,
    /// Mean sampled queue at the receiver's downlink (bytes).
    pub avg_queue_bytes: f64,
    /// Peak queue at the receiver's downlink (bytes).
    pub max_queue_bytes: u64,
    /// Total drops at the switch.
    pub drops: u64,
    /// Completed rounds.
    pub rounds: u32,
}

/// Runs one incast configuration.
pub fn run(cfg: &IncastExpConfig) -> IncastExpResult {
    let (t, hosts, sw) = {
        let mut b = star(cfg.senders + 1, cfg.rate, cfg.link_delay);
        b.0.switch_buffer(cfg.buffer_bytes);
        b
    };
    let net = cfg.proto_cfg.build_net(cfg.proto, t);
    let receiver = hosts[cfg.senders];
    // The request needs one switch traversal: two serialisations of a
    // minimum frame plus propagation.
    let request_delay = Dur(2 * cfg.rate.serialize(64).as_nanos() + 2 * cfg.link_delay.as_nanos());
    let app = IncastApp::new(IncastConfig {
        senders: hosts[..cfg.senders].to_vec(),
        receiver,
        block_bytes: cfg.block_bytes,
        rounds: cfg.rounds,
        request_delay,
        fresh_per_round: cfg.fresh_connections,
    });
    let mut sim = Simulator::new(
        net,
        cfg.proto_cfg.stack(cfg.proto),
        app,
        SimConfig {
            seed: cfg.seed,
            end: cfg.horizon.map(|h| Time(h.as_nanos())),
            host_jitter: None,
            packet_log: 0,
            telemetry: cfg.telemetry.clone(),
            ..Default::default()
        },
    );
    let port = sim.core().route_of(sw, receiver).expect("downlink");
    sample_queue(sim.core_mut(), sw, port, Dur::micros(100), "queue");
    sim.run();
    crate::artifacts::maybe_export(
        sim.core(),
        format!("star(n={})", cfg.senders + 1),
        format!("{cfg:?}"),
    );

    let app = sim.app();
    let stats = sim.core().port_stats(sw, port);
    let (max_q, drops) = (stats.max_queue_bytes, stats.drops);
    let queue = trace_points(sim.core(), "queue");
    // For horizon-bounded runs goodput spans the whole horizon.
    let goodput_bps = if let Some(h) = cfg.horizon {
        let total = cfg.block_bytes * cfg.senders as u64 * u64::from(app.rounds_done());
        total as f64 * 8.0 / h.as_secs_f64()
    } else {
        app.goodput_bps()
    };
    // Fig. 15b's "max timeouts per block": with fresh connections the
    // flow list groups naturally by round, so incomplete rounds (cut by
    // the horizon or wedged in RTO backoff) still contribute.
    let max_timeouts_per_block = if cfg.fresh_connections {
        let flows: Vec<u64> = sim.core().flows().map(|(_, st)| st.timeouts).collect();
        let groups: Vec<&[u64]> = flows.chunks(cfg.senders).collect();
        if groups.is_empty() {
            0.0
        } else {
            groups
                .iter()
                .map(|g| *g.iter().max().unwrap_or(&0) as f64)
                .sum::<f64>()
                / groups.len() as f64
        }
    } else {
        app.mean_max_timeouts_per_block()
    };
    IncastExpResult {
        goodput_bps,
        max_timeouts_per_block,
        avg_queue_bytes: mean_of(&queue),
        max_queue_bytes: max_q,
        drops,
        rounds: app.rounds_done(),
    }
}

/// Runs a sweep over sender counts for one protocol (a Fig. 12 / 15
/// series). `make` builds the per-point config.
pub fn sweep(
    counts: &[usize],
    make: impl Fn(usize) -> IncastExpConfig,
) -> Vec<(usize, IncastExpResult)> {
    counts.iter().map(|&n| (n, run(&make(n)))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfc_incast_no_loss_high_goodput() {
        let r = run(&IncastExpConfig::testbed(Proto::Tfc, 24, 6));
        assert_eq!(r.drops, 0, "TFC dropped packets in incast");
        assert!(
            r.max_timeouts_per_block < 0.01,
            "TFC timeouts {}",
            r.max_timeouts_per_block
        );
        // Paper Fig. 12a: 800–900 Mbps.
        assert!(
            r.goodput_bps > 0.7e9,
            "TFC incast goodput {:.0} Mbps",
            r.goodput_bps / 1e6
        );
        // Fig. 12b: near-zero backlog.
        assert!(r.avg_queue_bytes < 20_000.0);
    }

    #[test]
    fn tcp_incast_collapses_with_many_senders() {
        let few = run(&IncastExpConfig::testbed(Proto::Tcp, 4, 4));
        let many = run(&IncastExpConfig::testbed(Proto::Tcp, 48, 4));
        assert!(
            many.goodput_bps < few.goodput_bps * 0.5,
            "TCP should collapse: few {:.0} Mbps, many {:.0} Mbps",
            few.goodput_bps / 1e6,
            many.goodput_bps / 1e6
        );
        assert!(many.max_timeouts_per_block > 0.1);
        assert!(many.drops > 0);
    }

    #[test]
    fn tcp_fills_buffer_in_incast() {
        let r = run(&IncastExpConfig::testbed(Proto::Tcp, 48, 3));
        // Fig. 12b: TCP max queue close to the 256 KB buffer.
        assert!(
            r.max_queue_bytes > 200_000,
            "TCP max queue {}",
            r.max_queue_bytes
        );
    }

    #[test]
    fn tfc_outlasts_tcp_at_scale_10g() {
        // Past the collapse point (paper: ≥ ~50 senders; here ~100) TCP
        // wedges in RTO backoff while TFC stays near line rate.
        let horizon = Dur::millis(80);
        let tfc = run(&IncastExpConfig::large(Proto::Tfc, 128, 64 * 1024, horizon));
        let tcp = run(&IncastExpConfig::large(Proto::Tcp, 128, 64 * 1024, horizon));
        assert!(
            tfc.goodput_bps > 5e9,
            "TFC at scale: {:.2} Gbps",
            tfc.goodput_bps / 1e9
        );
        assert!(tfc.goodput_bps > 2.0 * tcp.goodput_bps.max(1.0));
        assert_eq!(tfc.drops, 0);
        assert!(tcp.drops > 0);
    }
}
