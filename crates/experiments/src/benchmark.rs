//! Figs. 13 and 16 — flow completion times under the realistic
//! benchmark mix (query incasts + short messages + heavy-tailed
//! background flows, modelled on the DCTCP web-search workload).
//!
//! Fig. 13 runs on the 9-host testbed; Fig. 16 on the 18-leaf × 20-host
//! large-scale topology (1 Gbps down, 10 Gbps up, 20 µs links).

use metrics::{FctSummary, SizeBin};
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::{leaf_spine, testbed};
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::TelemetryConfig;
use workloads::{BenchmarkApp, BenchmarkConfig};

use crate::proto::{Proto, ProtoConfig};

/// Which topology the benchmark runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// The 9-host / 4-switch testbed of Fig. 4.
    Testbed,
    /// The §6.2.2 topology. Parameters: `(leaves, hosts_per_leaf)` —
    /// the paper uses (18, 20); smaller values keep CI runs fast.
    LeafSpine {
        /// Number of leaf switches.
        leaves: usize,
        /// Servers per leaf.
        hosts_per_leaf: usize,
    },
}

/// Figs. 13/16 parameters.
#[derive(Debug, Clone)]
pub struct BenchExpConfig {
    /// Protocol under test.
    pub proto: Proto,
    /// Topology.
    pub scale: BenchScale,
    /// Flow-generation horizon.
    pub horizon: Dur,
    /// Extra drain time after the horizon.
    pub drain: Dur,
    /// Mean interarrival of query fan-ins.
    pub query_interarrival: Dur,
    /// Responders per query (`None` = all other hosts).
    pub query_fanout: Option<usize>,
    /// Mean interarrival of short messages.
    pub short_interarrival: Dur,
    /// Mean interarrival of background flows.
    pub bg_interarrival: Dur,
    /// RNG seed.
    pub seed: u64,
    /// Structured telemetry (event log, gauges, export; off by default).
    pub telemetry: TelemetryConfig,
}

impl BenchExpConfig {
    /// Fig. 13: testbed scale.
    pub fn testbed(proto: Proto) -> Self {
        Self {
            proto,
            scale: BenchScale::Testbed,
            horizon: Dur::millis(300),
            drain: Dur::millis(500),
            query_interarrival: Dur::millis(5),
            query_fanout: None,
            short_interarrival: Dur::millis(12),
            bg_interarrival: Dur::millis(5),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }

    /// Fig. 16: large-scale (the paper uses 18 × 20; pass smaller values
    /// to bound run time).
    pub fn large(proto: Proto, leaves: usize, hosts_per_leaf: usize) -> Self {
        Self {
            proto,
            scale: BenchScale::LeafSpine {
                leaves,
                hosts_per_leaf,
            },
            horizon: Dur::millis(200),
            drain: Dur::millis(600),
            query_interarrival: Dur::millis(10),
            query_fanout: None,
            short_interarrival: Dur::millis(3),
            bg_interarrival: Dur::millis(1),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }
}

/// Figs. 13/16 output for one protocol.
#[derive(Debug)]
pub struct BenchResult {
    /// Query-flow FCT percentiles (Fig. 13a / 16a).
    pub query: Option<FctSummary>,
    /// Background + short flows: per-size-bin 99.9th FCT in µs
    /// (Fig. 13b / 16b).
    pub background_bins: Vec<(SizeBin, f64)>,
    /// Background + short flow FCT summary.
    pub background: Option<FctSummary>,
    /// Flows started / completed (coverage check).
    pub started: u64,
    /// Completed flows.
    pub completed: u64,
    /// Total drops across all switches.
    pub drops: u64,
}

/// Runs one benchmark configuration.
pub fn run(cfg: &BenchExpConfig) -> BenchResult {
    let proto_cfg = match cfg.scale {
        BenchScale::Testbed => ProtoConfig::default(),
        BenchScale::LeafSpine { .. } => ProtoConfig::ten_gig(),
    };
    let (builder, hosts) = match cfg.scale {
        BenchScale::Testbed => {
            let (b, hosts, _) = testbed(Dur::nanos(500));
            (b, hosts)
        }
        BenchScale::LeafSpine {
            leaves,
            hosts_per_leaf,
        } => {
            let (b, hosts, _) = leaf_spine(
                leaves,
                hosts_per_leaf,
                Bandwidth::gbps(1),
                Bandwidth::gbps(10),
                Dur::micros(20),
            );
            (b, hosts)
        }
    };
    let net = proto_cfg.build_net(cfg.proto, builder);
    let bench_cfg = BenchmarkConfig {
        hosts,
        horizon: cfg.horizon,
        query_interarrival: cfg.query_interarrival,
        query_bytes: 2_000,
        query_fanout: cfg.query_fanout,
        short_interarrival: cfg.short_interarrival,
        short_range: (50_000, 1_000_000),
        bg_interarrival: cfg.bg_interarrival,
        bg_sizes: workloads::dist::background_flow_sizes(),
    };
    let app = BenchmarkApp::new(bench_cfg);
    let mut sim = Simulator::new(
        net,
        proto_cfg.stack(cfg.proto),
        app,
        SimConfig {
            seed: cfg.seed,
            end: Some(Time(cfg.horizon.as_nanos() + cfg.drain.as_nanos())),
            host_jitter: None,
            packet_log: 0,
            telemetry: cfg.telemetry.clone(),
            ..Default::default()
        },
    );
    sim.run();
    crate::artifacts::maybe_export(sim.core(), format!("{:?}", cfg.scale), format!("{cfg:?}"));

    let (query, short, bg) = sim.app().fct_by_class(sim.core());
    let mut background = bg;
    for r in short.records() {
        background.record(*r);
    }
    let background_bins = background
        .per_bin()
        .into_iter()
        .map(|(bin, s)| (bin, s.p999_us))
        .collect();
    let completed = sim
        .core()
        .flows()
        .filter(|(_, st)| st.receiver_done_at.is_some())
        .count() as u64;
    BenchResult {
        query: query.summary(),
        background: background.summary(),
        background_bins,
        started: sim.app().flows_started(),
        completed,
        drops: sim.core().total_drops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_benchmark_tfc_beats_tcp_on_queries() {
        let tfc = run(&BenchExpConfig::testbed(Proto::Tfc));
        let tcp = run(&BenchExpConfig::testbed(Proto::Tcp));
        let tfc_q = tfc.query.expect("TFC query flows completed");
        let tcp_q = tcp.query.expect("TCP query flows completed");
        // Fig. 13a: TFC's mean and tails sit far below TCP's (TCP's
        // 99.99th hits the 200 ms RTO).
        assert!(
            tfc_q.mean_us < tcp_q.mean_us,
            "TFC mean {:.0} vs TCP {:.0}",
            tfc_q.mean_us,
            tcp_q.mean_us
        );
        assert!(tfc_q.p999_us < tcp_q.p999_us);
        // TFC query FCT is sub-millisecond even at the 99.9th.
        assert!(tfc_q.p999_us < 3_000.0, "TFC p999 {:.0} µs", tfc_q.p999_us);
        assert_eq!(tfc.drops, 0, "TFC dropped packets");
    }

    #[test]
    fn testbed_benchmark_completes_most_flows() {
        let r = run(&BenchExpConfig::testbed(Proto::Tfc));
        assert!(r.started > 100, "only {} flows started", r.started);
        assert!(
            r.completed as f64 > r.started as f64 * 0.95,
            "{} of {} completed",
            r.completed,
            r.started
        );
        // All six size bins should be populated by the mix.
        assert!(r.background_bins.len() >= 5);
    }

    #[test]
    fn small_leaf_spine_benchmark_runs() {
        let r = run(&BenchExpConfig::large(Proto::Tfc, 3, 4));
        assert!(r.query.is_some());
        assert!(r.completed > 0);
    }
}
