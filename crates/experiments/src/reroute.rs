//! Reroute-on-link-down recovery on a multipath fat-tree (ROADMAP
//! "Multi-path fabrics"; the open edge §7 of the paper leaves to
//! future work).
//!
//! Backlogged cross-pod flows leave one edge switch of a k-ary
//! fat-tree, sprayed over its `k/2` equal-cost uplinks by the
//! deterministic `(flow, hop)` ECMP hash. Mid-run the uplink carrying
//! the most flows flaps down and back: forward traffic is absorbed by
//! the surviving members at the next hash selection (the `Rerouted`
//! telemetry event counts the absorbable destinations), but the
//! asymmetry bites on the *reverse* path — ACKs that hash through the
//! partitioned aggregation switch have no equal-cost sibling toward
//! the source edge and die at its single-path hop, so the affected
//! flows stall until the link returns. Recovery is judged on the
//! aggregate delivery rate exactly as in [`crate::faults`]: dip depth
//! below the pre-fault baseline and time from the clear back to 90 %
//! of baseline. TFC must reclaim the stalled flows' tokens (rho
//! notices the silence) and re-acquire windows when the link heals;
//! drop-tail TCP and DCTCP sit out RTO backoff first.

use std::path::PathBuf;

use chaos::recovery::{self, DipSummary};
use chaos::FaultTimeline;
use simnet::node::ecmp_hash;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::fat_tree;
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::{LogMode, TelemetryConfig, TraceEvent};
use workloads::{OnOffApp, OnOffFlow};

use crate::proto::{Proto, ProtoConfig};

/// Reroute-run parameters.
#[derive(Debug, Clone)]
pub struct RerouteConfig {
    /// Protocol under test.
    pub proto: Proto,
    /// Fat-tree arity (even, ≥ 4 so edges have ≥ 2 uplinks).
    pub k: usize,
    /// Backlogged cross-pod senders, all behind one edge switch
    /// (at most `k/2`, the hosts that edge owns).
    pub senders: usize,
    /// Total run time.
    pub horizon: Dur,
    /// When the uplink goes down.
    pub fault_at: Dur,
    /// How long it stays down.
    pub fault_dur: Dur,
    /// Bin width for the aggregate delivery rate.
    pub bin: Dur,
    /// Host access rate.
    pub host_rate: Bandwidth,
    /// Fabric (edge-agg-core) rate.
    pub fabric_rate: Bandwidth,
    /// Per-link propagation delay.
    pub link_delay: Dur,
    /// Protocol knobs.
    pub proto_cfg: ProtoConfig,
    /// RNG seed.
    pub seed: u64,
    /// Structured telemetry; the constructors enable the event log
    /// (dip metrics and `Rerouted` records need it).
    pub telemetry: TelemetryConfig,
}

impl RerouteConfig {
    /// Defaults: a k=8 fat-tree (4 equal-cost uplinks per edge) made
    /// asymmetric by the flap, sized so the whole suite stays fast.
    /// `RTO_min` is scaled to the simulated RTT (2 ms, the usual
    /// datacenter-incast setting) for every protocol — a flow whose
    /// reverse path dies recovers only by retransmission timeout, and
    /// the paper's WAN-ish 200 ms floor would dwarf a 60 ms horizon.
    pub fn scaled(proto: Proto) -> Self {
        let mut proto_cfg = ProtoConfig::default();
        proto_cfg.tcp.min_rto = Dur::millis(2);
        proto_cfg.tfc_host.min_rto = Dur::millis(2);
        Self {
            proto,
            k: 8,
            senders: 4,
            horizon: Dur::millis(60),
            fault_at: Dur::millis(20),
            fault_dur: Dur::millis(10),
            bin: Dur::micros(500),
            host_rate: Bandwidth::gbps(1),
            fabric_rate: Bandwidth::gbps(10),
            link_delay: Dur::micros(1),
            proto_cfg,
            seed: 1,
            telemetry: TelemetryConfig {
                events: LogMode::Full,
                sample_one_in: 1,
                tfc_gauges: true,
                profile: false,
                trace: telemetry::TraceConfig::Off,
                export: None,
            },
        }
    }

    /// Like [`Self::scaled`] but exporting artifacts under `run`.
    pub fn exporting(proto: Proto, run: impl Into<String>) -> Self {
        let mut cfg = Self::scaled(proto);
        cfg.telemetry.export = Some(run.into());
        cfg
    }

    /// The edge uplink port the timeline flaps: flow ids are assigned
    /// in sender order starting at 0 and the edge switch picks
    /// `uplinks[ecmp_hash(flow, 0) % (k/2)]`, so the busiest member is
    /// known before the run — downing it guarantees the fault actually
    /// carries traffic (lowest port wins ties, deterministically).
    pub fn victim_uplink(&self) -> usize {
        let half = self.k / 2;
        let mut load = vec![0u32; half];
        for f in 0..self.senders as u64 {
            load[(ecmp_hash(f, 0) % half as u64) as usize] += 1;
        }
        (0..half).max_by_key(|&p| (load[p], std::cmp::Reverse(p))).unwrap()
    }
}

/// Outcome of one reroute run.
#[derive(Debug)]
pub struct RerouteResult {
    /// Protocol under test.
    pub proto: Proto,
    /// Link-down time, ns.
    pub fault_start_ns: u64,
    /// Link-up time, ns.
    pub fault_end_ns: u64,
    /// Aggregate-goodput dip around the outage. The flows sprayed onto
    /// the surviving uplinks keep delivering, so depth < 1 measures the
    /// affected fraction; `recovery_ns` is the headline reroute metric.
    pub dip: Option<DipSummary>,
    /// `Rerouted` telemetry records as `(node, port, dests)` — one per
    /// switch end of the downed link, with the count of destinations a
    /// surviving equal-cost member absorbs.
    pub reroutes: Vec<(u32, u16, u64)>,
    /// Time from link-up to the first window (re-)acquisition note —
    /// TFC token grants, or a baseline stack growing cwnd again
    /// (`None` when the stack never notes one).
    pub reacquire_ns: Option<u64>,
    /// Total bytes delivered over the run.
    pub delivered: u64,
    /// Packets lost to the dead link across all switch ports (in-flight
    /// drops at the downed port plus reverse-path packets dying at the
    /// partitioned aggregation switch's single-path hop).
    pub fault_drops: u64,
    /// Ordinary queue-overflow drops across all switch ports.
    pub queue_drops: u64,
    /// Unroutable-packet drops (should stay 0: the fat-tree fill keeps
    /// every destination reachable; repair is selection-time only).
    pub no_route_drops: u64,
    /// Artifact directory when export was configured.
    pub export_dir: Option<PathBuf>,
}

/// Runs one protocol through the reroute scenario.
pub fn run(cfg: &RerouteConfig) -> RerouteResult {
    let half = cfg.k / 2;
    assert!(cfg.k >= 4 && cfg.k % 2 == 0, "need ≥ 2 uplinks per edge");
    assert!(
        (1..=half).contains(&cfg.senders),
        "senders must fit one edge switch (1..={half})"
    );
    let (t, hosts, switches) = fat_tree(cfg.k, cfg.host_rate, cfg.fabric_rate, cfg.link_delay);
    let net = cfg.proto_cfg.build_net(cfg.proto, t);
    // `switches` lists the (k/2)^2 cores, then per pod aggregation then
    // edge switches; pod 0's first edge owns hosts[0..k/2] and its
    // ports 0..k/2-1 are the aggregation uplinks, in agg order.
    let edge0 = switches[half * half + half];
    let horizon = cfg.horizon.as_nanos();
    let n_hosts = hosts.len();
    let flows_cfg: Vec<OnOffFlow> = (0..cfg.senders)
        .map(|i| OnOffFlow {
            src: hosts[i],
            // Cross-pod peers, one per sender, in the last pod.
            dst: hosts[n_hosts - 1 - i],
            active: vec![(0, horizon)],
        })
        .collect();
    let app = OnOffApp::new(flows_cfg, 128 * 1024).with_meters(cfg.bin);
    let mut sim = Simulator::new(
        net,
        cfg.proto_cfg.stack(cfg.proto),
        app,
        SimConfig {
            seed: cfg.seed,
            end: Some(Time(horizon)),
            host_jitter: None,
            packet_log: 0,
            telemetry: cfg.telemetry.clone(),
            ..Default::default()
        },
    );
    let at = Time(cfg.fault_at.as_nanos());
    FaultTimeline::new()
        .link_flap(at, cfg.fault_dur, edge0, cfg.victim_uplink())
        .install(sim.core_mut());
    sim.run();
    let export_dir = crate::artifacts::maybe_export(
        sim.core(),
        format!("fat_tree({})", cfg.k),
        format!("{cfg:?}"),
    );

    let fault_start_ns = at.nanos();
    let fault_end_ns = fault_start_ns + cfg.fault_dur.as_nanos();
    let mut deliveries = Vec::new();
    let mut acquired = Vec::new();
    let mut reroutes = Vec::new();
    for rec in sim.core().telemetry().log.records() {
        match rec.event {
            TraceEvent::PktDeliver { bytes, .. } => deliveries.push((rec.at_ns, bytes)),
            TraceEvent::FlowWindowAcquired { .. } => acquired.push(rec.at_ns),
            TraceEvent::Rerouted { node, port, dests } => reroutes.push((node, port, dests)),
            _ => {}
        }
    }
    let dip = recovery::goodput_dip(&deliveries, fault_start_ns, fault_end_ns, cfg.bin.as_nanos());
    // Every fat-tree switch has exactly k ports.
    let (mut fault_drops, mut queue_drops, mut no_route_drops) = (0, 0, 0);
    for &sw in &switches {
        for p in 0..cfg.k {
            let stats = sim.core().port_stats(sw, p);
            fault_drops += stats.fault_drops;
            queue_drops += stats.drops;
            no_route_drops += stats.no_route_drops;
        }
    }
    RerouteResult {
        proto: cfg.proto,
        fault_start_ns,
        fault_end_ns,
        dip,
        reroutes,
        reacquire_ns: recovery::time_to_first_after(&acquired, fault_end_ns),
        delivered: sim.core().flows().map(|(_, st)| st.delivered).sum(),
        fault_drops,
        queue_drops,
        no_route_drops,
        export_dir,
    }
}

/// Runs all three protocols through the same scenario and seed.
pub fn run_matrix(seed: u64) -> Vec<RerouteResult> {
    Proto::ALL
        .iter()
        .map(|&proto| {
            let mut cfg = RerouteConfig::scaled(proto);
            cfg.seed = seed;
            run(&cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_uplink_is_the_busiest_member() {
        let cfg = RerouteConfig::scaled(Proto::Tfc);
        let half = cfg.k / 2;
        let victim = cfg.victim_uplink();
        assert!(victim < half);
        // At least one of the senders' flows hashes onto it.
        let hits = (0..cfg.senders as u64)
            .filter(|&f| (ecmp_hash(f, 0) % half as u64) as usize == victim)
            .count();
        assert!(hits >= 1, "victim uplink carries no flow");
    }

    /// The headline scenario: the flap dents goodput (the affected
    /// flows' ACK path dies at the partitioned aggregation switch),
    /// both switch ends record the repair, and the rate recovers after
    /// the link returns.
    #[test]
    fn tfc_reroute_dips_and_recovers() {
        let r = run(&RerouteConfig::scaled(Proto::Tfc));
        assert!(r.delivered > 0);
        let dip = r.dip.expect("pre-fault baseline exists");
        assert!(dip.depth > 0.0, "flap left no mark: {dip:?}");
        assert!(
            dip.recovery_ns.is_some(),
            "goodput never recovered: {dip:?}"
        );
        assert_eq!(r.reroutes.len(), 2, "one record per switch end");
        // The edge end can absorb every multi-uplink destination; the
        // aggregation end has single-path entries only (dests 0).
        let dests: Vec<u64> = r.reroutes.iter().map(|&(_, _, d)| d).collect();
        assert!(dests.iter().any(|&d| d > 0), "edge end absorbs nothing");
        assert!(r.fault_drops > 0, "a flapped uplink loses packets");
        assert_eq!(r.no_route_drops, 0, "repair is selection-time only");
    }

    /// All three protocols survive the same asymmetric flap and record
    /// comparable recovery metrics.
    #[test]
    fn matrix_records_recovery_for_every_protocol() {
        let results = run_matrix(5);
        assert_eq!(results.len(), Proto::ALL.len());
        for r in &results {
            assert!(r.delivered > 0, "{}: nothing delivered", r.proto.label());
            assert!(r.dip.is_some(), "{}: no baseline", r.proto.label());
            assert_eq!(r.reroutes.len(), 2, "{}: reroute records", r.proto.label());
        }
        let tfc = &results[0];
        assert_eq!(tfc.proto, Proto::Tfc);
        assert!(
            tfc.reacquire_ns.is_some(),
            "TFC re-acquires a token window after the link returns"
        );
        // TFC's token reclamation hands the freed window back faster
        // than the baselines' RTO-gated additive increase.
        for other in &results[1..] {
            if let (Some(t), Some(o)) = (tfc.reacquire_ns, other.reacquire_ns) {
                assert!(
                    t <= o,
                    "TFC reacquired in {t} ns, {} in {o} ns",
                    other.proto.label()
                );
            }
        }
    }

    /// Identical seed ⇒ identical outcome, ECMP spray included.
    #[test]
    fn reroute_runs_are_deterministic() {
        let a = run(&RerouteConfig::scaled(Proto::Tfc));
        let b = run(&RerouteConfig::scaled(Proto::Tfc));
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.fault_drops, b.fault_drops);
        assert_eq!(a.reroutes, b.reroutes);
        assert_eq!(a.dip.map(|d| d.recovery_ns), b.dip.map(|d| d.recovery_ns));
    }
}
