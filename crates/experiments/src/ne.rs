//! Fig. 7 — accuracy of the effective-flow count with inactive flows.
//!
//! Five continuously backlogged flows H4→H6 share NF2's port toward H6
//! with a ramp of H1→H6 flows that activate one per step and then fall
//! silent one per step. The port's measured `Ne` must track
//! `n1(t)/ratio + n2`, where `ratio` is the RTT ratio between the
//! cross-rack H1 flows and the intra-rack delimiter flow from H4.

use simnet::sim::{SimConfig, Simulator};
use simnet::topology::testbed;
use simnet::units::{Dur, Time};
use telemetry::TelemetryConfig;
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};
use workloads::{OnOffApp, OnOffFlow};

use crate::util::trace_points;

/// Fig. 7 parameters.
#[derive(Debug, Clone)]
pub struct NeConfig {
    /// Ramp step (the paper uses 1 s; scaled down by default).
    pub step: Dur,
    /// Number of ramping flows (paper: 10).
    pub n1_max: usize,
    /// Number of continuous flows (paper: 5).
    pub n2: usize,
    /// Propagation delay per link.
    pub link_delay: Dur,
    /// RNG seed.
    pub seed: u64,
    /// Structured telemetry (event log, gauges, export; off by default).
    pub telemetry: TelemetryConfig,
}

impl Default for NeConfig {
    fn default() -> Self {
        Self {
            step: Dur::millis(20),
            n1_max: 10,
            n2: 5,
            link_delay: Dur::nanos(500),
            seed: 1,
            telemetry: TelemetryConfig::off(),
        }
    }
}

/// Fig. 7 output.
#[derive(Debug)]
pub struct NeResult {
    /// `(time_ns, measured_ne)` samples from the port engine.
    pub measured: Vec<(u64, f64)>,
    /// `(time_ns, active_n1)` ground truth of ramping-flow activity.
    pub active_n1: Vec<(u64, f64)>,
    /// Number of continuous flows (`n2`).
    pub n2: usize,
    /// Estimated RTT ratio between H1 flows and the H4 delimiter.
    pub rtt_ratio: f64,
}

impl NeResult {
    /// Expected `Ne` at time `t_ns`: `n1(t)/ratio + n2` (Eq. 1).
    pub fn expected_at(&self, t_ns: u64) -> f64 {
        let n1 = self
            .active_n1
            .iter()
            .take_while(|&&(t, _)| t <= t_ns)
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        n1 / self.rtt_ratio + self.n2 as f64
    }
}

/// Runs the Fig. 7 experiment.
pub fn run(cfg: &NeConfig) -> NeResult {
    let (t, hosts, switches) = testbed(cfg.link_delay);
    let tfc_cfg = TfcSwitchConfig {
        trace: true,
        ..Default::default()
    };
    let net = t.build(TfcSwitchPolicy::factory(tfc_cfg));

    let step = cfg.step.as_nanos();
    let total_steps = (cfg.n1_max * 2 + 1) as u64;
    let horizon = step * total_steps;
    let h1 = hosts[0];
    let h4 = hosts[3];
    let h6 = hosts[5];

    // The continuous H4 flows start first, so the delimiter at NF2's
    // port toward H6 is an intra-rack flow — like the paper's setup.
    let mut flows = Vec::new();
    for _ in 0..cfg.n2 {
        flows.push(OnOffFlow {
            src: h4,
            dst: h6,
            active: vec![(0, horizon)],
        });
    }
    // Ramp flow i activates at (i+1)·step and goes silent at
    // (n1_max + i + 1)·step: count rises 1..n1_max then falls to 0.
    let mut activity: Vec<(u64, f64)> = vec![(0, 0.0)];
    for i in 0..cfg.n1_max {
        let on = step * (i as u64 + 1);
        let off = step * ((cfg.n1_max + i) as u64 + 1);
        flows.push(OnOffFlow {
            src: h1,
            dst: h6,
            active: vec![(on, off)],
        });
        activity.push((on, 0.0));
        activity.push((off, 0.0));
    }
    activity.sort_unstable_by_key(|&(t, _)| t);
    for point in activity.iter_mut() {
        let t = point.0;
        let n_active = (0..cfg.n1_max)
            .filter(|&i| {
                let on = step * (i as u64 + 1);
                let off = step * ((cfg.n1_max + i) as u64 + 1);
                t >= on && t < off
            })
            .count();
        point.1 = n_active as f64;
    }

    let app = OnOffApp::new(flows, 64 * 1024);
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        app,
        SimConfig {
            seed: cfg.seed,
            end: Some(Time(horizon)),
            host_jitter: None,
            packet_log: 0,
            telemetry: cfg.telemetry.clone(),
            ..Default::default()
        },
    );
    sim.run();
    crate::artifacts::maybe_export(sim.core(), "testbed(6 hosts, 3 switches)", format!("{cfg:?}"));

    let nf2 = switches[2];
    let port = sim.core().route_of(nf2, h6).expect("route to H6");
    let prefix = format!("tfc.s{}.p{}", nf2.0, port);
    let measured = trace_points(sim.core(), &format!("{prefix}.ne"));
    assert!(!measured.is_empty(), "no Ne trace recorded");

    // RTT ratio estimate from hop counts: cross-rack H1 flows traverse
    // 4 links each way, intra-rack 2. Store-and-forward of a full frame
    // dominates, so the ratio is roughly hops_cross / hops_intra.
    let frame_us = 12.0; // 1500 B at 1 Gbps
    let prop_us = cfg.link_delay.as_micros_f64();
    let cross = 4.0 * (frame_us + prop_us);
    let intra = 2.0 * (frame_us + prop_us);
    let rtt_ratio = cross / intra;

    NeResult {
        measured,
        active_n1: activity,
        n2: cfg.n2,
        rtt_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ne_tracks_ramp() {
        let cfg = NeConfig::default();
        let r = run(&cfg);
        let step = cfg.step.as_nanos();
        // Early plateau: only the 5 continuous flows.
        let early: Vec<f64> = r
            .measured
            .iter()
            .filter(|&&(t, _)| t > step / 2 && t < step)
            .map(|&(_, v)| v)
            .collect();
        assert!(!early.is_empty());
        let early_mean = early.iter().sum::<f64>() / early.len() as f64;
        assert!(
            (early_mean - 5.0).abs() < 1.2,
            "expected ~5 effective flows early, got {early_mean}"
        );
        // Peak: between n1_max/ratio + n2 (RTT-biased sharing, Eq. 1)
        // and n1_max + n2 (the arbiter-paced sub-MSS regime equalises
        // flow rates, pushing each flow to one mark per slot).
        let peak_window = (step * 10, step * 11);
        let peak: Vec<f64> = r
            .measured
            .iter()
            .filter(|&&(t, _)| t > peak_window.0 && t < peak_window.1)
            .map(|&(_, v)| v)
            .collect();
        assert!(!peak.is_empty());
        let peak_mean = peak.iter().sum::<f64>() / peak.len() as f64;
        let lo = r.expected_at(step * 10 + step / 2) - 1.5;
        let hi = (cfg.n1_max + cfg.n2) as f64 + 1.5;
        assert!(
            peak_mean >= lo && peak_mean <= hi,
            "peak Ne {peak_mean} outside [{lo}, {hi}]"
        );
        // After the ramp drains, back to ~5.
        let late: Vec<f64> = r
            .measured
            .iter()
            .filter(|&&(t, _)| t > step * 20)
            .map(|&(_, v)| v)
            .collect();
        assert!(!late.is_empty());
        let late_mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            (late_mean - 5.0).abs() < 1.2,
            "expected ~5 effective flows late, got {late_mean}"
        );
    }
}
