//! A deterministic, shrink-free property-test harness.
//!
//! Replaces the workspace's former `proptest` dev-dependency with a
//! seeded case loop: every case derives its own generator from a fixed
//! base seed plus the case index, so failures are bit-reproducible and
//! the failing case can be re-run in isolation by seed. There is no
//! shrinking; instead the harness reports the case index and seed, and
//! callers put the generated inputs into their assertion messages.
//!
//! # Examples
//!
//! ```
//! use rng::props::{cases, vec_u64};
//!
//! cases(50, |_case, rng| {
//!     let v = vec_u64(rng, 1..20, 0..1_000);
//!     let mut sorted = v.clone();
//!     sorted.sort_unstable();
//!     assert_eq!(sorted.len(), v.len(), "inputs {v:?}");
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rngs::StdRng;
use crate::{Rng, SampleRange, SeedableRng};
use std::ops::Range;

/// Base seed for case derivation. Changing it re-rolls every generated
/// input in the workspace, so leave it fixed.
pub const BASE_SEED: u64 = 0x7F4A_7C15_0000_0000;

/// The seed case `i` runs under (exposed for re-running one case).
pub fn case_seed(case: u64) -> u64 {
    BASE_SEED ^ (case.wrapping_mul(0x9E37_79B9) + 1)
}

/// Runs `n` independent seeded cases of the property `f`.
///
/// # Panics
///
/// Re-raises the first failing case's panic, prefixed with the case
/// index and seed so the run can be reproduced exactly.
pub fn cases<F>(n: u64, mut f: F)
where
    F: FnMut(u64, &mut StdRng),
{
    for case in 0..n {
        let seed = case_seed(case);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(case, &mut rng))) {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            eprintln!("property failed at case {case}/{n} (seed {seed:#x}): {msg}");
            resume_unwind(payload);
        }
    }
}

/// A vector of `len` in `len_range` with elements from `val_range`.
pub fn vec_of<T, R>(rng: &mut StdRng, len_range: Range<usize>, val_range: R) -> Vec<T>
where
    R: SampleRange<T> + Clone,
{
    let len = rng.gen_range(len_range);
    (0..len).map(|_| rng.gen_range(val_range.clone())).collect()
}

/// `vec_of` specialised to `f64` (the most common generator shape).
pub fn vec_f64(rng: &mut StdRng, len_range: Range<usize>, val_range: Range<f64>) -> Vec<f64> {
    vec_of(rng, len_range, val_range)
}

/// `vec_of` specialised to `u64`.
pub fn vec_u64(rng: &mut StdRng, len_range: Range<usize>, val_range: Range<u64>) -> Vec<u64> {
    vec_of(rng, len_range, val_range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    #[test]
    fn runs_every_case() {
        let mut count = 0;
        cases(17, |_case, _rng| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn cases_see_distinct_streams() {
        let mut firsts = Vec::new();
        cases(8, |_case, rng| firsts.push(rng.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8, "case streams collided");
    }

    #[test]
    fn generators_respect_bounds() {
        cases(30, |_case, rng| {
            let v = vec_f64(rng, 1..50, -3.0..3.0);
            assert!(!v.is_empty() && v.len() < 50);
            assert!(v.iter().all(|x| (-3.0..3.0).contains(x)));
            let u = vec_u64(rng, 5..6, 100..200);
            assert_eq!(u.len(), 5);
            assert!(u.iter().all(|x| (100..200).contains(x)));
        });
    }

    #[test]
    fn failure_reports_case_and_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            cases(5, |case, _rng| assert!(case < 3, "boom at {case}"));
        }));
        assert!(result.is_err());
    }
}
