//! Slice helpers mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i as u64) as usize);
        }
    }
}
