//! Deterministic in-repo pseudo-random number generation.
//!
//! The reproduction must build and test with zero network access, so it
//! cannot depend on the `rand` crate. This crate provides the narrow
//! slice of that API the workspace actually uses — a seedable generator,
//! uniform `gen_range` sampling over integer and float ranges, and slice
//! `choose`/`shuffle` — backed by xoshiro256++ seeded via SplitMix64.
//! Both algorithms are public domain (Blackman & Vigna) and need a
//! handful of lines each; the point is determinism and zero
//! dependencies, not cryptographic quality.
//!
//! Module paths deliberately mirror `rand`'s (`rng::rngs::StdRng`,
//! `rng::seq::SliceRandom`) so call sites read the same as before the
//! registry dependency was removed.
//!
//! # Examples
//!
//! ```
//! use rng::rngs::StdRng;
//! use rng::{Rng, SeedableRng};
//!
//! let mut r = StdRng::seed_from_u64(7);
//! let x = r.gen_range(0..10u64);
//! assert!(x < 10);
//! let f: f64 = r.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&f));
//! ```

pub mod props;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// A generator seedable from a `u64`, mirroring `rand::SeedableRng`'s
/// `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Derived sampling methods, mirroring the `rand::Rng` surface the
/// workspace uses.
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard unbiased mapping.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// SplitMix64: used to expand a `u64` seed into xoshiro state, so that
/// similar seeds still give uncorrelated streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix64(*state)
}

/// The splitmix64 output finalizer: a stateless avalanche mix of one
/// `u64`. Every bit of the input flips roughly half the output bits,
/// which makes it the workspace's standard *keyed hash* for places that
/// need deterministic, seed-independent spreading without consuming an
/// RNG stream — ECMP next-hop selection, telemetry flow sampling.
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++: the workspace's standard generator.
///
/// 256 bits of state, period 2^256 − 1, equidistributed in every 64-bit
/// lane. Deliberately *not* cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace's default generator, by the name call sites expect.
pub type StdRng = Xoshiro256pp;

/// `rand`-style module alias: `rng::rngs::StdRng`.
pub mod rngs {
    pub use super::StdRng;
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for lane in &mut s {
            *lane = splitmix64(&mut sm);
        }
        // All-zero state is the one fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// A range uniform values can be drawn from; the `gen_range` argument.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` by rejection sampling:
/// reject the `2^64 mod span` lowest raw values so every residue class
/// is equally likely.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let r = rng.next_u64();
        if r >= threshold {
            return r % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u64, u32, u16, u8, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + (self.end - self.start) * rng_f64(rng);
        // Floating rounding can land exactly on `end`; fold it back in.
        if v >= self.end {
            self.start.max(f64_prev(self.end))
        } else {
            v
        }
    }
}

fn rng_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn f64_prev(v: f64) -> f64 {
    // Largest float strictly below a finite positive-or-negative v.
    if v == f64::NEG_INFINITY {
        return v;
    }
    let bits = v.to_bits();
    let prev = if v > 0.0 {
        bits - 1
    } else if v < 0.0 {
        bits + 1
    } else {
        (-f64::MIN_POSITIVE).to_bits()
    };
    f64::from_bits(prev)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..32).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        // SplitMix64 expansion: seeds 0 and 1 must share no outputs in a
        // short prefix.
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert!(va.iter().all(|x| !vb.contains(x)));
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3..=7u32);
            assert!((3..=7).contains(&w));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn int_range_covers_every_value() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residue never drawn");
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn next_f64_is_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_interarrival_mean_within_5_percent() {
        // Mirrors the workloads::dist usage this crate replaces `rand`
        // for: inverse-CDF exponential sampling off gen_range.
        let mut r = StdRng::seed_from_u64(7);
        let mean_ns = 10_000_000.0; // 10 ms
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| {
                let u: f64 = r.gen_range(1e-12..1.0);
                -u.ln() * mean_ns
            })
            .sum();
        let avg = total / n as f64;
        assert!(
            (avg - mean_ns).abs() / mean_ns < 0.05,
            "sample mean {avg} vs {mean_ns}"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn choose_and_shuffle_are_seed_deterministic() {
        let items = [10, 20, 30, 40, 50];
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(items.choose(&mut a), items.choose(&mut b));
        }
        let mut va = items.to_vec();
        let mut vb = items.to_vec();
        va.shuffle(&mut a);
        vb.shuffle(&mut b);
        assert_eq!(va, vb);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(8);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements left in place is implausible");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut r = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut r), None);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5..5u64);
    }

    #[test]
    fn mix64_is_a_stateless_avalanche() {
        // Pure function: same input, same output, no hidden state.
        assert_eq!(mix64(42), mix64(42));
        // Adjacent inputs land far apart (avalanche): flipping the low
        // bit changes about half of the output bits.
        let flips = (mix64(1000) ^ mix64(1001)).count_ones();
        assert!((20..=44).contains(&flips), "poor avalanche: {flips} bits");
        // Matches the seed expansion it was factored out of.
        let mut sm = 7u64;
        let expanded = splitmix64(&mut sm);
        assert_eq!(expanded, mix64(7u64.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    }
}
