//! Ablation benches for the design choices DESIGN.md calls out: each
//! runs the same scenario with one TFC mechanism disabled, so the
//! Criterion report shows the cost/benefit structure (and the assertions
//! inside keep the qualitative claims honest).

use tfc_bench::harness::{criterion_group, criterion_main, Criterion};
use experiments::incast::IncastExpConfig;
use experiments::workconserving::WorkConservingConfig;
use experiments::Proto;
use simnet::units::Dur;
use std::hint::black_box;

fn ablation_token_adjustment(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_token_adjustment");
    g.sample_size(10);
    for (name, on) in [("with", true), ("without", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = WorkConservingConfig {
                    duration: Dur::millis(60),
                    token_adjustment: on,
                    ..Default::default()
                };
                black_box(experiments::workconserving::run(&cfg))
            })
        });
    }
    g.finish();
}

fn ablation_delay_arbiter(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_delay_arbiter");
    g.sample_size(10);
    for (name, on) in [("with", true), ("without", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = IncastExpConfig::testbed(Proto::Tfc, 48, 2);
                cfg.proto_cfg.tfc_switch.delay_arbiter = on;
                black_box(experiments::incast::run(&cfg))
            })
        });
    }
    g.finish();
}

fn ablation_decouple_rtt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_decouple_rtt");
    g.sample_size(10);
    for (name, on) in [("decoupled", true), ("coupled", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = IncastExpConfig::testbed(Proto::Tfc, 16, 2);
                cfg.proto_cfg.tfc_switch.decouple_rtt = on;
                black_box(experiments::incast::run(&cfg))
            })
        });
    }
    g.finish();
}

fn ablation_e_two_slot_average(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_e_two_slot_average");
    g.sample_size(10);
    for (name, on) in [("averaged", true), ("raw", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = WorkConservingConfig {
                    duration: Dur::millis(60),
                    ..Default::default()
                };
                let mut c2 = cfg.clone();
                let _ = &mut c2;
                // The flag lives in ProtoConfig; workconserving builds its
                // own, so route through incast for this knob instead.
                let mut icfg = IncastExpConfig::testbed(Proto::Tfc, 12, 2);
                icfg.proto_cfg.tfc_switch.e_two_slot_average = on;
                black_box(experiments::incast::run(&icfg))
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_token_adjustment,
    ablation_delay_arbiter,
    ablation_decouple_rtt,
    ablation_e_two_slot_average
);
criterion_main!(ablations);
