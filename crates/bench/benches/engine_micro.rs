//! Microbenchmarks of the hot simulator and protocol paths: event-queue
//! churn, port-queue operations, the TFC token engine's per-packet cost,
//! and raw simulated-packet throughput of the whole stack.

use tfc_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::event::{Event, EventQueue};
use simnet::packet::{Flags, FlowId, NodeId, Packet, MSS};
use simnet::queue::PortQueue;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use simnet::SchedulerKind;
use std::hint::black_box;
use tfc::config::TfcSwitchConfig;
use tfc::port::TokenEngine;
use tfc::{TfcStack, TfcSwitchPolicy};

fn event_queue_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    for kind in [SchedulerKind::Wheel, SchedulerKind::RefHeap] {
        g.bench_function(&format!("schedule_pop_10k_{kind:?}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_kind(kind);
                for i in 0..10_000u64 {
                    q.schedule(Time(i * 37 % 5_000), Event::AppTimer { token: i });
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            })
        });
        // Sim-realistic churn: near-term packet events interleaved with
        // far-future RTO timers that are cancelled before they fire —
        // the dead mass the wheel parks in its overflow tier.
        g.bench_function(&format!("churn_with_dead_timers_10k_{kind:?}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_kind(kind);
                let mut handles = Vec::with_capacity(10_000);
                for i in 0..10_000u64 {
                    let now = i * 800;
                    q.schedule(Time(now + 1_500), Event::AppTimer { token: i });
                    handles.push(
                        q.schedule_cancellable(
                            Time(now + 200_000_000),
                            Event::AppTimer { token: i },
                        ),
                    );
                    if i >= 1 {
                        q.cancel(handles[(i - 1) as usize]);
                    }
                    black_box(q.pop());
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            })
        });
    }
    g.finish();
}

fn port_queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("port_queue");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("enqueue_dequeue_1k", |b| {
        let mut arena = simnet::PacketArena::new();
        let pkt = Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, MSS);
        let wire = pkt.wire_bytes();
        let id = arena.alloc(pkt);
        b.iter(|| {
            let mut q = PortQueue::new(16 << 20);
            for _ in 0..1_000 {
                q.enqueue(id, wire);
            }
            while let Some(p) = q.dequeue() {
                black_box(p);
            }
        })
    });
    g.finish();
}

fn token_engine_per_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_engine");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("on_data_10k", |b| {
        let mut rm = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, MSS);
        rm.flags.set(Flags::RM);
        let plain = Packet::data(FlowId(2), NodeId(0), NodeId(1), 0, MSS);
        b.iter(|| {
            let mut e = TokenEngine::new(Bandwidth::gbps(10), TfcSwitchConfig::default());
            for i in 0..10_000u64 {
                let t = Time(i * 1_200);
                if i % 10 == 0 {
                    black_box(e.on_data(&rm, t));
                } else {
                    black_box(e.on_data(&plain, t));
                }
            }
        })
    });
    g.finish();
}

fn trace_center_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_center");
    g.throughput(Throughput::Elements(10_000));
    // Steady state: the keys already exist, so record() must not
    // allocate (it used to build an owned String per point).
    g.bench_function("record_10k_4keys", |b| {
        let keys = ["sw0.p0.qlen", "sw0.p0.token", "sw0.p1.qlen", "sw0.p1.token"];
        b.iter(|| {
            let mut tc = simnet::trace::TraceCenter::new();
            for i in 0..10_000u64 {
                let key = keys[(i % 4) as usize];
                tc.record(black_box(key), Time(i * 500), i as f64);
            }
            black_box(tc)
        })
    });
    g.finish();
}

fn end_to_end_packet_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("tfc_2flows_4mb", |b| {
        b.iter(|| {
            let (t, hosts, _) = star(3, Bandwidth::gbps(1), Dur::micros(1));
            let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
            let mut sim = Simulator::new(
                net,
                Box::new(TfcStack::default()),
                NullApp,
                SimConfig::default(),
            );
            for i in 0..2 {
                sim.core_mut().start_flow(FlowSpec {
                    src: hosts[i],
                    dst: hosts[2],
                    bytes: Some(2_000_000),
                    weight: 1,
                });
            }
            sim.run();
            black_box(sim.core().events_processed())
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    event_queue_churn,
    port_queue_ops,
    token_engine_per_packet,
    trace_center_record,
    end_to_end_packet_rate
);
criterion_main!(micro);
