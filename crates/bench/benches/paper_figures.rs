//! One Criterion bench per paper figure: each measures the wall-clock
//! cost of regenerating a (reduced-size) instance of the figure's
//! experiment, and doubles as a smoke-check that every figure's pipeline
//! stays runnable. Figure *values* are produced by the `figures` binary;
//! these benches track the simulator's performance on each scenario.

use tfc_bench::harness::{criterion_group, criterion_main, Criterion};
use experiments::benchmark::BenchExpConfig;
use experiments::goodput::GoodputConfig;
use experiments::incast::IncastExpConfig;
use experiments::ne::NeConfig;
use experiments::rho::RhoConfig;
use experiments::rttb::RttbConfig;
use experiments::workconserving::WorkConservingConfig;
use experiments::Proto;
use simnet::units::Dur;
use std::hint::black_box;

fn small(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default().sample_size(10)
}

fn fig06_rttb(c: &mut Criterion) {
    c.bench_function("fig06_rttb", |b| {
        b.iter(|| {
            let cfg = RttbConfig {
                duration: Dur::millis(30),
                sample_window: Dur::millis(3),
                ..Default::default()
            };
            black_box(experiments::rttb::run(&cfg))
        })
    });
}

fn fig07_ne(c: &mut Criterion) {
    c.bench_function("fig07_ne", |b| {
        b.iter(|| {
            let cfg = NeConfig {
                step: Dur::millis(5),
                ..Default::default()
            };
            black_box(experiments::ne::run(&cfg))
        })
    });
}

fn fig08_queue(c: &mut Criterion) {
    c.bench_function("fig08_queue_tfc", |b| {
        b.iter(|| {
            let mut cfg = GoodputConfig::scaled(Proto::Tfc);
            cfg.join_interval = Dur::millis(30);
            cfg.tail = Dur::millis(30);
            black_box(experiments::goodput::run(&cfg))
        })
    });
}

fn fig09_goodput(c: &mut Criterion) {
    c.bench_function("fig09_goodput_dctcp", |b| {
        b.iter(|| {
            let mut cfg = GoodputConfig::scaled(Proto::Dctcp);
            cfg.join_interval = Dur::millis(30);
            cfg.tail = Dur::millis(30);
            black_box(experiments::goodput::run(&cfg))
        })
    });
}

fn fig10_convergence(c: &mut Criterion) {
    c.bench_function("fig10_convergence_tcp", |b| {
        b.iter(|| {
            let mut cfg = GoodputConfig::scaled(Proto::Tcp);
            cfg.join_interval = Dur::millis(30);
            cfg.tail = Dur::millis(30);
            black_box(experiments::goodput::run(&cfg))
        })
    });
}

fn fig11_workconserving(c: &mut Criterion) {
    c.bench_function("fig11_workconserving", |b| {
        b.iter(|| {
            let cfg = WorkConservingConfig {
                duration: Dur::millis(60),
                ..Default::default()
            };
            black_box(experiments::workconserving::run(&cfg))
        })
    });
}

fn fig12_incast(c: &mut Criterion) {
    c.bench_function("fig12_incast_tfc_16", |b| {
        b.iter(|| {
            black_box(experiments::incast::run(&IncastExpConfig::testbed(
                Proto::Tfc,
                16,
                2,
            )))
        })
    });
}

fn fig13_benchmark(c: &mut Criterion) {
    c.bench_function("fig13_benchmark_tfc", |b| {
        b.iter(|| {
            let mut cfg = BenchExpConfig::testbed(Proto::Tfc);
            cfg.horizon = Dur::millis(50);
            cfg.drain = Dur::millis(100);
            black_box(experiments::benchmark::run(&cfg))
        })
    });
}

fn fig14_rho(c: &mut Criterion) {
    c.bench_function("fig14_rho_sweep", |b| {
        b.iter(|| {
            let cfg = RhoConfig {
                rho0_values: vec![0.90, 0.97],
                duration: Dur::millis(40),
                ..Default::default()
            };
            black_box(experiments::rho::run(&cfg))
        })
    });
}

fn fig15_incast_large(c: &mut Criterion) {
    c.bench_function("fig15_incast_10g_tfc_32", |b| {
        b.iter(|| {
            black_box(experiments::incast::run(&IncastExpConfig::large(
                Proto::Tfc,
                32,
                64 * 1024,
                Dur::millis(20),
            )))
        })
    });
}

fn fig16_benchmark_large(c: &mut Criterion) {
    c.bench_function("fig16_benchmark_leafspine", |b| {
        b.iter(|| {
            let mut cfg = BenchExpConfig::large(Proto::Tfc, 3, 4);
            cfg.horizon = Dur::millis(40);
            cfg.drain = Dur::millis(120);
            black_box(experiments::benchmark::run(&cfg))
        })
    });
}

criterion_group! {
    name = figures;
    config = small(&mut Criterion::default());
    targets = fig06_rttb, fig07_ne, fig08_queue, fig09_goodput,
        fig10_convergence, fig11_workconserving, fig12_incast,
        fig13_benchmark, fig14_rho, fig15_incast_large,
        fig16_benchmark_large
}
criterion_main!(figures);
