//! Figure-regeneration harness.
//!
//! The `figures` binary regenerates every figure of the paper's §6
//! (`figures --list` enumerates them); this library holds the shared
//! formatting and JSON-dumping helpers.

pub mod chart;
pub mod harness;

// The JSON value/writer/parser (and the `json!` literal macro) live in
// the telemetry crate so exporters and this harness share one format;
// re-exported here for the figure dumpers.
pub use telemetry::json;

use std::fs;
use std::path::{Path, PathBuf};

/// Formats a bits-per-second value the way the paper's axes do.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gbps", bps / 1e9)
    } else {
        format!("{:.0} Mbps", bps / 1e6)
    }
}

/// Formats a microsecond value with sensible units.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

/// Formats bytes as KB with one decimal.
pub fn fmt_kb(bytes: f64) -> String {
    format!("{:.1} KB", bytes / 1e3)
}

/// Where figure JSON dumps go (shared with the telemetry exporters).
pub use telemetry::export::results_dir;

/// Writes a JSON value under `results/<name>.json`.
///
/// # Panics
///
/// Panics if the directory cannot be created or the file not written.
pub fn dump_json(name: &str, value: &json::Value) {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path: PathBuf = dir.join(format!("{name}.json"));
    fs::write(&path, value.pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  [wrote {}]", path.display());
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// True when a path exists (test helper).
pub fn exists(p: &Path) -> bool {
    p.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_bps(940e6), "940 Mbps");
        assert_eq!(fmt_bps(9.2e9), "9.20 Gbps");
        assert_eq!(fmt_us(65.0), "65.0 µs");
        assert_eq!(fmt_us(2_500.0), "2.50 ms");
        assert_eq!(fmt_us(1.5e6), "1.50 s");
        assert_eq!(fmt_kb(2_048.0), "2.0 KB");
    }

    #[test]
    fn dump_json_writes_file() {
        let dir = std::env::temp_dir().join("tfc_bench_test");
        std::env::set_var("TFC_RESULTS_DIR", &dir);
        dump_json("unit_test", &crate::json!({"x": 1}));
        assert!(exists(&dir.join("unit_test.json")));
        std::fs::remove_dir_all(&dir).ok();
        std::env::remove_var("TFC_RESULTS_DIR");
    }
}
