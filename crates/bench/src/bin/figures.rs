//! Regenerates every figure of the paper's evaluation (§6).
//!
//! Usage:
//!
//! ```text
//! figures --list            # enumerate figure ids
//! figures fig12             # one figure at default (scaled) size
//! figures fig12 --paper     # paper-scale parameters (slow)
//! figures all               # everything, scaled
//! ```
//!
//! Each figure prints the same rows/series the paper plots and writes a
//! machine-readable copy under `results/` (see `tfc_bench::dump_json`).

use experiments::benchmark::{BenchExpConfig, BenchResult};
use experiments::goodput::GoodputConfig;
use experiments::incast::{sweep, IncastExpConfig};
use experiments::ne::NeConfig;
use experiments::rho::RhoConfig;
use experiments::rttb::RttbConfig;
use experiments::workconserving::WorkConservingConfig;
use experiments::{Proto, ProtoConfig};
use simnet::units::Dur;
use tfc_bench::chart::{bar_chart, line_chart};
use tfc_bench::{dump_json, fmt_bps, fmt_kb, fmt_us, header};

struct Args {
    figure: String,
    paper_scale: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut figure = String::new();
    let mut paper_scale = false;
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--paper" => paper_scale = true,
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--list" => {
                for f in FIGURES {
                    println!("{}  {}", f.0, f.1);
                }
                std::process::exit(0);
            }
            other if !other.starts_with('-') => figure = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if figure.is_empty() {
        eprintln!(
            "usage: figures <fig06|fig07|...|fig16|ablations|sweeps|reroute|all> [--paper] [--seed N] [--list]"
        );
        std::process::exit(2);
    }
    Args {
        figure,
        paper_scale,
        seed,
    }
}

const FIGURES: &[(&str, &str)] = &[
    ("fig06", "CDF of measured rtt_b vs referenced RTT"),
    ("fig07", "accuracy of Ne with inactive flows"),
    ("fig08", "queue length under TFC / DCTCP / TCP"),
    ("fig09", "goodput and fairness of four flows"),
    ("fig10", "convergence rate at flow-3 join"),
    ("fig11", "work conservation with two bottlenecks"),
    ("fig12", "testbed incast: goodput and queue vs senders"),
    (
        "fig13",
        "testbed benchmark: FCT of query and background flows",
    ),
    ("fig14", "impact of rho0 on goodput and queue"),
    (
        "fig15",
        "large-scale incast: throughput and timeouts vs senders",
    ),
    (
        "fig16",
        "large-scale benchmark: FCT of query and background flows",
    ),
];

/// Records how a figure's `results/<id>.json` dump was produced:
/// `results/<id>/manifest.json` with seed, scale, and git describe.
fn figure_manifest(id: &str, paper: bool, seed: u64) {
    let topology = FIGURES
        .iter()
        .find(|(fid, _)| *fid == id)
        .map(|(_, desc)| *desc)
        .unwrap_or("see figure driver");
    let m = telemetry::export::RunManifest {
        run: id.to_string(),
        seed,
        topology: topology.to_string(),
        config: format!("figures {id}{}", if paper { " --paper" } else { "" }),
        git: telemetry::export::git_describe(),
        sim: None,
    };
    if let Err(e) = telemetry::export::write_manifest(&m) {
        eprintln!("figures: manifest for {id} not written: {e}");
    }
}

fn main() {
    let args = parse_args();
    let dispatch = |id: &str| match id {
        "fig06" => fig06(args.paper_scale, args.seed),
        "fig07" => fig07(args.paper_scale, args.seed),
        "fig08" | "fig09" | "fig10" => fig08_09_10(args.paper_scale, args.seed),
        "fig11" => fig11(args.paper_scale, args.seed),
        "fig12" => fig12(args.paper_scale, args.seed),
        "fig13" => fig13(args.paper_scale, args.seed),
        "fig14" => fig14(args.paper_scale, args.seed),
        "fig15" => fig15(args.paper_scale, args.seed),
        "fig16" => fig16(args.paper_scale, args.seed),
        "ablations" => ablations(args.paper_scale),
        "sweeps" => sweeps(args.paper_scale),
        "reroute" => reroute(args.paper_scale, args.seed),
        other => {
            eprintln!("unknown figure {other}; try --list");
            std::process::exit(2);
        }
    };
    let run = |id: &str| {
        dispatch(id);
        figure_manifest(id, args.paper_scale, args.seed);
    };
    if args.figure == "all" {
        for (id, _) in FIGURES {
            if matches!(*id, "fig09" | "fig10") {
                continue; // shared run with fig08
            }
            run(id);
        }
    } else {
        run(&args.figure);
    }
}

fn fig06(paper: bool, seed: u64) {
    header("Fig. 6 — CDF of measured rtt_b vs referenced RTT");
    let cfg = RttbConfig {
        duration: if paper {
            Dur::secs(2)
        } else {
            Dur::millis(300)
        },
        sample_window: if paper {
            Dur::millis(100)
        } else {
            Dur::millis(10)
        },
        seed,
        ..Default::default()
    };
    let r = experiments::rttb::run(&cfg);
    println!(
        "measured rtt_b : median {} (p10 {}, p90 {})",
        fmt_us(r.measured_rttb.quantile(0.5)),
        fmt_us(r.measured_rttb.quantile(0.1)),
        fmt_us(r.measured_rttb.quantile(0.9)),
    );
    println!(
        "referenced rtt : median {} (p10 {}, p90 {})",
        fmt_us(r.reference_rtt.quantile(0.5)),
        fmt_us(r.reference_rtt.quantile(0.1)),
        fmt_us(r.reference_rtt.quantile(0.9)),
    );
    // Clip tail outliers so the chart shows the CDF body.
    let clip = |cdf: &metrics::Cdf| {
        let hi = cdf.quantile(0.99);
        cdf.sampled_points(64)
            .into_iter()
            .filter(|&(v, _)| v <= hi)
            .collect::<Vec<(f64, f64)>>()
    };
    let m_pts = clip(&r.measured_rttb);
    let ref_pts = clip(&r.reference_rtt);
    print!(
        "{}",
        line_chart(
            &[("measured rtt_b", &m_pts), ("referenced rtt", &ref_pts)],
            60,
            12
        )
    );
    let series = |cdf: &metrics::Cdf| {
        cdf.sampled_points(64)
            .into_iter()
            .map(|(v, p)| tfc_bench::json!([v, p]))
            .collect::<Vec<_>>()
    };
    dump_json(
        "fig06",
        &tfc_bench::json!({
            "measured_rttb_cdf_us": series(&r.measured_rttb),
            "reference_rtt_cdf_us": series(&r.reference_rtt),
        }),
    );
}

fn fig07(paper: bool, seed: u64) {
    header("Fig. 7 — measured Ne with inactive flows");
    let cfg = NeConfig {
        step: if paper { Dur::secs(1) } else { Dur::millis(20) },
        seed,
        ..Default::default()
    };
    let r = experiments::ne::run(&cfg);
    let step = cfg.step.as_nanos();
    println!("time(step)  measured_Ne  expected_Ne(eq.1)");
    for w in 0..(2 * cfg.n1_max as u64 + 1) {
        let mid = w * step + step / 2;
        let vals: Vec<f64> = r
            .measured
            .iter()
            .filter(|&&(t, _)| t >= w * step && t < (w + 1) * step)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        println!("{w:>10}  {mean:>11.2}  {:>17.2}", r.expected_at(mid));
    }
    let ne_pts: Vec<(f64, f64)> = r
        .measured
        .iter()
        .map(|&(t, v)| (t as f64 / 1e6, v))
        .collect();
    print!("{}", line_chart(&[("measured Ne", &ne_pts)], 64, 10));
    dump_json(
        "fig07",
        &tfc_bench::json!({
            "measured": r.measured.iter().take(2000).collect::<Vec<_>>(),
            "active_n1": r.active_n1,
            "n2": r.n2,
            "rtt_ratio": r.rtt_ratio,
        }),
    );
}

fn fig08_09_10(paper: bool, seed: u64) {
    header("Figs. 8–10 — queue, goodput/fairness, convergence");
    let mut out = tfc_bench::json::Map::new();
    let mut queue_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for proto in Proto::ALL {
        let mut cfg = if paper {
            GoodputConfig::paper(proto)
        } else {
            GoodputConfig::scaled(proto)
        };
        cfg.seed = seed;
        let r = experiments::goodput::run(&cfg);
        queue_series.push((
            proto.label().to_string(),
            r.queue
                .iter()
                .map(|&(t, v)| (t as f64 / 1e6, v / 1e3))
                .collect(),
        ));
        let qpts: Vec<(u64, f64)> = r.queue.clone();
        let q_late: Vec<(u64, f64)> = qpts
            .iter()
            .copied()
            .filter(|&(t, _)| t > cfg.join_interval.as_nanos())
            .collect();
        let q_mean = experiments::util::mean_of(&q_late);
        println!(
            "{:<6} aggregate {} | queue mean {} max {} | drops {} | flow-3 convergence {}",
            proto.label(),
            fmt_bps(r.aggregate_bps),
            fmt_kb(q_mean),
            fmt_kb(r.max_queue_bytes as f64),
            r.drops,
            r.convergence
                .map(|d| fmt_us(d.as_micros_f64()))
                .unwrap_or_else(|| "never".into()),
        );
        out.insert(
            proto.label().to_lowercase(),
            tfc_bench::json!({
                "queue_trace": r.queue.iter().step_by((r.queue.len()/200).max(1)).collect::<Vec<_>>(),
                "flow_goodput_bps": r.flows.iter().map(|s| {
                    s.sampled(200).into_iter().map(|(t,v)| tfc_bench::json!([t, v])).collect::<Vec<_>>()
                }).collect::<Vec<_>>(),
                "aggregate_bps": r.aggregate_bps,
                "queue_mean_bytes": q_mean,
                "queue_max_bytes": r.max_queue_bytes,
                "drops": r.drops,
                "convergence_us": r.convergence.map(|d| d.as_micros_f64()),
            }),
        );
    }
    let refs: Vec<(&str, &[(f64, f64)])> = queue_series
        .iter()
        .map(|(n, p)| (n.as_str(), p.as_slice()))
        .collect();
    println!("queue (KB) over time (ms):");
    print!("{}", line_chart(&refs, 64, 12));
    dump_json("fig08_09_10", &tfc_bench::json::Value::Object(out));
}

fn fig11(paper: bool, seed: u64) {
    header("Fig. 11 — work conservation (two bottlenecks)");
    let cfg = WorkConservingConfig {
        duration: if paper {
            Dur::secs(5)
        } else {
            Dur::millis(400)
        },
        seed,
        ..Default::default()
    };
    let with = experiments::workconserving::run(&cfg);
    let without = experiments::workconserving::run(&WorkConservingConfig {
        token_adjustment: false,
        ..cfg.clone()
    });
    println!(
        "with token adjustment    : S1 {}  S2 {}  drops {}",
        fmt_bps(with.s1_mean_bps),
        fmt_bps(with.s2_mean_bps),
        with.drops
    );
    println!(
        "without token adjustment : S1 {}  S2 {} (ablation)",
        fmt_bps(without.s1_mean_bps),
        fmt_bps(without.s2_mean_bps),
    );
    let qmean = |q: &[(u64, f64)]| experiments::util::mean_of(q);
    println!(
        "queue mean: S1 {}  S2 {}",
        fmt_kb(qmean(&with.s1_queue)),
        fmt_kb(qmean(&with.s2_queue))
    );
    dump_json(
        "fig11",
        &tfc_bench::json!({
            "s1_goodput_bps": with.s1_mean_bps,
            "s2_goodput_bps": with.s2_mean_bps,
            "s1_queue_mean_bytes": qmean(&with.s1_queue),
            "s2_queue_mean_bytes": qmean(&with.s2_queue),
            "ablation_no_adjustment": {
                "s1_goodput_bps": without.s1_mean_bps,
                "s2_goodput_bps": without.s2_mean_bps,
            },
        }),
    );
}

fn fig12(paper: bool, seed: u64) {
    header("Fig. 12 — testbed incast (1 Gbps, 256 KB blocks)");
    let counts: &[usize] = if paper {
        &[1, 2, 4, 8, 16, 24, 32, 48, 64, 80, 100]
    } else {
        &[1, 4, 12, 24, 48, 72, 100]
    };
    let rounds = if paper { 100 } else { 5 };
    let mut out = tfc_bench::json::Map::new();
    println!("senders | TFC goodput / maxQ | DCTCP goodput / maxQ | TCP goodput / maxQ");
    let series: Vec<(Proto, Vec<(usize, experiments::incast::IncastExpResult)>)> = Proto::ALL
        .iter()
        .map(|&p| {
            (
                p,
                sweep(counts, |n| {
                    let mut c = IncastExpConfig::testbed(p, n, rounds);
                    c.seed = seed;
                    c
                }),
            )
        })
        .collect();
    for (i, &n) in counts.iter().enumerate() {
        let cell = |p: usize| {
            let r = &series[p].1[i].1;
            format!(
                "{} / {}",
                fmt_bps(r.goodput_bps),
                fmt_kb(r.max_queue_bytes as f64)
            )
        };
        println!("{n:>7} | {} | {} | {}", cell(0), cell(1), cell(2));
    }
    let sweep_series: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(p, pts)| {
            (
                p.label().to_string(),
                pts.iter()
                    .map(|&(n, r)| (n as f64, r.goodput_bps / 1e6))
                    .collect(),
            )
        })
        .collect();
    let refs: Vec<(&str, &[(f64, f64)])> = sweep_series
        .iter()
        .map(|(n, p)| (n.as_str(), p.as_slice()))
        .collect();
    println!("goodput (Mbps) vs senders:");
    print!("{}", line_chart(&refs, 60, 10));
    for (proto, pts) in &series {
        out.insert(
            proto.label().to_lowercase(),
            tfc_bench::json!(pts
                .iter()
                .map(|(n, r)| tfc_bench::json!({
                    "senders": n,
                    "goodput_bps": r.goodput_bps,
                    "avg_queue_bytes": r.avg_queue_bytes,
                    "max_queue_bytes": r.max_queue_bytes,
                    "max_timeouts_per_block": r.max_timeouts_per_block,
                    "drops": r.drops,
                }))
                .collect::<Vec<_>>()),
        );
    }
    dump_json("fig12", &tfc_bench::json::Value::Object(out));
}

fn print_bench(label: &str, r: &BenchResult) {
    let q = r.query.as_ref();
    match q {
        Some(q) => println!(
            "{label:<6} queries: mean {} p95 {} p99 {} p99.9 {} p99.99 {} (n={})",
            fmt_us(q.mean_us),
            fmt_us(q.p95_us),
            fmt_us(q.p99_us),
            fmt_us(q.p999_us),
            fmt_us(q.p9999_us),
            q.count
        ),
        None => println!("{label:<6} queries: none completed"),
    }
    let bins = r
        .background_bins
        .iter()
        .map(|(b, us)| format!("{} {}", b.label(), fmt_us(*us)))
        .collect::<Vec<_>>()
        .join(", ");
    println!("       background 99.9th by size: {bins}");
    println!(
        "       flows {}/{} completed, drops {}",
        r.completed, r.started, r.drops
    );
}

fn bench_json(r: &BenchResult) -> tfc_bench::json::Value {
    tfc_bench::json!({
        "query": r.query.as_ref().map(|q| tfc_bench::json!({
            "count": q.count, "mean_us": q.mean_us, "p95_us": q.p95_us,
            "p99_us": q.p99_us, "p999_us": q.p999_us, "p9999_us": q.p9999_us,
        })),
        "background_p999_by_bin_us": r.background_bins.iter()
            .map(|(b, us)| tfc_bench::json!([b.label(), us])).collect::<Vec<_>>(),
        "completed": r.completed,
        "started": r.started,
        "drops": r.drops,
    })
}

fn fig13(paper: bool, seed: u64) {
    header("Fig. 13 — testbed benchmark FCT");
    let mut out = tfc_bench::json::Map::new();
    for proto in Proto::ALL {
        let mut cfg = BenchExpConfig::testbed(proto);
        cfg.seed = seed;
        if paper {
            cfg.horizon = Dur::secs(2);
            cfg.drain = Dur::secs(2);
        }
        let r = experiments::benchmark::run(&cfg);
        print_bench(proto.label(), &r);
        out.insert(proto.label().to_lowercase(), bench_json(&r));
    }
    dump_json("fig13", &tfc_bench::json::Value::Object(out));
}

fn fig14(paper: bool, seed: u64) {
    header("Fig. 14 — impact of rho0");
    let cfg = RhoConfig {
        rho0_values: vec![0.90, 0.92, 0.94, 0.96, 0.98, 1.00],
        duration: if paper {
            Dur::secs(1)
        } else {
            Dur::millis(200)
        },
        seed,
        ..Default::default()
    };
    let pts = experiments::rho::run(&cfg);
    println!("rho0 | goodput | avg queue");
    for p in &pts {
        println!(
            "{:.2} | {} | {}",
            p.rho0,
            fmt_bps(p.goodput_bps),
            fmt_kb(p.avg_queue_bytes)
        );
    }
    let rows: Vec<(String, f64)> = pts
        .iter()
        .map(|p| (format!("rho0={:.2}", p.rho0), p.goodput_bps))
        .collect();
    let refs: Vec<(&str, f64)> = rows.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    print!("{}", bar_chart(&refs, 40));
    dump_json(
        "fig14",
        &tfc_bench::json!(pts
            .iter()
            .map(|p| tfc_bench::json!({
                "rho0": p.rho0,
                "goodput_bps": p.goodput_bps,
                "avg_queue_bytes": p.avg_queue_bytes,
                "max_queue_bytes": p.max_queue_bytes,
            }))
            .collect::<Vec<_>>()),
    );
}

fn fig15(paper: bool, seed: u64) {
    header("Fig. 15 — large-scale incast (10 Gbps)");
    let counts: &[usize] = if paper {
        &[8, 16, 32, 64, 100, 150, 200, 300, 400]
    } else {
        &[16, 64, 128]
    };
    let horizon = if paper { Dur::secs(2) } else { Dur::millis(80) };
    let blocks: &[u64] = if paper {
        &[64 * 1024, 128 * 1024, 256 * 1024]
    } else {
        &[64 * 1024]
    };
    let mut out = tfc_bench::json::Map::new();
    for &block in blocks {
        let kb = block / 1024;
        println!("-- block {kb} KB --");
        println!("senders | TFC tput / maxTO | TCP tput / maxTO");
        for &n in counts {
            let tfc = experiments::incast::run(&IncastExpConfig {
                seed,
                ..IncastExpConfig::large(Proto::Tfc, n, block, horizon)
            });
            let tcp = experiments::incast::run(&IncastExpConfig {
                seed,
                ..IncastExpConfig::large(Proto::Tcp, n, block, horizon)
            });
            println!(
                "{n:>7} | {} / {:.2} | {} / {:.2}",
                fmt_bps(tfc.goodput_bps),
                tfc.max_timeouts_per_block,
                fmt_bps(tcp.goodput_bps),
                tcp.max_timeouts_per_block
            );
            for (label, r) in [("tfc", &tfc), ("tcp", &tcp)] {
                out.entry(format!("{label}_{kb}kb"))
                    .or_insert_with(|| tfc_bench::json!([]))
                    .as_array_mut()
                    .expect("array")
                    .push(tfc_bench::json!({
                        "senders": n,
                        "goodput_bps": r.goodput_bps,
                        "max_timeouts_per_block": r.max_timeouts_per_block,
                        "drops": r.drops,
                    }));
            }
        }
    }
    dump_json("fig15", &tfc_bench::json::Value::Object(out));
}

fn fig16(paper: bool, seed: u64) {
    header("Fig. 16 — large-scale benchmark FCT");
    let (leaves, hosts) = if paper { (18, 20) } else { (4, 5) };
    let mut out = tfc_bench::json::Map::new();
    for proto in Proto::ALL {
        let mut cfg = BenchExpConfig::large(proto, leaves, hosts);
        cfg.seed = seed;
        if paper {
            cfg.horizon = Dur::millis(500);
            cfg.drain = Dur::secs(2);
        }
        let r = experiments::benchmark::run(&cfg);
        print_bench(proto.label(), &r);
        out.insert(proto.label().to_lowercase(), bench_json(&r));
    }
    dump_json("fig16", &tfc_bench::json::Value::Object(out));
}

fn ablations(paper: bool) {
    header("Ablations — what each TFC mechanism buys");
    let (n, rounds) = if paper { (64, 20) } else { (32, 3) };

    let a = experiments::ablations::delay_arbiter_incast(n, rounds);
    println!(
        "delay arbiter ({} senders incast): with -> {} goodput, {} drops, maxQ {}",
        n,
        fmt_bps(a.with.goodput_bps),
        a.with.drops,
        fmt_kb(a.with.max_queue_bytes as f64)
    );
    println!(
        "                                without -> {} goodput, {} drops, maxQ {}",
        fmt_bps(a.without.goodput_bps),
        a.without.drops,
        fmt_kb(a.without.max_queue_bytes as f64)
    );

    let d = experiments::ablations::decouple_rtt_queue(
        5,
        if paper {
            Dur::millis(500)
        } else {
            Dur::millis(150)
        },
    );
    let (wq, _, wg) = d.with;
    let (oq, _, og) = d.without;
    println!(
        "rtt decoupling (5 continuous flows): decoupled -> queue {} at {}",
        fmt_kb(wq),
        fmt_bps(wg)
    );
    println!(
        "                                      coupled  -> queue {} at {}",
        fmt_kb(oq),
        fmt_bps(og)
    );

    let w = experiments::workconserving::run(&WorkConservingConfig::default());
    let wo = experiments::workconserving::run(&WorkConservingConfig {
        token_adjustment: false,
        ..Default::default()
    });
    println!(
        "token adjustment (two bottlenecks): with -> S2 {}, without -> S2 {}",
        fmt_bps(w.s2_mean_bps),
        fmt_bps(wo.s2_mean_bps)
    );

    dump_json(
        "ablations",
        &tfc_bench::json!({
            "delay_arbiter": {
                "with": {"goodput_bps": a.with.goodput_bps, "drops": a.with.drops,
                         "max_queue_bytes": a.with.max_queue_bytes},
                "without": {"goodput_bps": a.without.goodput_bps, "drops": a.without.drops,
                            "max_queue_bytes": a.without.max_queue_bytes},
            },
            "decouple_rtt": {
                "with": {"avg_queue_bytes": wq, "goodput_bps": wg},
                "without": {"avg_queue_bytes": oq, "goodput_bps": og},
            },
            "token_adjustment": {
                "with_s2_bps": w.s2_mean_bps,
                "without_s2_bps": wo.s2_mean_bps,
            },
        }),
    );
}

/// Beyond the paper: reroute-on-link-down recovery on a multipath
/// fat-tree (see `experiments::reroute`). The uplink carrying the most
/// sprayed flows flaps; the affected flows' reverse path dies at the
/// partitioned aggregation switch, and each protocol's recovery from
/// the asymmetric outage is measured on the aggregate delivery rate.
fn reroute(paper: bool, seed: u64) {
    header("Reroute — ECMP fat-tree link-down recovery (TFC vs DCTCP vs TCP)");
    let mut out = tfc_bench::json::Map::new();
    println!("proto  | dip depth | recovery | reacquire | fault drops");
    for proto in experiments::Proto::ALL {
        let mut cfg = experiments::reroute::RerouteConfig::scaled(proto);
        cfg.seed = seed;
        if paper {
            cfg.horizon = Dur::millis(300);
            cfg.fault_at = Dur::millis(100);
            cfg.fault_dur = Dur::millis(50);
        }
        let r = experiments::reroute::run(&cfg);
        let dip = r.dip.as_ref();
        println!(
            "{:<6} | {:>9} | {:>8} | {:>9} | {}",
            proto.label(),
            dip.map(|d| format!("{:.1} %", d.depth * 100.0))
                .unwrap_or_else(|| "-".into()),
            dip.and_then(|d| d.recovery_ns)
                .map(|ns| fmt_us(ns as f64 / 1e3))
                .unwrap_or_else(|| "never".into()),
            r.reacquire_ns
                .map(|ns| fmt_us(ns as f64 / 1e3))
                .unwrap_or_else(|| "-".into()),
            r.fault_drops,
        );
        out.insert(
            proto.label().to_lowercase(),
            tfc_bench::json!({
                "baseline_bps": dip.map(|d| d.baseline_bps),
                "floor_bps": dip.map(|d| d.floor_bps),
                "dip_depth": dip.map(|d| d.depth),
                "recovery_ns": dip.and_then(|d| d.recovery_ns),
                "reacquire_ns": r.reacquire_ns,
                "delivered_bytes": r.delivered,
                "fault_drops": r.fault_drops,
                "queue_drops": r.queue_drops,
                "no_route_drops": r.no_route_drops,
                "rerouted": r.reroutes.iter()
                    .map(|&(node, port, dests)| tfc_bench::json!({
                        "node": node, "port": port, "dests": dests,
                    }))
                    .collect::<Vec<_>>(),
            }),
        );
    }
    dump_json("reroute", &tfc_bench::json::Value::Object(out));
}

fn sweeps(paper: bool) {
    header("Sweeps — parameter sensitivity beyond Fig. 14");
    let d = if paper {
        Dur::millis(500)
    } else {
        Dur::millis(120)
    };
    let alphas = [0.5, 0.75, 7.0 / 8.0, 0.95];
    println!("alpha (Eq. 8 EWMA weight):");
    let apts = experiments::sweeps::alpha_sweep(&alphas, d);
    for p in &apts {
        println!(
            "  alpha {:.3}: {} | queue {} | drops {}",
            p.value,
            fmt_bps(p.goodput_bps),
            fmt_kb(p.avg_queue_bytes),
            p.drops
        );
    }
    println!("initial rtt_b guess:");
    let rpts = experiments::sweeps::init_rttb_sweep(&[20, 80, 160, 400, 1_000], d);
    for p in &rpts {
        println!(
            "  init {:>5.0} µs: {} | queue {} | drops {}",
            p.value,
            fmt_bps(p.goodput_bps),
            fmt_kb(p.avg_queue_bytes),
            p.drops
        );
    }
    let ser = |pts: &[experiments::sweeps::SweepPoint]| {
        pts.iter()
            .map(|p| {
                tfc_bench::json!({
                    "value": p.value,
                    "goodput_bps": p.goodput_bps,
                    "avg_queue_bytes": p.avg_queue_bytes,
                    "drops": p.drops,
                })
            })
            .collect::<Vec<_>>()
    };
    dump_json(
        "sweeps",
        &tfc_bench::json!({"alpha": ser(&apts), "init_rttb_us": ser(&rpts)}),
    );
}

// ProtoConfig is re-exported for downstream parameterisation of custom
// sweeps; reference it so the import stays honest.
#[allow(dead_code)]
fn _unused(_: ProtoConfig) {}
