//! `tfc-million`: the streaming million-flow acceptance run.
//!
//! Two phases, both seeded and deterministic:
//!
//! 1. **Oracle** — a small leaf-spine run with `keep_exact` on, so the
//!    per-class FCT sketches are checked against exact records *from
//!    the same simulation* at the sketch's floor-rank convention. Any
//!    disagreement beyond 2·alpha aborts the run.
//! 2. **Scale** — the open-loop web-search + cache-follower mix driven
//!    until the target flow count completes (1M full, 100k `--quick`),
//!    with flow retirement recycling slab slots and Ring-mode telemetry
//!    keeping the exported artifacts flat-sized. The flow-slab and
//!    packet-arena high-water marks are asserted bounded and recorded.
//!
//! Results merge into `results/bench/BENCH_scale.json` (schema v4)
//! under the `"million"` key, alongside the `tfc-scale-bench` rows.

use experiments::million::{assert_sketch_matches_exact, run, MillionConfig};
use telemetry::export::{git_describe, results_dir};
use telemetry::json::{self, Value};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    eprintln!("oracle: sketch-vs-exact validation (small scale, keep_exact)...");
    let oracle_cfg = MillionConfig::oracle();
    let oracle = run(&oracle_cfg);
    let checked = assert_sketch_matches_exact(&oracle, oracle_cfg.alpha);
    eprintln!(
        "  {} flows retired, {checked} classes within 2α of exact records",
        oracle.retired
    );

    let run_name = if quick { "million-quick" } else { "million-full" };
    let mut cfg = if quick {
        MillionConfig::quick()
    } else {
        MillionConfig::full()
    };
    cfg.telemetry = MillionConfig::streaming_telemetry(run_name);
    eprintln!(
        "scale: {} flows over leaf_spine({},{}), open loop...",
        cfg.target_flows, cfg.leaves, cfg.hosts_per_leaf
    );
    let stats = run(&cfg);
    eprintln!(
        "  completed {} (retired {}) in {:.1} sim-ms / {:.2} wall-s: {:.0} flows/s, {:.0} ev/s",
        stats.completed,
        stats.retired,
        stats.sim_ns as f64 / 1e6,
        stats.wall_secs,
        stats.flows_per_sec,
        stats.events_per_sec,
    );
    eprintln!(
        "  memory: flow slab {} slots (peak {} live) for {} flows; arena {} slots",
        stats.slab_capacity, stats.slab_peak, stats.retired, stats.arena_capacity,
    );

    // The acceptance claims, enforced where the numbers are produced.
    assert!(
        stats.completed >= cfg.target_flows,
        "only {} of {} flows completed",
        stats.completed,
        cfg.target_flows
    );
    assert!(
        (stats.slab_capacity as u64) < cfg.target_flows / 10,
        "flow slab grew to {} slots — retirement is not recycling ids",
        stats.slab_capacity
    );

    // Flat artifacts: the event ring bounds events.json, and flows.json
    // holds fixed-size sketches plus only still-live flows.
    let run_dir = results_dir().join(run_name);
    for (file, max_bytes) in [("events.json", 4 << 20), ("flows.json", 4 << 20)] {
        let len = std::fs::metadata(run_dir.join(file))
            .unwrap_or_else(|e| panic!("{file} missing from {}: {e}", run_dir.display()))
            .len();
        assert!(
            len < max_bytes,
            "{file} is {len} bytes — artifact size must stay flat under streaming"
        );
    }

    let class_json = |c: &experiments::million::ClassReport| {
        let s = c.sketch.as_ref();
        telemetry::json!({
            "name": c.name.as_str(),
            "count": c.count,
            "mean_us": s.map_or(0.0, |s| s.mean_us),
            "p99_us": s.map_or(0.0, |s| s.p99_us),
            "p999_us": s.map_or(0.0, |s| s.p999_us),
            "slowdown_p50": c.slowdown_p50.unwrap_or(0.0),
            "slowdown_p99": c.slowdown_p99.unwrap_or(0.0),
        })
    };
    let million = telemetry::json!({
        "mode": if quick { "quick" } else { "full" },
        "target_flows": cfg.target_flows,
        "completed": stats.completed,
        "retired": stats.retired,
        "started": stats.started,
        "shed": stats.shed,
        "sim_ns": stats.sim_ns,
        "wall_secs": stats.wall_secs,
        "flows_per_sec": stats.flows_per_sec,
        "events": stats.events,
        "events_per_sec": stats.events_per_sec,
        "slab_live": stats.slab_live as u64,
        "slab_peak": stats.slab_peak as u64,
        "slab_capacity": stats.slab_capacity as u64,
        "arena_capacity": stats.arena_capacity as u64,
        "arena_allocated": stats.arena_allocated,
        "drops": stats.drops,
        "oracle_classes_checked": checked as u64,
        "oracle_retired": oracle.retired,
        "alpha": cfg.alpha,
        "classes": Value::Array(stats.classes.iter().map(class_json).collect()),
    });

    let dir = results_dir().join("bench");
    std::fs::create_dir_all(&dir).expect("create results/bench");
    let path = dir.join("BENCH_scale.json");
    let mut doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| json::parse(&s).ok())
        .unwrap_or_else(|| {
            telemetry::json!({
                "schema": "tfc-bench-scale/v4",
                "git": git_describe().as_str(),
            })
        });
    match &mut doc {
        Value::Object(map) => {
            map.insert("million".to_string(), million);
            // The million block is what v4 adds over v3, so merging it
            // into an older document upgrades the schema to v4 — but a
            // newer document (v5+, written by tfc-scale-bench) keeps its
            // own schema: never downgrade.
            let existing = map
                .get("schema")
                .and_then(|v| v.as_str())
                .and_then(|s| s.strip_prefix("tfc-bench-scale/v"))
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(0);
            if existing < 4 {
                map.insert(
                    "schema".to_string(),
                    Value::Str("tfc-bench-scale/v4".to_string()),
                );
            }
        }
        _ => panic!("BENCH_scale.json is not an object"),
    }
    std::fs::write(&path, doc.pretty()).expect("write BENCH_scale.json");

    // Self-validate the merged document.
    let parsed = json::parse(&std::fs::read_to_string(&path).expect("read back"))
        .expect("BENCH_scale.json parses");
    let m = parsed.get("million").expect("million block present");
    for key in ["flows_per_sec", "events_per_sec"] {
        assert!(
            m.get(key).and_then(Value::as_f64).expect("rate present") > 0.0,
            "{key} must be positive"
        );
    }
    for key in ["completed", "retired", "slab_capacity", "slab_peak", "arena_capacity"] {
        assert!(
            m.get(key).and_then(Value::as_i64).expect("count present") > 0,
            "{key} must be positive"
        );
    }
    println!("{}", path.display());
}
