//! `tfc-scale-bench`: the simulation-core scale suite.
//!
//! Runs five scenarios — the paper's 360-host leaf-spine at 10 Gbps
//! edge links, a wide incast fan-in, a chaos fault timeline, a k-ary
//! fat-tree scale point (k = 36 → 11664 hosts in full mode), and a
//! multipath fat-tree whose cross-pod flows spray over every
//! equal-cost uplink while edge and aggregation links flap (ECMP
//! forwarding plus selection-time reroute at scale) —
//! under six scheduling variants: the reference binary-heap scheduler,
//! the timing wheel with batch dispatch off, the timing wheel with
//! same-tick batch coalescing (the default), and the sharded
//! lookahead-window scheduler at 1, 2, and 4 extraction threads. For
//! each scenario, it checks all variants produced *identical*
//! simulations (same event count, same delivered bytes) and records
//! wall-clock events/sec, writing `results/bench/BENCH_scale.json`.
//!
//! Each scenario also re-runs the default variant with flow-sampled
//! lifecycle tracing on (16/1000 flows), asserting the traced
//! simulation is outcome-identical to the untraced one and recording
//! the wall-clock ratio as `trace_overhead` (1.0 = free; the CI smoke
//! bounds the leaf-spine value at 1.10).
//!
//! `--quick` shortens every horizon for CI smoke use (`scripts/verify.sh`).
//! `--sharded-det` instead exports two same-seed 4-thread sharded runs
//! for the verify.sh byte-determinism gate (`tfc-trace diff`).

use std::time::Instant;

use chaos::FaultTimeline;
use rng::seq::SliceRandom;
use rng::{Rng, SeedableRng};
use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::{fat_tree, leaf_spine, star};
use simnet::units::{Bandwidth, Dur, Time};
use simnet::SchedulerKind;
use telemetry::export::{git_describe, results_dir};
use telemetry::json::{self, Value};
use telemetry::{TelemetryConfig, TraceConfig};

/// One scenario, parameterized by the scheduler backend, whether
/// same-tick batch dispatch is on, and the lifecycle-trace mode.
struct Scenario {
    name: &'static str,
    hosts: usize,
    flows: usize,
    sim_ms: u64,
    run: Box<dyn Fn(SchedulerKind, bool, TraceConfig) -> (u64, u64)>,
}

/// Variant-agnostic run outcome used for the cross-variant identity
/// check: `(events_processed, total delivered bytes)`.
fn outcome<A: simnet::app::Application>(sim: &Simulator<A>) -> (u64, u64) {
    (
        sim.core().events_processed(),
        sim.core().flows().map(|(_, st)| st.delivered).sum(),
    )
}

fn cfg(kind: SchedulerKind, coalesce: bool, end_ms: u64, trace: TraceConfig) -> SimConfig {
    SimConfig {
        end: Some(Time(Dur::millis(end_ms).as_nanos())),
        scheduler: kind,
        coalesce,
        telemetry: TelemetryConfig {
            trace,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The paper's §6.2.2 fabric scaled to 10 Gbps edges: 18 leaves × 20
/// hosts, 40 Gbps uplinks, a dense random flow matrix.
fn leaf_spine_360(sim_ms: u64, flows: usize) -> Scenario {
    Scenario {
        name: "leaf_spine_360",
        hosts: 360,
        flows,
        sim_ms,
        run: Box::new(move |kind, coalesce, trace| {
            let (t, hosts, _) = leaf_spine(
                18,
                20,
                Bandwidth::gbps(10),
                Bandwidth::gbps(40),
                Dur::micros(20),
            );
            let net = t.build(tfc::TfcSwitchPolicy::factory(Default::default()));
            let mut sim = Simulator::new(
                net,
                Box::new(tfc::TfcStack::default()),
                NullApp,
                cfg(kind, coalesce, sim_ms, trace),
            );
            let mut rng = rng::rngs::StdRng::seed_from_u64(2024);
            for _ in 0..flows {
                let src = *hosts.choose(&mut rng).expect("hosts");
                let mut dst = *hosts.choose(&mut rng).expect("hosts");
                while dst == src {
                    dst = *hosts.choose(&mut rng).expect("hosts");
                }
                let bytes = rng.gen_range(20_000u64..2_000_000);
                sim.core_mut().start_flow(FlowSpec::sized(src, dst, bytes));
            }
            sim.run();
            outcome(&sim)
        }),
    }
}

/// Wide fan-in: every spoke of a 10 Gbps star fires at one receiver.
fn incast_fanin(sim_ms: u64, senders: usize) -> Scenario {
    Scenario {
        name: "incast_fanin",
        hosts: senders + 1,
        flows: senders,
        sim_ms,
        run: Box::new(move |kind, coalesce, trace| {
            let (t, hosts, _) = star(senders + 1, Bandwidth::gbps(10), Dur::micros(10));
            let receiver = hosts[0];
            let net = t.build(tfc::TfcSwitchPolicy::factory(Default::default()));
            let mut sim = Simulator::new(
                net,
                Box::new(tfc::TfcStack::default()),
                NullApp,
                cfg(kind, coalesce, sim_ms, trace),
            );
            for (i, &src) in hosts[1..].iter().enumerate() {
                sim.core_mut().start_flow(FlowSpec::sized(
                    src,
                    receiver,
                    400_000 + 4_000 * i as u64,
                ));
            }
            sim.run();
            outcome(&sim)
        }),
    }
}

/// Chaos timeline on a 48-host leaf-spine: flaps, stalls, loss bursts,
/// and a policy reset while a random matrix runs.
fn chaos_leaf_spine(sim_ms: u64, flows: usize) -> Scenario {
    Scenario {
        name: "chaos_leaf_spine",
        hosts: 48,
        flows,
        sim_ms,
        run: Box::new(move |kind, coalesce, trace| {
            let (t, hosts, switches) = leaf_spine(
                6,
                8,
                Bandwidth::gbps(1),
                Bandwidth::gbps(10),
                Dur::micros(20),
            );
            let net = t.build(tfc::TfcSwitchPolicy::factory(Default::default()));
            let mut sim = Simulator::new(
                net,
                Box::new(tfc::TfcStack::default()),
                NullApp,
                cfg(kind, coalesce, sim_ms, trace),
            );
            for i in 0..flows {
                let src = hosts[i % hosts.len()];
                let dst = hosts[(i + 13) % hosts.len()];
                sim.core_mut()
                    .start_flow(FlowSpec::sized(src, dst, 100_000 + 777 * i as u64));
            }
            let leaf = switches[1];
            FaultTimeline::new()
                .link_flap(Time(2_000_000), Dur::millis(1), leaf, 0)
                .host_stall(Time(5_000_000), Dur::millis(3), hosts[5])
                .loss_burst(Time(9_000_000), Dur::millis(1), leaf, 2, 250)
                .policy_reset(Time(12_000_000), leaf, 3)
                .install(sim.core_mut());
            sim.run();
            outcome(&sim)
        }),
    }
}

/// k-ary fat-tree (Al-Fares) with a sparse random flow matrix: the
/// ≥10k-host scale point. Full mode runs k = 36 (11664 hosts, 1620
/// switches); quick CI smoke uses k = 8 (128 hosts) to exercise the
/// same code path cheaply.
fn fat_tree_scale(k: usize, sim_ms: u64, flows: usize) -> Scenario {
    Scenario {
        name: "fat_tree",
        hosts: k * k * k / 4,
        flows,
        sim_ms,
        run: Box::new(move |kind, coalesce, trace| {
            let (t, hosts, _) = fat_tree(
                k,
                Bandwidth::gbps(10),
                Bandwidth::gbps(40),
                Dur::micros(5),
            );
            let net = t.build(tfc::TfcSwitchPolicy::factory(Default::default()));
            let mut sim = Simulator::new(
                net,
                Box::new(tfc::TfcStack::default()),
                NullApp,
                cfg(kind, coalesce, sim_ms, trace),
            );
            let mut rng = rng::rngs::StdRng::seed_from_u64(4099);
            for _ in 0..flows {
                let src = *hosts.choose(&mut rng).expect("hosts");
                let mut dst = *hosts.choose(&mut rng).expect("hosts");
                while dst == src {
                    dst = *hosts.choose(&mut rng).expect("hosts");
                }
                let bytes = rng.gen_range(20_000u64..400_000);
                sim.core_mut().start_flow(FlowSpec::sized(src, dst, bytes));
            }
            sim.run();
            outcome(&sim)
        }),
    }
}

/// Multipath fat-tree with route churn: a deterministic cross-pod flow
/// matrix sprays over every equal-cost uplink via the `(flow, hop)`
/// ECMP hash while one edge uplink and one aggregation-core link flap
/// mid-run, forcing selection-time reroutes. The cross-variant identity
/// check then doubles as a scale-sized proof that route churn does not
/// break sharded lookahead determinism. Quick CI smoke uses k = 8;
/// full mode k = 16 (1024 hosts).
fn fat_tree_multipath(k: usize, sim_ms: u64, flows: usize) -> Scenario {
    Scenario {
        name: "fat_tree_multipath",
        hosts: k * k * k / 4,
        flows,
        sim_ms,
        run: Box::new(move |kind, coalesce, trace| {
            let (t, hosts, switches) = fat_tree(
                k,
                Bandwidth::gbps(10),
                Bandwidth::gbps(40),
                Dur::micros(5),
            );
            let net = t.build(tfc::TfcSwitchPolicy::factory(Default::default()));
            let mut sim = Simulator::new(
                net,
                Box::new(tfc::TfcStack::default()),
                NullApp,
                cfg(kind, coalesce, sim_ms, trace),
            );
            let n = hosts.len();
            for i in 0..flows {
                // Peers half the fabric apart are always in another pod,
                // so every flow climbs to the core and back.
                let src = hosts[i % n];
                let dst = hosts[(i + n / 2 + 1) % n];
                sim.core_mut()
                    .start_flow(FlowSpec::sized(src, dst, 60_000 + 333 * i as u64));
            }
            // `switches` lists cores first, then per pod aggs then
            // edges: flap pod 0's first edge's uplink 0 and the first
            // aggregation switch's first core link.
            let half = k / 2;
            let edge0 = switches[half * half + half];
            let agg0 = switches[half * half];
            FaultTimeline::new()
                .link_flap(Time(1_000_000), Dur::millis(1), edge0, 0)
                .link_flap(Time(2_500_000), Dur::micros(800), agg0, 0)
                .install(sim.core_mut());
            sim.run();
            outcome(&sim)
        }),
    }
}

struct Row {
    name: &'static str,
    hosts: usize,
    flows: usize,
    sim_ms: u64,
    events: u64,
    heap_wall_ms: f64,
    wheel_nobatch_wall_ms: f64,
    wheel_wall_ms: f64,
    heap_events_per_sec: f64,
    wheel_nobatch_events_per_sec: f64,
    wheel_events_per_sec: f64,
    /// Wheel+batching vs reference heap.
    speedup: f64,
    /// Wheel+batching vs wheel without batching (batching alone).
    batch_speedup: f64,
    /// Sharded scheduler wall time at 1, 2, and 4 extraction threads.
    sharded_wall_ms: [f64; 3],
    sharded_events_per_sec: [f64; 3],
    /// Sharded at 4 threads vs the reference heap.
    sharded_speedup: f64,
    /// Sharded at 4 threads vs sharded at 1 thread: what parallel
    /// window extraction alone buys (handler execution stays
    /// sequential to preserve byte-determinism, so this isolates the
    /// scheduler's share of the wall clock).
    sharded_thread_scaling: f64,
    traced_wall_ms: f64,
    traced_events_per_sec: f64,
    /// Wheel+batching with sampled lifecycle tracing vs without.
    trace_overhead: f64,
}

fn bench(s: &Scenario) -> Row {
    let timed = |kind, coalesce, trace| {
        let t0 = Instant::now();
        let out = (s.run)(kind, coalesce, trace);
        (out, t0.elapsed().as_secs_f64())
    };
    let (heap_out, heap_secs) = timed(SchedulerKind::RefHeap, false, TraceConfig::Off);
    let (nobatch_out, nobatch_secs) = timed(SchedulerKind::Wheel, false, TraceConfig::Off);
    let (wheel_out, wheel_secs) = timed(SchedulerKind::Wheel, true, TraceConfig::Off);
    let mut sharded_secs = [0.0f64; 3];
    for (i, threads) in [1usize, 2, 4].into_iter().enumerate() {
        let (out, secs) = timed(SchedulerKind::Sharded { threads }, true, TraceConfig::Off);
        assert_eq!(
            heap_out, out,
            "{}: sharded({threads} threads) diverged from heap (events, delivered)",
            s.name
        );
        sharded_secs[i] = secs;
    }
    // The overhead ratio is measured in adjacent traced/untraced pairs
    // and reported as the minimum per-pair ratio: single wall-clock
    // samples on shared machines swing by double digits, but two runs
    // launched back to back see (mostly) the same ambient load, so
    // their ratio cancels slowdowns that would otherwise masquerade as
    // tracing cost. The minimum across pairs then discards pairs a load
    // spike split down the middle.
    let sampled = TraceConfig::SampledFlows {
        permille: 16,
        seed: 9,
    };
    let mut traced_best = f64::INFINITY;
    let mut overhead = f64::INFINITY;
    for _ in 0..3 {
        let (traced_out, traced_secs) = timed(SchedulerKind::Wheel, true, sampled);
        assert_eq!(
            wheel_out, traced_out,
            "{}: sampled tracing changed the simulation (events, delivered)",
            s.name
        );
        traced_best = traced_best.min(traced_secs);
        let (out, untraced_secs) = timed(SchedulerKind::Wheel, true, TraceConfig::Off);
        assert_eq!(wheel_out, out, "{}: rerun diverged", s.name);
        overhead = overhead.min(traced_secs / untraced_secs);
    }
    assert_eq!(
        heap_out, nobatch_out,
        "{}: wheel diverged from heap (events, delivered)",
        s.name
    );
    assert_eq!(
        heap_out, wheel_out,
        "{}: batched wheel diverged from heap (events, delivered)",
        s.name
    );
    let events = heap_out.0;
    Row {
        name: s.name,
        hosts: s.hosts,
        flows: s.flows,
        sim_ms: s.sim_ms,
        events,
        heap_wall_ms: heap_secs * 1e3,
        wheel_nobatch_wall_ms: nobatch_secs * 1e3,
        wheel_wall_ms: wheel_secs * 1e3,
        heap_events_per_sec: events as f64 / heap_secs,
        wheel_nobatch_events_per_sec: events as f64 / nobatch_secs,
        wheel_events_per_sec: events as f64 / wheel_secs,
        speedup: heap_secs / wheel_secs,
        batch_speedup: nobatch_secs / wheel_secs,
        sharded_wall_ms: sharded_secs.map(|s| s * 1e3),
        sharded_events_per_sec: sharded_secs.map(|s| events as f64 / s),
        sharded_speedup: heap_secs / sharded_secs[2],
        sharded_thread_scaling: sharded_secs[0] / sharded_secs[2],
        traced_wall_ms: traced_best * 1e3,
        traced_events_per_sec: events as f64 / traced_best,
        trace_overhead: overhead,
    }
}

fn row_json(r: &Row) -> Value {
    telemetry::json!({
        "name": r.name,
        "hosts": r.hosts as u64,
        "flows": r.flows as u64,
        "sim_ms": r.sim_ms,
        "events": r.events,
        "heap_wall_ms": r.heap_wall_ms,
        "wheel_nobatch_wall_ms": r.wheel_nobatch_wall_ms,
        "wheel_wall_ms": r.wheel_wall_ms,
        "heap_events_per_sec": r.heap_events_per_sec,
        "wheel_nobatch_events_per_sec": r.wheel_nobatch_events_per_sec,
        "wheel_events_per_sec": r.wheel_events_per_sec,
        "speedup": r.speedup,
        "batch_speedup": r.batch_speedup,
        "sharded1_wall_ms": r.sharded_wall_ms[0],
        "sharded2_wall_ms": r.sharded_wall_ms[1],
        "sharded4_wall_ms": r.sharded_wall_ms[2],
        "sharded1_events_per_sec": r.sharded_events_per_sec[0],
        "sharded2_events_per_sec": r.sharded_events_per_sec[1],
        "sharded4_events_per_sec": r.sharded_events_per_sec[2],
        "sharded_speedup": r.sharded_speedup,
        "sharded_thread_scaling": r.sharded_thread_scaling,
        "traced_wall_ms": r.traced_wall_ms,
        "traced_events_per_sec": r.traced_events_per_sec,
        "trace_overhead": r.trace_overhead,
    })
}

/// `--sharded-det`: exports two same-seed 4-thread sharded chaos
/// leaf-spine runs with full event/flow/slot telemetry for the
/// verify.sh determinism gate, which byte-compares them with
/// `tfc-trace diff`. Profiling stays off — wall-clock timings are
/// never comparable across runs.
fn sharded_det_export() {
    for name in ["sharded-det-a", "sharded-det-b"] {
        let (t, hosts, switches) = leaf_spine(
            6,
            8,
            Bandwidth::gbps(1),
            Bandwidth::gbps(10),
            Dur::micros(20),
        );
        let net = t.build(tfc::TfcSwitchPolicy::factory(Default::default()));
        let cfg = SimConfig {
            end: Some(Time(Dur::millis(10).as_nanos())),
            scheduler: SchedulerKind::Sharded { threads: 4 },
            coalesce: true,
            telemetry: TelemetryConfig {
                events: telemetry::LogMode::Full,
                sample_one_in: 1,
                tfc_gauges: true,
                profile: false,
                trace: TraceConfig::Full,
                export: Some(name.to_string()),
            },
            ..Default::default()
        };
        let mut sim = Simulator::new(net, Box::new(tfc::TfcStack::default()), NullApp, cfg);
        for i in 0..32 {
            let src = hosts[i % hosts.len()];
            let dst = hosts[(i + 13) % hosts.len()];
            sim.core_mut()
                .start_flow(FlowSpec::sized(src, dst, 80_000 + 555 * i as u64));
        }
        let leaf = switches[1];
        FaultTimeline::new()
            .link_flap(Time(2_000_000), Dur::millis(1), leaf, 0)
            .host_stall(Time(5_000_000), Dur::millis(2), hosts[5])
            .install(sim.core_mut());
        sim.run();
        let dir = experiments::artifacts::maybe_export(
            sim.core(),
            "leaf_spine(6x8)",
            "sharded determinism smoke",
        )
        .expect("export directory");
        println!("{}", dir.display());
    }
}

fn main() {
    if std::env::args().any(|a| a == "--sharded-det") {
        sharded_det_export();
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let scenarios = if quick {
        vec![
            leaf_spine_360(5, 300),
            incast_fanin(5, 40),
            chaos_leaf_spine(15, 24),
            fat_tree_scale(8, 4, 120),
            fat_tree_multipath(8, 4, 96),
        ]
    } else {
        vec![
            leaf_spine_360(60, 1200),
            incast_fanin(40, 120),
            chaos_leaf_spine(100, 48),
            fat_tree_scale(36, 5, 3000),
            fat_tree_multipath(16, 6, 1200),
        ]
    };

    let mut rows = Vec::new();
    for s in &scenarios {
        eprintln!("running {} ({} hosts, {} flows, {} ms)...", s.name, s.hosts, s.flows, s.sim_ms);
        let row = bench(s);
        eprintln!(
            "  {} events; heap {:.0} ev/s, wheel {:.0} ev/s, wheel+batch {:.0} ev/s, speedup {:.2}x (batching {:.2}x), trace overhead {:.3}x",
            row.events,
            row.heap_events_per_sec,
            row.wheel_nobatch_events_per_sec,
            row.wheel_events_per_sec,
            row.speedup,
            row.batch_speedup,
            row.trace_overhead,
        );
        eprintln!(
            "  sharded 1/2/4 threads: {:.0}/{:.0}/{:.0} ev/s, {:.2}x vs heap at 4t, thread scaling {:.2}x",
            row.sharded_events_per_sec[0],
            row.sharded_events_per_sec[1],
            row.sharded_events_per_sec[2],
            row.sharded_speedup,
            row.sharded_thread_scaling,
        );
        rows.push(row);
    }

    let leaf = rows
        .iter()
        .find(|r| r.name == "leaf_spine_360")
        .expect("leaf-spine scenario present");
    // Sharded thread-sweep numbers are only interpretable relative to
    // the machine: record how many hardware threads it advertises and
    // how many the suite actually keeps busy at the sweep's widest
    // point (the sequential dispatch thread plus the 4 extraction
    // workers of `Sharded { threads: 4 }`). `available_parallelism`
    // is 0 when the platform cannot say.
    let available_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(0);
    let mut doc = telemetry::json!({
        "schema": "tfc-bench-scale/v6",
        "mode": if quick { "quick" } else { "full" },
        "git": git_describe().as_str(),
        "host": telemetry::json!({
            "available_parallelism": available_parallelism,
            "active_threads": 1u64 + 4,
        }),
        "scenarios": Value::Array(rows.iter().map(row_json).collect()),
        "leaf_spine_speedup": leaf.speedup,
        "leaf_spine_sharded_speedup": leaf.sharded_speedup,
        "trace_overhead": leaf.trace_overhead,
    });

    let dir = results_dir().join("bench");
    std::fs::create_dir_all(&dir).expect("create results/bench");
    let path = dir.join("BENCH_scale.json");
    // `tfc-million` merges its streaming block into the same document;
    // carry an existing block across re-runs of this suite.
    if let Some(million) = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| json::parse(&s).ok())
        .and_then(|v| v.get("million").cloned())
    {
        if let Value::Object(map) = &mut doc {
            map.insert("million".to_string(), million);
        }
    }
    std::fs::write(&path, doc.pretty()).expect("write BENCH_scale.json");

    // Self-validate: the written file must parse back with the expected
    // schema and sane numbers.
    let parsed = json::parse(&std::fs::read_to_string(&path).expect("read back"))
        .expect("BENCH_scale.json parses");
    assert_eq!(
        parsed.get("schema").and_then(Value::as_str),
        Some("tfc-bench-scale/v6")
    );
    let host = parsed.get("host").expect("host block present");
    for key in ["available_parallelism", "active_threads"] {
        assert!(
            host.get(key).and_then(Value::as_f64).is_some(),
            "host.{key} must be recorded"
        );
    }
    assert!(
        parsed
            .get("scenarios")
            .and_then(Value::as_array)
            .into_iter()
            .flatten()
            .any(|s| s.get("name").and_then(Value::as_str) == Some("fat_tree_multipath")),
        "multipath scenario missing from the suite"
    );
    let scen = parsed
        .get("scenarios")
        .and_then(Value::as_array)
        .expect("scenarios array");
    assert!(!scen.is_empty(), "no scenarios recorded");
    for s in scen {
        for key in [
            "heap_events_per_sec",
            "wheel_nobatch_events_per_sec",
            "wheel_events_per_sec",
            "sharded1_events_per_sec",
            "sharded2_events_per_sec",
            "sharded4_events_per_sec",
            "sharded_speedup",
            "traced_events_per_sec",
            "trace_overhead",
        ] {
            let v = s.get(key).and_then(Value::as_f64).expect("rate present");
            assert!(v > 0.0, "{key} must be positive");
        }
    }
    println!("{}", path.display());
}
