//! `tfc-trace` — inspect the artifact bundle of a telemetry-enabled run.
//!
//! ```text
//! tfc-trace <results/run-dir>    summarize an exported run
//! tfc-trace --smoke              run a small full-telemetry incast,
//!                                export it, then summarize the artifact
//! tfc-trace --chaos-smoke        run the chaos smoke pair (link flap +
//!                                host stall, fixed seed) and summarize
//!                                both artifact bundles
//! tfc-trace --help               this text
//! ```
//!
//! The summary is built from the artifact files alone (manifest.json,
//! counters.json, events.json, flows.json, tfc_slots.csv) — nothing is
//! recomputed from a live simulation, so the tool works on bundles from
//! any machine or commit.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use metrics::Sampler;
use telemetry::export::parse_slots_csv;
use telemetry::json::{self, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            eprintln!("usage: tfc-trace <results/run-dir> | --smoke | --chaos-smoke");
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("--smoke") => match smoke_run() {
            Ok(dir) => summarize(&dir),
            Err(e) => {
                eprintln!("tfc-trace: smoke run failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some("--chaos-smoke") => match chaos_smoke_run() {
            Ok(dirs) => {
                for dir in &dirs {
                    println!("\n=== {} ===", dir.display());
                    if let Err(e) = try_summarize(dir) {
                        eprintln!("tfc-trace: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tfc-trace: chaos smoke failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some(dir) => summarize(Path::new(dir)),
    }
}

/// Runs a small incast with full telemetry and returns the exported
/// artifact directory.
fn smoke_run() -> Result<PathBuf, String> {
    use experiments::incast::IncastExpConfig;
    use experiments::Proto;
    use telemetry::TelemetryConfig;

    let mut cfg = IncastExpConfig::testbed(Proto::Tfc, 8, 2);
    cfg.telemetry = TelemetryConfig::full("smoke-incast");
    println!("running smoke incast (8 senders, 2 rounds, full telemetry)...");
    experiments::incast::run(&cfg);
    let dir = telemetry::export::results_dir().join("smoke-incast");
    if dir.join("manifest.json").exists() {
        Ok(dir)
    } else {
        Err(format!("no artifacts under {}", dir.display()))
    }
}

/// Runs the chaos smoke pair — a link flap and a host stall on a TFC
/// star, fixed seed, full event telemetry — and returns the exported
/// artifact directories.
fn chaos_smoke_run() -> Result<Vec<PathBuf>, String> {
    use experiments::faults::{self, FaultsConfig, Scenario};
    use experiments::Proto;

    let mut dirs = Vec::new();
    for (scenario, run) in [
        (Scenario::LinkFlap, "smoke-chaos-flap"),
        (Scenario::HostStall, "smoke-chaos-stall"),
    ] {
        let cfg = FaultsConfig::exporting(Proto::Tfc, scenario, run);
        println!(
            "running chaos smoke ({} on a 5-host star, seed {})...",
            scenario.label(),
            cfg.seed
        );
        let r = faults::run(&cfg);
        dirs.push(
            r.export_dir
                .ok_or_else(|| format!("{run}: no artifacts exported"))?,
        );
    }
    Ok(dirs)
}

fn load_json(dir: &Path, name: &str) -> Result<Value, String> {
    let path = dir.join(name);
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn summarize(dir: &Path) -> ExitCode {
    match try_summarize(dir) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tfc-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_summarize(dir: &Path) -> Result<(), String> {
    let manifest = load_json(dir, "manifest.json")?;
    let counters = load_json(dir, "counters.json")?;
    let events = load_json(dir, "events.json")?;
    let flows = load_json(dir, "flows.json")?;

    let s = |v: &Value, k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let n = |v: &Value, k: &str| v.get(k).and_then(Value::as_i64).unwrap_or(0);

    println!("run      : {}", s(&manifest, "run"));
    println!(
        "manifest : seed={} git={} topology={}",
        n(&manifest, "seed"),
        s(&manifest, "git"),
        s(&manifest, "topology"),
    );

    // Exact per-kind counts (pre-sampling, pre-eviction).
    println!("\nevent counts (exact):");
    let ev_counts = counters
        .get("events")
        .ok_or("counters.json: missing `events`")?;
    let mut drops = 0;
    let mut retransmits = 0;
    if let Value::Object(m) = ev_counts {
        for (kind, count) in m {
            let c = count.as_i64().unwrap_or(0);
            if c > 0 {
                println!("  {kind:<22} {c}");
            }
            match kind.as_str() {
                "pkt_drop" => drops = c,
                "flow_retransmit" => retransmits = c,
                _ => {}
            }
        }
    }
    println!(
        "  stored {} / evicted {} / sampled out {}",
        n(&counters, "stored"),
        n(&counters, "evicted"),
        n(&counters, "sampled_out"),
    );

    // Event-loop profile. Profiled runs also carry per-kind dispatch
    // batch counts, from which the mean coalescing factor falls out.
    if let Some(rows) = counters.get("loop").and_then(Value::as_array) {
        println!("\nevent loop:");
        for row in rows {
            let c = n(row, "count");
            if c > 0 {
                let ns = n(row, "nanos");
                let batches = row.get("batches").and_then(Value::as_i64).unwrap_or(0);
                if batches > 0 {
                    println!(
                        "  {:<22} {c:>10}  {batches:>10} batches ({:.2}/batch)  {:.3} ms",
                        s(row, "event"),
                        c as f64 / batches as f64,
                        ns as f64 / 1e6
                    );
                } else {
                    println!("  {:<22} {c:>10}  {:.3} ms", s(row, "event"), ns as f64 / 1e6);
                }
            }
        }
        println!(
            "  total: {} events, {:.3} ms handler time",
            n(&counters, "loop_total"),
            n(&counters, "loop_total_nanos") as f64 / 1e6,
        );
    }

    // Queue-depth percentiles over the stored enqueue events.
    let recs = events.as_array().ok_or("events.json: not an array")?;
    let mut depths = Sampler::new();
    for r in recs {
        if r.get("kind").and_then(Value::as_str) == Some("pkt_enqueue") {
            if let Some(q) = r.get("queue_bytes").and_then(Value::as_f64) {
                depths.record(q);
            }
        }
    }
    if !depths.is_empty() {
        println!("\nqueue depth at enqueue ({} stored events):", depths.len());
        for p in [50.0, 90.0, 99.0, 99.9] {
            if let Some(v) = depths.percentile(p) {
                println!("  p{p:<5} {v:.0} B");
            }
        }
        println!("  max    {:.0} B", depths.max().unwrap_or(0.0));
    }

    // Per-flow timelines from the ground-truth summaries.
    let fl = flows.as_array().ok_or("flows.json: not an array")?;
    let delivered: i64 = fl.iter().map(|f| n(f, "delivered")).sum();
    println!(
        "\nflows: {}   delivered {} B   drops {drops}   retransmits {retransmits}",
        fl.len(),
        delivered,
    );
    let show = fl.len().min(10);
    for f in &fl[..show] {
        let done = f
            .get("receiver_done_ns")
            .and_then(Value::as_i64)
            .map(|t| format!("{:.3} ms", t as f64 / 1e6))
            .unwrap_or_else(|| "unfinished".into());
        println!(
            "  flow {:<4} {} -> {}  {:>9} B delivered  started {:.3} ms  done {}  rtx {}  rto {}",
            n(f, "flow"),
            n(f, "src"),
            n(f, "dst"),
            n(f, "delivered"),
            n(f, "started_ns") as f64 / 1e6,
            done,
            n(f, "retransmits"),
            n(f, "timeouts"),
        );
    }
    if fl.len() > show {
        println!("  ... and {} more", fl.len() - show);
    }

    // TFC per-port slot gauges.
    let slots = match fs::read_to_string(dir.join("tfc_slots.csv")) {
        Ok(text) => parse_slots_csv(&text)?,
        Err(_) => Vec::new(),
    };
    if !slots.is_empty() {
        let mut per_port: BTreeMap<(u32, u16), (usize, f64, u64)> = BTreeMap::new();
        for sl in &slots {
            let e = per_port.entry((sl.node, sl.port)).or_insert((0, 0.0, 0));
            e.0 += 1;
            e.1 += sl.rho;
            e.2 = sl.delayed_total;
        }
        println!("\ntfc slot gauges ({} samples):", slots.len());
        for ((node, port), (count, rho_sum, delayed)) in per_port {
            println!(
                "  switch {node} port {port}: {count} slots  mean rho {:.3}  delayed ACKs {delayed}",
                rho_sum / count as f64,
            );
        }
    }

    fault_summary(recs, &slots, &s, &n);
    Ok(())
}

/// The recovery section: fault windows paired from the event log, the
/// aggregate-goodput dip around them, window re-acquisition, and §4.3
/// token reclamation read off the per-port `effective_flows` gauge.
/// Prints nothing for fault-free runs.
fn fault_summary(
    recs: &[Value],
    slots: &[telemetry::PortSlotSample],
    s: &dyn Fn(&Value, &str) -> String,
    n: &dyn Fn(&Value, &str) -> i64,
) {
    let mut fault_events = Vec::new();
    for r in recs {
        let cleared = match r.get("kind").and_then(Value::as_str) {
            Some("fault_injected") => false,
            Some("fault_cleared") => true,
            _ => continue,
        };
        fault_events.push(chaos::recovery::FaultEventRec {
            at_ns: n(r, "at_ns") as u64,
            kind: s(r, "fault"),
            cleared,
            node: n(r, "node") as u32,
            port: n(r, "port") as u16,
            value: n(r, "value") as u64,
        });
    }
    if fault_events.is_empty() {
        return;
    }
    let windows = chaos::recovery::pair_windows(&fault_events);
    println!("\nfault windows:");
    for w in &windows {
        let end = w
            .end_ns
            .map(|e| format!("{:.3} ms", e as f64 / 1e6))
            .unwrap_or_else(|| "open".into());
        println!(
            "  {:<12} node {} port {}  {:.3} ms -> {}  (value {})",
            w.kind,
            w.node,
            w.port,
            w.start_ns as f64 / 1e6,
            end,
            w.value
        );
    }
    let start = windows.iter().map(|w| w.start_ns).min().unwrap_or(0);
    let end = windows
        .iter()
        .filter_map(|w| w.end_ns)
        .max()
        .unwrap_or(start);
    let mut deliveries = Vec::new();
    let mut acquired = Vec::new();
    for r in recs {
        match r.get("kind").and_then(Value::as_str) {
            Some("pkt_deliver") => deliveries.push((n(r, "at_ns") as u64, n(r, "bytes") as u64)),
            Some("flow_window_acquired") => acquired.push(n(r, "at_ns") as u64),
            _ => {}
        }
    }
    println!("\nrecovery:");
    const BIN_NS: u64 = 500_000;
    match chaos::recovery::goodput_dip(&deliveries, start, end, BIN_NS) {
        Some(d) => {
            println!(
                "  goodput: baseline {:.0} Mbps, floor {:.0} Mbps (dip {:.0} %)",
                d.baseline_bps / 1e6,
                d.floor_bps / 1e6,
                d.depth * 100.0
            );
            match d.recovery_ns {
                Some(r) => println!(
                    "  back to 90 % of baseline {:.3} ms after the last fault cleared",
                    r as f64 / 1e6
                ),
                None => println!("  never back to 90 % of baseline before the run ended"),
            }
        }
        None => println!("  goodput: no pre-fault baseline (fault too early or no deliveries)"),
    }
    match chaos::recovery::time_to_first_after(&acquired, end) {
        Some(t) => println!(
            "  first window acquisition {:.3} µs after the fault cleared",
            t as f64 / 1e3
        ),
        None => println!("  no window acquisitions after the fault cleared"),
    }
    // §4.3: per-port effective-flow count shedding the silenced flow.
    let mut per_port: BTreeMap<(u32, u16), Vec<(u64, f64)>> = BTreeMap::new();
    for sl in slots {
        per_port
            .entry((sl.node, sl.port))
            .or_default()
            .push((sl.at_ns, sl.effective_flows));
    }
    for ((node, port), series) in per_port {
        // Only ports that had flows to lose (E > 1 pre-fault).
        let Some(&(_, e_before)) = series.iter().take_while(|&&(t, _)| t < start).last() else {
            continue;
        };
        if e_before < 1.5 {
            continue;
        }
        match chaos::recovery::settle_time_ns(&series, start, e_before - 0.5) {
            Some(t) => println!(
                "  switch {node} port {port}: E {e_before:.2} pre-fault, one flow's tokens reclaimed {:.3} µs after injection",
                t as f64 / 1e3
            ),
            None => println!(
                "  switch {node} port {port}: E {e_before:.2} pre-fault, tokens never reclaimed"
            ),
        }
    }
}
