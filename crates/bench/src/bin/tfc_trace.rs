//! `tfc-trace` — inspect the artifact bundle of a telemetry-enabled run.
//!
//! ```text
//! tfc-trace <results/run-dir>    summarize an exported run
//! tfc-trace --smoke              run a small full-telemetry incast,
//!                                export it, then summarize the artifact
//! tfc-trace --help               this text
//! ```
//!
//! The summary is built from the artifact files alone (manifest.json,
//! counters.json, events.json, flows.json, tfc_slots.csv) — nothing is
//! recomputed from a live simulation, so the tool works on bundles from
//! any machine or commit.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use metrics::Sampler;
use telemetry::export::parse_slots_csv;
use telemetry::json::{self, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            eprintln!("usage: tfc-trace <results/run-dir> | --smoke");
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("--smoke") => match smoke_run() {
            Ok(dir) => summarize(&dir),
            Err(e) => {
                eprintln!("tfc-trace: smoke run failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some(dir) => summarize(Path::new(dir)),
    }
}

/// Runs a small incast with full telemetry and returns the exported
/// artifact directory.
fn smoke_run() -> Result<PathBuf, String> {
    use experiments::incast::IncastExpConfig;
    use experiments::Proto;
    use telemetry::TelemetryConfig;

    let mut cfg = IncastExpConfig::testbed(Proto::Tfc, 8, 2);
    cfg.telemetry = TelemetryConfig::full("smoke-incast");
    println!("running smoke incast (8 senders, 2 rounds, full telemetry)...");
    experiments::incast::run(&cfg);
    let dir = telemetry::export::results_dir().join("smoke-incast");
    if dir.join("manifest.json").exists() {
        Ok(dir)
    } else {
        Err(format!("no artifacts under {}", dir.display()))
    }
}

fn load_json(dir: &Path, name: &str) -> Result<Value, String> {
    let path = dir.join(name);
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn summarize(dir: &Path) -> ExitCode {
    match try_summarize(dir) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tfc-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_summarize(dir: &Path) -> Result<(), String> {
    let manifest = load_json(dir, "manifest.json")?;
    let counters = load_json(dir, "counters.json")?;
    let events = load_json(dir, "events.json")?;
    let flows = load_json(dir, "flows.json")?;

    let s = |v: &Value, k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let n = |v: &Value, k: &str| v.get(k).and_then(Value::as_i64).unwrap_or(0);

    println!("run      : {}", s(&manifest, "run"));
    println!(
        "manifest : seed={} git={} topology={}",
        n(&manifest, "seed"),
        s(&manifest, "git"),
        s(&manifest, "topology"),
    );

    // Exact per-kind counts (pre-sampling, pre-eviction).
    println!("\nevent counts (exact):");
    let ev_counts = counters
        .get("events")
        .ok_or("counters.json: missing `events`")?;
    let mut drops = 0;
    let mut retransmits = 0;
    if let Value::Object(m) = ev_counts {
        for (kind, count) in m {
            let c = count.as_i64().unwrap_or(0);
            if c > 0 {
                println!("  {kind:<22} {c}");
            }
            match kind.as_str() {
                "pkt_drop" => drops = c,
                "flow_retransmit" => retransmits = c,
                _ => {}
            }
        }
    }
    println!(
        "  stored {} / evicted {} / sampled out {}",
        n(&counters, "stored"),
        n(&counters, "evicted"),
        n(&counters, "sampled_out"),
    );

    // Event-loop profile (all-zero nanos when profiling was off).
    if let Some(rows) = counters.get("loop").and_then(Value::as_array) {
        println!("\nevent loop:");
        for row in rows {
            let c = n(row, "count");
            if c > 0 {
                let ns = n(row, "nanos");
                println!("  {:<22} {c:>10}  {:.3} ms", s(row, "event"), ns as f64 / 1e6);
            }
        }
        println!(
            "  total: {} events, {:.3} ms handler time",
            n(&counters, "loop_total"),
            n(&counters, "loop_total_nanos") as f64 / 1e6,
        );
    }

    // Queue-depth percentiles over the stored enqueue events.
    let recs = events.as_array().ok_or("events.json: not an array")?;
    let mut depths = Sampler::new();
    for r in recs {
        if r.get("kind").and_then(Value::as_str) == Some("pkt_enqueue") {
            if let Some(q) = r.get("queue_bytes").and_then(Value::as_f64) {
                depths.record(q);
            }
        }
    }
    if !depths.is_empty() {
        println!("\nqueue depth at enqueue ({} stored events):", depths.len());
        for p in [50.0, 90.0, 99.0, 99.9] {
            if let Some(v) = depths.percentile(p) {
                println!("  p{p:<5} {v:.0} B");
            }
        }
        println!("  max    {:.0} B", depths.max().unwrap_or(0.0));
    }

    // Per-flow timelines from the ground-truth summaries.
    let fl = flows.as_array().ok_or("flows.json: not an array")?;
    let delivered: i64 = fl.iter().map(|f| n(f, "delivered")).sum();
    println!(
        "\nflows: {}   delivered {} B   drops {drops}   retransmits {retransmits}",
        fl.len(),
        delivered,
    );
    let show = fl.len().min(10);
    for f in &fl[..show] {
        let done = f
            .get("receiver_done_ns")
            .and_then(Value::as_i64)
            .map(|t| format!("{:.3} ms", t as f64 / 1e6))
            .unwrap_or_else(|| "unfinished".into());
        println!(
            "  flow {:<4} {} -> {}  {:>9} B delivered  started {:.3} ms  done {}  rtx {}  rto {}",
            n(f, "flow"),
            n(f, "src"),
            n(f, "dst"),
            n(f, "delivered"),
            n(f, "started_ns") as f64 / 1e6,
            done,
            n(f, "retransmits"),
            n(f, "timeouts"),
        );
    }
    if fl.len() > show {
        println!("  ... and {} more", fl.len() - show);
    }

    // TFC per-port slot gauges.
    let csv_path = dir.join("tfc_slots.csv");
    if let Ok(text) = fs::read_to_string(&csv_path) {
        let slots = parse_slots_csv(&text)?;
        if !slots.is_empty() {
            let mut per_port: BTreeMap<(u32, u16), (usize, f64, u64)> = BTreeMap::new();
            for sl in &slots {
                let e = per_port.entry((sl.node, sl.port)).or_insert((0, 0.0, 0));
                e.0 += 1;
                e.1 += sl.rho;
                e.2 = sl.delayed_total;
            }
            println!("\ntfc slot gauges ({} samples):", slots.len());
            for ((node, port), (count, rho_sum, delayed)) in per_port {
                println!(
                    "  switch {node} port {port}: {count} slots  mean rho {:.3}  delayed ACKs {delayed}",
                    rho_sum / count as f64,
                );
            }
        }
    }
    Ok(())
}
