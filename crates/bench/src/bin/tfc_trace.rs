//! `tfc-trace` — inspect the artifact bundle of a telemetry-enabled run.
//!
//! ```text
//! tfc-trace <results/run-dir>    summarize an exported run
//! tfc-trace diff <runA> <runB>   compare two runs' artifacts and
//!                                report the first divergence
//! tfc-trace --flows <run-dir>    per-class FCT / slowdown quantile
//!                                tables from the retired-flow sketches
//!                                of a streaming run's flows.json
//! tfc-trace --smoke              run a small full-telemetry incast,
//!                                export it, then summarize the artifact
//! tfc-trace --chaos-smoke        run the chaos smoke pair (link flap +
//!                                host stall, fixed seed) and summarize
//!                                both artifact bundles
//! tfc-trace --ecmp-smoke         run a small multipath fat-tree with an
//!                                uplink flap and summarize it (per-port
//!                                spray balance, reroute records)
//! tfc-trace --diff-smoke         differ self-test: two same-seed runs
//!                                must match, a perturbed seed must not
//! tfc-trace --flows-smoke        streaming self-test: run a small
//!                                retire-enabled mix, then render it
//! tfc-trace --help               this text
//! ```
//!
//! The summary is built from the artifact files alone (manifest.json,
//! counters.json, events.json, flows.json, tfc_slots.csv, spans.json) —
//! nothing is recomputed from a live simulation, so the tool works on
//! bundles from any machine or commit.
//!
//! `diff` walks the artifacts in causal order — manifest, counters,
//! event log, flow summaries, slot gauges, span sketches, legacy trace
//! series — and stops at the first file that disagrees, pinpointing the
//! diverging key, record, line, or sketch. Exit status follows
//! `diff(1)`: 0 when identical, 1 on divergence, 2 on error.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use metrics::Sampler;
use telemetry::export::parse_slots_csv;
use telemetry::json::{self, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage: tfc-trace <results/run-dir> | diff <runA> <runB> \
                 | --flows <run-dir> | --smoke | --chaos-smoke | --ecmp-smoke \
                 | --diff-smoke | --flows-smoke"
            );
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("diff") => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: tfc-trace diff <runA> <runB>");
                return ExitCode::from(2);
            };
            match diff_runs(Path::new(a), Path::new(b)) {
                Ok(None) => {
                    println!("no divergence");
                    ExitCode::SUCCESS
                }
                Ok(Some(d)) => {
                    println!("first divergence: {d}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("tfc-trace: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("--diff-smoke") => match try_diff_smoke() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("tfc-trace: diff smoke failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some("--flows") => {
            let Some(dir) = args.get(1) else {
                eprintln!("usage: tfc-trace --flows <results/run-dir>");
                return ExitCode::from(2);
            };
            match try_flows(Path::new(dir)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("tfc-trace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--flows-smoke") => match try_flows_smoke() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("tfc-trace: flows smoke failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some("--smoke") => match smoke_run() {
            Ok(dir) => summarize(&dir),
            Err(e) => {
                eprintln!("tfc-trace: smoke run failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some("--ecmp-smoke") => match ecmp_smoke_run() {
            Ok(dir) => summarize(&dir),
            Err(e) => {
                eprintln!("tfc-trace: ecmp smoke failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some("--chaos-smoke") => match chaos_smoke_run() {
            Ok(dirs) => {
                for dir in &dirs {
                    println!("\n=== {} ===", dir.display());
                    if let Err(e) = try_summarize(dir) {
                        eprintln!("tfc-trace: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tfc-trace: chaos smoke failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some(dir) => summarize(Path::new(dir)),
    }
}

/// Runs a small incast with full telemetry and returns the exported
/// artifact directory.
fn smoke_run() -> Result<PathBuf, String> {
    use experiments::incast::IncastExpConfig;
    use experiments::Proto;
    use telemetry::TelemetryConfig;

    let mut cfg = IncastExpConfig::testbed(Proto::Tfc, 8, 2);
    cfg.telemetry = TelemetryConfig::full("smoke-incast");
    println!("running smoke incast (8 senders, 2 rounds, full telemetry)...");
    experiments::incast::run(&cfg);
    let dir = telemetry::export::results_dir().join("smoke-incast");
    if dir.join("manifest.json").exists() {
        Ok(dir)
    } else {
        Err(format!("no artifacts under {}", dir.display()))
    }
}

/// Runs the chaos smoke pair — a link flap and a host stall on a TFC
/// star, fixed seed, full event telemetry — and returns the exported
/// artifact directories.
fn chaos_smoke_run() -> Result<Vec<PathBuf>, String> {
    use experiments::faults::{self, FaultsConfig, Scenario};
    use experiments::Proto;

    let mut dirs = Vec::new();
    for (scenario, run) in [
        (Scenario::LinkFlap, "smoke-chaos-flap"),
        (Scenario::HostStall, "smoke-chaos-stall"),
    ] {
        let cfg = FaultsConfig::exporting(Proto::Tfc, scenario, run);
        println!(
            "running chaos smoke ({} on a 5-host star, seed {})...",
            scenario.label(),
            cfg.seed
        );
        let r = faults::run(&cfg);
        dirs.push(
            r.export_dir
                .ok_or_else(|| format!("{run}: no artifacts exported"))?,
        );
    }
    Ok(dirs)
}

/// Runs a small multipath fat-tree — cross-pod flows sprayed over the
/// edge uplinks by the `(flow, hop)` ECMP hash, one uplink flapping
/// down mid-run — with full event telemetry, and returns the exported
/// artifact directory. The summary's spray-balance and fault sections
/// then show the per-port split and the `Rerouted` repair records.
fn ecmp_smoke_run() -> Result<PathBuf, String> {
    use experiments::reroute::RerouteConfig;
    use experiments::Proto;

    let mut cfg = RerouteConfig::exporting(Proto::Tfc, "smoke-ecmp");
    cfg.k = 4;
    cfg.senders = 2;
    println!(
        "running ecmp smoke (k=4 fat-tree, uplink flap at {} ms, seed {})...",
        cfg.fault_at.as_nanos() / 1_000_000,
        cfg.seed
    );
    let r = experiments::reroute::run(&cfg);
    r.export_dir
        .ok_or_else(|| "no artifacts exported".to_string())
}

fn load_json(dir: &Path, name: &str) -> Result<Value, String> {
    let path = dir.join(name);
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn summarize(dir: &Path) -> ExitCode {
    match try_summarize(dir) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tfc-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_summarize(dir: &Path) -> Result<(), String> {
    let manifest = load_json(dir, "manifest.json")?;
    let counters = load_json(dir, "counters.json")?;
    let events = load_json(dir, "events.json")?;
    let flows = load_json(dir, "flows.json")?;

    let s = |v: &Value, k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let n = |v: &Value, k: &str| v.get(k).and_then(Value::as_i64).unwrap_or(0);

    println!("run      : {}", s(&manifest, "run"));
    println!(
        "manifest : seed={} git={} topology={}",
        n(&manifest, "seed"),
        s(&manifest, "git"),
        s(&manifest, "topology"),
    );

    // Exact per-kind counts (pre-sampling, pre-eviction).
    println!("\nevent counts (exact):");
    let ev_counts = counters
        .get("events")
        .ok_or("counters.json: missing `events`")?;
    let mut drops = 0;
    let mut retransmits = 0;
    if let Value::Object(m) = ev_counts {
        for (kind, count) in m {
            let c = count.as_i64().unwrap_or(0);
            if c > 0 {
                println!("  {kind:<22} {c}");
            }
            match kind.as_str() {
                "pkt_drop" => drops = c,
                "flow_retransmit" => retransmits = c,
                _ => {}
            }
        }
    }
    println!(
        "  stored {} / evicted {} / sampled out {}",
        n(&counters, "stored"),
        n(&counters, "evicted"),
        n(&counters, "sampled_out"),
    );

    // Event-loop profile. Profiled runs also carry per-kind dispatch
    // batch counts, from which the mean coalescing factor falls out.
    if let Some(rows) = counters.get("loop").and_then(Value::as_array) {
        println!("\nevent loop:");
        for row in rows {
            let c = n(row, "count");
            if c > 0 {
                let ns = n(row, "nanos");
                let batches = row.get("batches").and_then(Value::as_i64).unwrap_or(0);
                if batches > 0 {
                    println!(
                        "  {:<22} {c:>10}  {batches:>10} batches ({:.2}/batch)  {:.3} ms",
                        s(row, "event"),
                        c as f64 / batches as f64,
                        ns as f64 / 1e6
                    );
                } else {
                    println!("  {:<22} {c:>10}  {:.3} ms", s(row, "event"), ns as f64 / 1e6);
                }
            }
        }
        println!(
            "  total: {} events, {:.3} ms handler time",
            n(&counters, "loop_total"),
            n(&counters, "loop_total_nanos") as f64 / 1e6,
        );
    }

    // Queue-depth percentiles over the stored enqueue events.
    let recs = events.as_array().ok_or("events.json: not an array")?;
    let mut depths = Sampler::new();
    for r in recs {
        if r.get("kind").and_then(Value::as_str) == Some("pkt_enqueue") {
            if let Some(q) = r.get("queue_bytes").and_then(Value::as_f64) {
                depths.record(q);
            }
        }
    }
    if !depths.is_empty() {
        println!("\nqueue depth at enqueue ({} stored events):", depths.len());
        for p in [50.0, 90.0, 99.0, 99.9] {
            if let Some(v) = depths.percentile(p) {
                println!("  p{p:<5} {v:.0} B");
            }
        }
        println!("  max    {:.0} B", depths.max().unwrap_or(0.0));
    }

    // Per-flow timelines from the ground-truth summaries. A streaming
    // run's flows.json (`tfc-flows/v2`) instead carries the retired
    // per-class sketches plus only the flows still live at shutdown.
    let retired = telemetry::export::retired_from_json(&flows).ok();
    let fl: &[Value] = match (&flows, &retired) {
        (Value::Object(m), _) => m
            .get("live")
            .and_then(Value::as_array)
            .ok_or("flows.json: v2 object without `live` array")?,
        _ => flows.as_array().ok_or("flows.json: not an array")?,
    };
    if let Some(r) = &retired {
        retired_table(r);
    }
    let delivered: i64 = fl.iter().map(|f| n(f, "delivered")).sum();
    println!(
        "\nflows{}: {}   delivered {} B   drops {drops}   retransmits {retransmits}",
        if retired.is_some() { " (live at shutdown)" } else { "" },
        fl.len(),
        delivered,
    );
    let show = fl.len().min(10);
    for f in &fl[..show] {
        let done = f
            .get("receiver_done_ns")
            .and_then(Value::as_i64)
            .map(|t| format!("{:.3} ms", t as f64 / 1e6))
            .unwrap_or_else(|| "unfinished".into());
        println!(
            "  flow {:<4} {} -> {}  {:>9} B delivered  started {:.3} ms  done {}  rtx {}  rto {}",
            n(f, "flow"),
            n(f, "src"),
            n(f, "dst"),
            n(f, "delivered"),
            n(f, "started_ns") as f64 / 1e6,
            done,
            n(f, "retransmits"),
            n(f, "timeouts"),
        );
    }
    if fl.len() > show {
        println!("  ... and {} more", fl.len() - show);
    }

    // TFC per-port slot gauges.
    let slots = match fs::read_to_string(dir.join("tfc_slots.csv")) {
        Ok(text) => parse_slots_csv(&text)?,
        Err(_) => Vec::new(),
    };
    if !slots.is_empty() {
        let mut per_port: BTreeMap<(u32, u16), (usize, f64, u64)> = BTreeMap::new();
        for sl in &slots {
            let e = per_port.entry((sl.node, sl.port)).or_insert((0, 0.0, 0));
            e.0 += 1;
            e.1 += sl.rho;
            e.2 = sl.delayed_total;
        }
        println!("\ntfc slot gauges ({} samples):", slots.len());
        for ((node, port), (count, rho_sum, delayed)) in per_port {
            println!(
                "  switch {node} port {port}: {count} slots  mean rho {:.3}  delayed ACKs {delayed}",
                rho_sum / count as f64,
            );
        }
    }

    spray_balance(recs, &n);
    waterfall(dir)?;
    fault_summary(recs, &slots, &s, &n);
    Ok(())
}

/// Per-port spray balance: how evenly each switch's egress ports shared
/// the forwarded packets, from the stored `pkt_enqueue` events. Only
/// switches that spread traffic over more than one port are shown —
/// the multipath signature (ECMP spray, or reroute shifting flows onto
/// surviving members). `balance` is the min/max port share: 1.00 is a
/// perfect split, small values a lopsided one.
fn spray_balance(recs: &[Value], n: &dyn Fn(&Value, &str) -> i64) {
    let mut per_node: BTreeMap<i64, BTreeMap<i64, (u64, u64)>> = BTreeMap::new();
    for r in recs {
        if r.get("kind").and_then(Value::as_str) == Some("pkt_enqueue") {
            let e = per_node
                .entry(n(r, "node"))
                .or_default()
                .entry(n(r, "port"))
                .or_insert((0, 0));
            e.0 += 1;
            e.1 += n(r, "bytes") as u64;
        }
    }
    per_node.retain(|_, ports| ports.len() > 1);
    if per_node.is_empty() {
        return;
    }
    println!("\nper-port spray balance (multi-port switches):");
    for (node, ports) in &per_node {
        let pkts: Vec<u64> = ports.values().map(|&(p, _)| p).collect();
        let (min, max) = (
            *pkts.iter().min().expect("non-empty"),
            *pkts.iter().max().expect("non-empty"),
        );
        let split = ports
            .iter()
            .map(|(port, &(p, b))| format!("p{port} {p} pkts/{b} B"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "  switch {node}: {split}  (balance {:.2})",
            min as f64 / max as f64
        );
    }
}

/// Renders the retired-flow class table of a streaming run: per-class
/// FCT, bytes, and slowdown quantiles straight off the exported
/// sketches, plus the slab high-water marks (the resident-memory
/// proxy the memory-bound claim rests on).
fn retired_table(r: &telemetry::RetiredFlows) {
    println!(
        "\nretired flows: {} total  (sketch α {:.3}, flow slab {} slots, peak {} live)",
        r.total, r.alpha, r.slab_capacity, r.slab_peak
    );
    println!(
        "  {:<16} {:>9} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "class", "count", "fct p50µs", "fct p99µs", "fct p999µs", "bytes p50", "rtx p99", "sd p50", "sd p99"
    );
    for c in &r.classes {
        if c.count == 0 {
            continue;
        }
        let q = |s: &metrics::QuantileSketch, q: f64| s.quantile(q).unwrap_or(0.0);
        let sd = |p: f64| q(&c.slowdown_milli, p) / simnet::retire::SLOWDOWN_SCALE;
        println!(
            "  {:<16} {:>9} {:>10.1} {:>10.1} {:>10.1} {:>10.0} {:>8.0} {:>8.2} {:>8.2}",
            c.name,
            c.count,
            q(&c.fct_ns, 0.5) / 1e3,
            q(&c.fct_ns, 0.99) / 1e3,
            q(&c.fct_ns, 0.999) / 1e3,
            q(&c.bytes, 0.5),
            q(&c.retransmits, 0.99),
            sd(0.5),
            sd(0.99),
        );
    }
}

/// `--flows <dir>`: the retired-class table alone, for streaming runs.
fn try_flows(dir: &Path) -> Result<(), String> {
    let flows = load_json(dir, "flows.json")?;
    let retired = telemetry::export::retired_from_json(&flows)
        .map_err(|e| format!("flows.json: {e} (not a streaming run?)"))?;
    println!("run dir  : {}", dir.display());
    retired_table(&retired);
    Ok(())
}

/// `--flows-smoke`: run a small retire-enabled streaming mix, render
/// its table, and check the artifact round-trips through the reader.
fn try_flows_smoke() -> Result<(), String> {
    use experiments::million::MillionConfig;

    let mut cfg = MillionConfig::oracle();
    cfg.target_flows = 2_000;
    cfg.keep_exact = false;
    cfg.telemetry = MillionConfig::streaming_telemetry("smoke-flows");
    println!("running flows smoke (2000 streaming flows, retirement on)...");
    let stats = experiments::million::run(&cfg);
    let dir = telemetry::export::results_dir().join("smoke-flows");
    try_flows(&dir)?;
    let retired = telemetry::export::retired_from_json(&load_json(&dir, "flows.json")?)?;
    if retired.total != stats.retired {
        return Err(format!(
            "exported retired count {} != simulator's {}",
            retired.total, stats.retired
        ));
    }
    if retired.classes.iter().all(|c| c.count == 0) {
        return Err("no class retired any flow".into());
    }
    Ok(())
}

/// The latency waterfall: per-stage, per-hop lifecycle sketches from
/// `spans.json` — how long packets spent in host queues, switch queues,
/// on the wire, and waiting for tokens, at each hop. Prints nothing for
/// untraced runs (the file is only written when tracing is on).
fn waterfall(dir: &Path) -> Result<(), String> {
    if !dir.join("spans.json").exists() {
        return Ok(());
    }
    let spans = load_json(dir, "spans.json")?;
    let trace = spans.get("trace").and_then(Value::as_str).unwrap_or("?");
    let tracked = spans
        .get("tracked_packets")
        .and_then(Value::as_i64)
        .unwrap_or(0);
    let dropped = spans
        .get("dropped_packets")
        .and_then(Value::as_i64)
        .unwrap_or(0);
    let rows = spans
        .get("stages")
        .and_then(Value::as_array)
        .ok_or("spans.json: missing `stages`")?;
    println!("\nlatency waterfall ({trace} trace, {tracked} packets tracked, {dropped} dropped):");
    println!(
        "  {:<10} {:>3} {:>9} {:>11} {:>11} {:>11} {:>11}",
        "stage", "hop", "count", "p50 µs", "p99 µs", "p999 µs", "max µs"
    );
    for row in rows {
        let stage = row.get("stage").and_then(Value::as_str).unwrap_or("?");
        let hop = row.get("hop").and_then(Value::as_i64).unwrap_or(0);
        let count = row.get("count").and_then(Value::as_i64).unwrap_or(0);
        let us = |k: &str| {
            row.get(k)
                .and_then(Value::as_f64)
                .map(|v| format!("{:.1}", v / 1e3))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "  {stage:<10} {hop:>3} {count:>9} {:>11} {:>11} {:>11} {:>11}",
            us("p50"),
            us("p99"),
            us("p999"),
            us("max_ns"),
        );
    }
    Ok(())
}

/// Artifact comparison order for `diff`: identity first, then the logs
/// in causal order, derived telemetry last.
const DIFF_FILES: [&str; 7] = [
    "manifest.json",
    "counters.json",
    "events.json",
    "flows.json",
    "tfc_slots.csv",
    "spans.json",
    "traces.csv",
];

/// Compares two run directories artifact by artifact; returns the first
/// divergence as a human-readable report, `None` if the runs match.
fn diff_runs(a: &Path, b: &Path) -> Result<Option<String>, String> {
    for dir in [a, b] {
        if !dir.join("manifest.json").exists() {
            return Err(format!(
                "{}: not a run directory (no manifest.json)",
                dir.display()
            ));
        }
    }
    for file in DIFF_FILES {
        let (pa, pb) = (a.join(file), b.join(file));
        match (pa.exists(), pb.exists()) {
            (false, false) => continue,
            (true, false) => return Ok(Some(format!("{file}: only in {}", a.display()))),
            (false, true) => return Ok(Some(format!("{file}: only in {}", b.display()))),
            (true, true) => {}
        }
        let ta = fs::read_to_string(&pa).map_err(|e| format!("{}: {e}", pa.display()))?;
        let tb = fs::read_to_string(&pb).map_err(|e| format!("{}: {e}", pb.display()))?;
        if let Some(d) = diff_file(file, &ta, &tb)? {
            return Ok(Some(format!("{file}: {d}")));
        }
    }
    Ok(None)
}

/// Compares one artifact's text from both runs. JSON artifacts are
/// compared structurally so the report can name the diverging key or
/// record; CSVs fall back to line comparison.
fn diff_file(file: &str, ta: &str, tb: &str) -> Result<Option<String>, String> {
    if !file.ends_with(".json") {
        return Ok(line_diff(ta, tb));
    }
    let va = json::parse(ta).map_err(|e| format!("first run: {e}"))?;
    let vb = json::parse(tb).map_err(|e| format!("second run: {e}"))?;
    Ok(match file {
        // Run name and git describe legitimately differ between
        // otherwise-equivalent runs; everything else must match.
        "manifest.json" => {
            let strip = |v: &Value| {
                let mut v = v.clone();
                if let Value::Object(m) = &mut v {
                    m.remove("run");
                    m.remove("git");
                }
                v
            };
            first_key_diff(&strip(&va), &strip(&vb))
        }
        "events.json" => first_record_diff("record", &va, &vb)?,
        "flows.json" => flows_diff(&va, &vb)?,
        "spans.json" => spans_diff(&va, &vb)?,
        _ => first_key_diff(&va, &vb),
    })
}

/// One-line rendering of a JSON value for divergence reports.
fn compact(v: &Value) -> String {
    let s = v.pretty().split_whitespace().collect::<Vec<_>>().join(" ");
    if s.len() > 160 {
        let head: String = s.chars().take(160).collect();
        format!("{head}...")
    } else {
        s
    }
}

/// First differing top-level key between two JSON objects (non-objects
/// fall back to whole-value comparison).
fn first_key_diff(a: &Value, b: &Value) -> Option<String> {
    if let (Value::Object(ma), Value::Object(mb)) = (a, b) {
        let keys: std::collections::BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
        for k in keys {
            match (ma.get(k), mb.get(k)) {
                (Some(x), Some(y)) if x == y => {}
                (Some(Value::Str(sx)), Some(Value::Str(sy)))
                    if sx.len() > 80 || sy.len() > 80 =>
                {
                    let (wx, wy) = str_diff_windows(sx, sy);
                    return Some(format!("`{k}` differs: {wx:?} vs {wy:?}"));
                }
                (Some(x), Some(y)) => {
                    return Some(format!(
                        "`{k}` differs: {} vs {}",
                        compact(x),
                        compact(y)
                    ))
                }
                (Some(_), None) => return Some(format!("`{k}` only in first run")),
                (None, Some(_)) => return Some(format!("`{k}` only in second run")),
                (None, None) => {}
            }
        }
        None
    } else if a == b {
        None
    } else {
        Some(format!("differs: {} vs {}", compact(a), compact(b)))
    }
}

/// For long strings, a window around the first differing character —
/// a full config dump differing in one field should show that field,
/// not two identical-looking truncated prefixes.
fn str_diff_windows(a: &str, b: &str) -> (String, String) {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let mut p = 0;
    while p < ac.len() && p < bc.len() && ac[p] == bc[p] {
        p += 1;
    }
    let start = p.saturating_sub(20);
    let window = |c: &[char]| {
        let end = (start + 120).min(c.len());
        let mut s = String::new();
        if start > 0 {
            s.push_str("...");
        }
        s.extend(&c[start..end]);
        if end < c.len() {
            s.push_str("...");
        }
        s
    };
    (window(&ac), window(&bc))
}

/// First differing entry between two JSON arrays of `unit`s.
fn first_record_diff(unit: &str, a: &Value, b: &Value) -> Result<Option<String>, String> {
    let ra = a.as_array().ok_or(format!("first run: not an array of {unit}s"))?;
    let rb = b.as_array().ok_or(format!("second run: not an array of {unit}s"))?;
    for (i, (x, y)) in ra.iter().zip(rb).enumerate() {
        if x != y {
            return Ok(Some(format!(
                "first divergence at {unit} {i}: {} vs {}",
                compact(x),
                compact(y)
            )));
        }
    }
    if ra.len() != rb.len() {
        return Ok(Some(format!(
            "{} vs {} {unit}s (common prefix identical)",
            ra.len(),
            rb.len()
        )));
    }
    Ok(None)
}

/// First differing line between two text artifacts.
fn line_diff(ta: &str, tb: &str) -> Option<String> {
    for (i, (la, lb)) in ta.lines().zip(tb.lines()).enumerate() {
        if la != lb {
            return Some(format!(
                "first divergence at line {}: {la:?} vs {lb:?}",
                i + 1
            ));
        }
    }
    let (na, nb) = (ta.lines().count(), tb.lines().count());
    (na != nb).then(|| format!("{na} vs {nb} lines (common prefix identical)"))
}

/// Flow-table comparison, both schema forms. Legacy runs export a bare
/// array of per-flow summaries; streaming runs export the `tfc-flows/v2`
/// object (retired-class sketches + live flows). Mixed forms are
/// themselves a divergence — a retirement-config change between runs.
fn flows_diff(a: &Value, b: &Value) -> Result<Option<String>, String> {
    match (a, b) {
        (Value::Array(_), Value::Array(_)) => first_record_diff("flow", a, b),
        (Value::Object(ma), Value::Object(mb)) => {
            let arr = |m: &json::Map, k: &str| {
                m.get(k).and_then(Value::as_array).unwrap_or(&[]).to_vec()
            };
            if let Some(d) = first_record_diff(
                "retired class",
                &Value::Array(arr(ma, "classes")),
                &Value::Array(arr(mb, "classes")),
            )? {
                return Ok(Some(d));
            }
            if let Some(d) = first_record_diff(
                "live flow",
                &Value::Array(arr(ma, "live")),
                &Value::Array(arr(mb, "live")),
            )? {
                return Ok(Some(d));
            }
            let strip = |v: &Value| {
                let mut v = v.clone();
                if let Value::Object(m) = &mut v {
                    m.remove("classes");
                    m.remove("live");
                }
                v
            };
            Ok(first_key_diff(&strip(a), &strip(b)))
        }
        _ => Ok(Some(
            "one run exports the legacy flow array, the other the tfc-flows/v2 object".into(),
        )),
    }
}

/// Span-sketch comparison: names the first (stage, hop) whose sketch
/// disagrees, then sweeps the header fields (trace mode, packet and
/// drop tallies).
fn spans_diff(a: &Value, b: &Value) -> Result<Option<String>, String> {
    let rows = |v: &Value| v.get("stages").and_then(Value::as_array).unwrap_or(&[]).to_vec();
    let (ra, rb) = (rows(a), rows(b));
    for (x, y) in ra.iter().zip(&rb) {
        if x != y {
            let stage = x.get("stage").and_then(Value::as_str).unwrap_or("?");
            let hop = x.get("hop").and_then(Value::as_i64).unwrap_or(0);
            let count = |v: &Value| v.get("count").and_then(Value::as_i64).unwrap_or(0);
            let p50 = |v: &Value| v.get("p50").and_then(Value::as_f64).unwrap_or(0.0);
            return Ok(Some(format!(
                "sketch {stage}@{hop} differs (count {} vs {}, p50 {:.0} vs {:.0} ns)",
                count(x),
                count(y),
                p50(x),
                p50(y)
            )));
        }
    }
    if ra.len() != rb.len() {
        return Ok(Some(format!(
            "{} vs {} sketch rows (common prefix identical)",
            ra.len(),
            rb.len()
        )));
    }
    let strip = |v: &Value| {
        let mut v = v.clone();
        if let Value::Object(m) = &mut v {
            m.remove("stages");
        }
        v
    };
    Ok(first_key_diff(&strip(a), &strip(b)))
}

/// `--diff-smoke`: the differ's own regression. Two full-trace incasts
/// at the same seed must report no divergence (tracing and export are
/// deterministic); bumping the seed must produce a first-divergence
/// report.
fn try_diff_smoke() -> Result<(), String> {
    use experiments::incast::IncastExpConfig;
    use experiments::Proto;
    use telemetry::{LogMode, TelemetryConfig, TraceConfig};

    // Every run exports under the same name and is renamed afterwards:
    // the manifest records the full experiment config (which embeds the
    // export name), so distinct export names would read as a config
    // divergence between otherwise-identical runs.
    let run = |name: &str, seed: u64| -> Result<PathBuf, String> {
        let mut cfg = IncastExpConfig::testbed(Proto::Tfc, 6, 1);
        cfg.seed = seed;
        cfg.telemetry = TelemetryConfig {
            events: LogMode::Full,
            sample_one_in: 1,
            tfc_gauges: true,
            // Wall-clock timings are never comparable across runs.
            profile: false,
            trace: TraceConfig::Full,
            export: Some("diffsmoke".to_string()),
        };
        experiments::incast::run(&cfg);
        let src = telemetry::export::results_dir().join("diffsmoke");
        let dst = telemetry::export::results_dir().join(name);
        std::fs::remove_dir_all(&dst).ok();
        std::fs::rename(&src, &dst)
            .map_err(|e| format!("{} -> {}: {e}", src.display(), dst.display()))?;
        if dst.join("manifest.json").exists() {
            Ok(dst)
        } else {
            Err(format!("no artifacts under {}", dst.display()))
        }
    };
    println!("running diff-smoke incasts (two at seed 7, one at seed 8)...");
    let a = run("diffsmoke-a", 7)?;
    let b = run("diffsmoke-b", 7)?;
    let c = run("diffsmoke-c", 8)?;
    match diff_runs(&a, &b)? {
        None => println!("same-seed runs: no divergence"),
        Some(d) => return Err(format!("same-seed runs diverge: {d}")),
    }
    match diff_runs(&a, &c)? {
        Some(d) => println!("perturbed-seed runs: first divergence: {d}"),
        None => return Err("perturbed-seed runs show no divergence".into()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::json;

    #[test]
    fn key_diff_names_the_field() {
        let a = json::parse(r#"{"seed": 7, "x": 1}"#).unwrap();
        let b = json::parse(r#"{"seed": 8, "x": 1}"#).unwrap();
        assert_eq!(first_key_diff(&a, &a), None);
        let d = first_key_diff(&a, &b).unwrap();
        assert!(d.contains("`seed`") && d.contains('7') && d.contains('8'), "{d}");
    }

    #[test]
    fn record_diff_finds_the_first_index() {
        let a = json::parse(r#"[{"k": 1}, {"k": 2}, {"k": 3}]"#).unwrap();
        let b = json::parse(r#"[{"k": 1}, {"k": 9}, {"k": 3}]"#).unwrap();
        assert_eq!(first_record_diff("record", &a, &a).unwrap(), None);
        let d = first_record_diff("record", &a, &b).unwrap().unwrap();
        assert!(d.contains("record 1"), "{d}");
        let short = json::parse(r#"[{"k": 1}]"#).unwrap();
        let d = first_record_diff("record", &a, &short).unwrap().unwrap();
        assert!(d.contains("3 vs 1"), "{d}");
    }

    #[test]
    fn line_diff_is_one_indexed() {
        assert_eq!(line_diff("a\nb\n", "a\nb\n"), None);
        let d = line_diff("a\nb\nc\n", "a\nx\nc\n").unwrap();
        assert!(d.contains("line 2"), "{d}");
        let d = line_diff("a\n", "a\nb\n").unwrap();
        assert!(d.contains("1 vs 2 lines"), "{d}");
    }

    #[test]
    fn manifest_diff_ignores_run_and_git_only() {
        let a = r#"{"run": "x", "git": "aaa", "seed": 7}"#;
        let b = r#"{"run": "y", "git": "bbb", "seed": 7}"#;
        assert_eq!(diff_file("manifest.json", a, b).unwrap(), None);
        let c = r#"{"run": "y", "git": "bbb", "seed": 8}"#;
        let d = diff_file("manifest.json", a, c).unwrap().unwrap();
        assert!(d.contains("`seed`"), "{d}");
    }

    #[test]
    fn flows_diff_handles_both_schema_forms() {
        let legacy_a = r#"[{"flow": 0, "delivered": 10}]"#;
        let legacy_b = r#"[{"flow": 0, "delivered": 20}]"#;
        assert_eq!(diff_file("flows.json", legacy_a, legacy_a).unwrap(), None);
        let d = diff_file("flows.json", legacy_a, legacy_b).unwrap().unwrap();
        assert!(d.contains("flow 0"), "{d}");

        let v2_a = r#"{"schema": "tfc-flows/v2", "retired_total": 5,
                       "classes": [{"class": 0, "count": 5}], "live": []}"#;
        let v2_b = r#"{"schema": "tfc-flows/v2", "retired_total": 6,
                       "classes": [{"class": 0, "count": 6}], "live": []}"#;
        assert_eq!(diff_file("flows.json", v2_a, v2_a).unwrap(), None);
        let d = diff_file("flows.json", v2_a, v2_b).unwrap().unwrap();
        assert!(d.contains("retired class 0"), "{d}");

        let d = diff_file("flows.json", legacy_a, v2_a).unwrap().unwrap();
        assert!(d.contains("legacy"), "{d}");
    }

    #[test]
    fn spans_diff_names_the_sketch() {
        let a = r#"{"trace": "full", "stages": [{"stage": "sw_q", "hop": 1, "count": 4, "p50": 100}]}"#;
        let b = r#"{"trace": "full", "stages": [{"stage": "sw_q", "hop": 1, "count": 5, "p50": 120}]}"#;
        assert_eq!(diff_file("spans.json", a, a).unwrap(), None);
        let d = diff_file("spans.json", a, b).unwrap().unwrap();
        assert!(d.contains("sw_q@1") && d.contains("4 vs 5"), "{d}");
    }
}

/// The recovery section: fault windows paired from the event log, the
/// aggregate-goodput dip around them, window re-acquisition, and §4.3
/// token reclamation read off the per-port `effective_flows` gauge.
/// Prints nothing for fault-free runs.
fn fault_summary(
    recs: &[Value],
    slots: &[telemetry::PortSlotSample],
    s: &dyn Fn(&Value, &str) -> String,
    n: &dyn Fn(&Value, &str) -> i64,
) {
    let mut fault_events = Vec::new();
    for r in recs {
        let cleared = match r.get("kind").and_then(Value::as_str) {
            Some("fault_injected") => false,
            Some("fault_cleared") => true,
            _ => continue,
        };
        fault_events.push(chaos::recovery::FaultEventRec {
            at_ns: n(r, "at_ns") as u64,
            kind: s(r, "fault"),
            cleared,
            node: n(r, "node") as u32,
            port: n(r, "port") as u16,
            value: n(r, "value") as u64,
        });
    }
    if fault_events.is_empty() {
        return;
    }
    let windows = chaos::recovery::pair_windows(&fault_events);
    println!("\nfault windows:");
    for w in &windows {
        let end = w
            .end_ns
            .map(|e| format!("{:.3} ms", e as f64 / 1e6))
            .unwrap_or_else(|| "open".into());
        println!(
            "  {:<12} node {} port {}  {:.3} ms -> {}  (value {})",
            w.kind,
            w.node,
            w.port,
            w.start_ns as f64 / 1e6,
            end,
            w.value
        );
    }
    // Route repair: one `rerouted` record per switch end of a downed
    // link, counting the destinations a surviving ECMP member absorbs.
    let mut any_reroute = false;
    for r in recs {
        if r.get("kind").and_then(Value::as_str) == Some("rerouted") {
            if !any_reroute {
                println!("\nreroutes (selection-time ECMP repair):");
                any_reroute = true;
            }
            println!(
                "  {:.3} ms  switch {} port {}: {} destinations absorbed by surviving members",
                n(r, "at_ns") as f64 / 1e6,
                n(r, "node"),
                n(r, "port"),
                n(r, "dests"),
            );
        }
    }
    let start = windows.iter().map(|w| w.start_ns).min().unwrap_or(0);
    let end = windows
        .iter()
        .filter_map(|w| w.end_ns)
        .max()
        .unwrap_or(start);
    let mut deliveries = Vec::new();
    let mut acquired = Vec::new();
    for r in recs {
        match r.get("kind").and_then(Value::as_str) {
            Some("pkt_deliver") => deliveries.push((n(r, "at_ns") as u64, n(r, "bytes") as u64)),
            Some("flow_window_acquired") => acquired.push(n(r, "at_ns") as u64),
            _ => {}
        }
    }
    println!("\nrecovery:");
    const BIN_NS: u64 = 500_000;
    match chaos::recovery::goodput_dip(&deliveries, start, end, BIN_NS) {
        Some(d) => {
            println!(
                "  goodput: baseline {:.0} Mbps, floor {:.0} Mbps (dip {:.0} %)",
                d.baseline_bps / 1e6,
                d.floor_bps / 1e6,
                d.depth * 100.0
            );
            match d.recovery_ns {
                Some(r) => println!(
                    "  back to 90 % of baseline {:.3} ms after the last fault cleared",
                    r as f64 / 1e6
                ),
                None => println!("  never back to 90 % of baseline before the run ended"),
            }
        }
        None => println!("  goodput: no pre-fault baseline (fault too early or no deliveries)"),
    }
    match chaos::recovery::time_to_first_after(&acquired, end) {
        Some(t) => println!(
            "  first window acquisition {:.3} µs after the fault cleared",
            t as f64 / 1e3
        ),
        None => println!("  no window acquisitions after the fault cleared"),
    }
    // §4.3: per-port effective-flow count shedding the silenced flow.
    let mut per_port: BTreeMap<(u32, u16), Vec<(u64, f64)>> = BTreeMap::new();
    for sl in slots {
        per_port
            .entry((sl.node, sl.port))
            .or_default()
            .push((sl.at_ns, sl.effective_flows));
    }
    for ((node, port), series) in per_port {
        // Only ports that had flows to lose (E > 1 pre-fault).
        let Some(&(_, e_before)) = series.iter().take_while(|&&(t, _)| t < start).last() else {
            continue;
        };
        if e_before < 1.5 {
            continue;
        }
        match chaos::recovery::settle_time_ns(&series, start, e_before - 0.5) {
            Some(t) => println!(
                "  switch {node} port {port}: E {e_before:.2} pre-fault, one flow's tokens reclaimed {:.3} µs after injection",
                t as f64 / 1e3
            ),
            None => println!(
                "  switch {node} port {port}: E {e_before:.2} pre-fault, tokens never reclaimed"
            ),
        }
    }
}
