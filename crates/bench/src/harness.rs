//! A plain timed-binary bench harness with a `criterion`-shaped API.
//!
//! The benches under `benches/` were written against Criterion; pulling
//! that crate (and its large dependency tree) from a registry is not
//! possible in the hermetic build, so this module provides the small
//! surface they use — `Criterion::bench_function`, benchmark groups,
//! element throughput, and the `criterion_group!`/`criterion_main!`
//! macros — implemented as a straightforward wall-clock timer. Each
//! bench target stays `harness = false`, so `cargo bench` runs these
//! binaries directly and prints one line per benchmark:
//!
//! ```text
//! bench event_queue/schedule_pop_10k ... mean 1.23 ms, min 1.19 ms, 8.1 Melem/s (10 iters)
//! ```
//!
//! Sample counts honour `TFC_BENCH_SAMPLES` (default 10).

use std::time::{Duration, Instant};

/// How work is scaled when reporting rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured body processes this many elements per iteration.
    Elements(u64),
}

/// Top-level bench context (a stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("TFC_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Self { sample_size }
    }
}

impl Criterion {
    /// Sets iterations per benchmark (builder style, like Criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Times one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-iteration element count for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets iterations per benchmark within the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{name}", self.name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the bench closure; `iter` times its body.
pub struct Bencher {
    iters: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` once untimed (warm-up), then `iters` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        std::hint::black_box(body());
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, iters: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters,
        samples: Vec::with_capacity(iters),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label} ... no samples (closure never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let rate = match tp {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!(", {}", fmt_rate(n as f64 / mean.as_secs_f64()))
        }
        _ => String::new(),
    };
    println!(
        "bench {label} ... mean {}, min {}{rate} ({} iters)",
        fmt_dur(mean),
        fmt_dur(min),
        b.samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.1} Melem/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} kelem/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} elem/s")
    }
}

/// Declares a bench group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::harness::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Let bench files import the macros through this module, matching the
// `use criterion::{criterion_group, criterion_main}` shape they had.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_samples() {
        let mut calls = 0;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("unit", |b| b.iter(|| calls += 1));
        // One warm-up plus three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_applies_sample_size_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100)).sample_size(2);
        let mut calls = 0;
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn formatting_is_humane() {
        assert_eq!(fmt_dur(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_rate(2_500_000.0), "2.5 Melem/s");
    }
}
