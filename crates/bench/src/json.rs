//! A minimal JSON value type, writer, and `json!` macro.
//!
//! The figure dumps used to go through `serde_json`; that was the only
//! registry dependency in the workspace's default build graph, so it is
//! replaced by this ~200-line hand-rolled equivalent. It supports
//! exactly what the dumps need — objects, arrays, numbers, strings,
//! bools, null — with deterministic (sorted-key) pretty output.
//!
//! # Examples
//!
//! ```
//! use tfc_bench::json;
//!
//! let v = json!({"flows": [1, 2], "goodput_bps": 9.4e8, "note": "ok"});
//! assert!(v.pretty().contains("\"flows\""));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Object storage. `BTreeMap` keeps dump output key-sorted and thus
/// byte-stable across runs.
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Floating number (non-finite values print as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Mutable array access, `None` for non-arrays.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (newline-terminated).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        // Counters in this workspace are far below 2^63; fall back to
        // the float form rather than wrapping if one ever is not.
        i64::try_from(v).map_or(Value::Float(v as f64), Value::Int)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Self {
        Value::Array(vec![a.into(), b.into()])
    }
}

impl<T: Into<Value> + Copy> From<&T> for Value {
    fn from(v: &T) -> Self {
        (*v).into()
    }
}

/// Builds a [`Value`] from JSON-shaped syntax, mirroring the subset of
/// `serde_json::json!` the figure dumps use: object literals (keys are
/// string literals), array literals, and arbitrary expressions whose
/// types implement `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ([]) => { $crate::json::Value::Array(::std::vec::Vec::new()) };
    ([ $($elem:expr),+ $(,)? ]) => {
        $crate::json::Value::Array(::std::vec![ $($crate::json!($elem)),+ ])
    };
    ({}) => { $crate::json::Value::Object($crate::json::Map::new()) };
    ({ $($body:tt)+ }) => {{
        let mut map = $crate::json::Map::new();
        $crate::json_entries!(map, $($body)+);
        $crate::json::Value::Object(map)
    }};
    ($other:expr) => { $crate::json::Value::from($other) };
}

/// Internal muncher for `json!` object bodies. Nested `{...}` and
/// `[...]` values must be matched as token trees before the general
/// expression arm: a JSON object literal is not a valid Rust block
/// expression, and a mixed-type array literal is not a valid Rust
/// array expression.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident, $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : { $($inner:tt)* }) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ]) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
    };
    ($map:ident, $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::json!($value));
    };
    ($map:ident,) => {};
    ($map:ident) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(json!(null).pretty(), "null");
        assert_eq!(json!(3).pretty(), "3");
        assert_eq!(json!(2.5).pretty(), "2.5");
        assert_eq!(json!(true).pretty(), "true");
        assert_eq!(json!("hi").pretty(), "\"hi\"");
        assert_eq!(json!(f64::NAN).pretty(), "null");
    }

    #[test]
    fn object_and_array_shapes() {
        let v = json!({
            "pair": [1, 2.5],
            "nested": {"inner": "x"},
            "none": Option::<u64>::None,
            "some": Some(7u64),
        });
        let s = v.pretty();
        assert!(s.contains("\"pair\": [\n    1,\n    2.5\n  ]"));
        assert!(s.contains("\"inner\": \"x\""));
        assert!(s.contains("\"none\": null"));
        assert!(s.contains("\"some\": 7"));
    }

    #[test]
    fn from_tuple_vec_and_refs() {
        let pts: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.0)];
        let v: Value = pts.iter().collect::<Vec<_>>().into();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Array(vec![Value::Int(1), Value::Float(0.5)]),
                Value::Array(vec![Value::Int(2), Value::Float(1.0)]),
            ])
        );
    }

    #[test]
    fn keys_are_sorted_and_escaped() {
        let mut m = Map::new();
        m.insert("b\"x".into(), json!(1));
        m.insert("a".into(), json!(2));
        let s = Value::Object(m).pretty();
        let a = s.find("\"a\"").unwrap();
        let b = s.find("\"b\\\"x\"").unwrap();
        assert!(a < b);
    }

    #[test]
    fn as_array_mut_pushes() {
        let mut v = json!([]);
        v.as_array_mut().unwrap().push(json!(1));
        assert_eq!(v, Value::Array(vec![Value::Int(1)]));
        assert_eq!(json!(3).as_array_mut(), None);
    }

    #[test]
    fn big_u64_degrades_to_float() {
        let v: Value = u64::MAX.into();
        assert!(matches!(v, Value::Float(_)));
    }
}
