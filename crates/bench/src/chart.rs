//! Terminal chart rendering for the figure harness.
//!
//! Small, dependency-free ASCII plots so `figures` output shows the
//! *shape* of each curve directly in the terminal, next to the numeric
//! rows and the JSON dumps.

/// Renders one or more `(label, points)` series as an ASCII line chart.
///
/// Each series gets its own glyph; overlapping cells show the glyph of
/// the later series. Axes are annotated with min/max of both dimensions.
///
/// # Examples
///
/// ```
/// let s = tfc_bench::chart::line_chart(
///     &[("a", &[(0.0, 0.0), (1.0, 1.0)])],
///     20,
///     5,
/// );
/// assert!(s.contains('*'));
/// ```
pub fn line_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let width = width.max(8);
    let height = height.max(3);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < f64::EPSILON {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < f64::EPSILON {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts.iter() {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y1:>10.3e}")
        } else if i == height - 1 {
            format!("{y0:>10.3e}")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(11));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("{:>12.3e}{:>width$.3e}\n", x0, x1, width = width));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    out.push_str(&format!("            [{}]\n", legend.join("  ")));
    out
}

/// Renders labelled values as a horizontal bar chart (one row each).
///
/// # Examples
///
/// ```
/// let s = tfc_bench::chart::bar_chart(&[("tfc", 9.0), ("tcp", 3.0)], 30);
/// assert!(s.lines().count() == 2);
/// ```
pub fn bar_chart(rows: &[(&str, f64)], width: usize) -> String {
    let width = width.max(4);
    let max = rows
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for &(name, v) in rows {
        let filled = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{name:<label_w$} |{}{} {v:.3e}\n",
            "█".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_renders_extremes() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i * i) as f64)).collect();
        let s = line_chart(&[("sq", &pts)], 40, 10);
        assert!(s.contains("2.401e3"), "max label missing:\n{s}");
        assert!(s.contains('*'));
        assert!(s.contains("sq"));
        assert_eq!(s.lines().count(), 13);
    }

    #[test]
    fn line_chart_multi_series_legend() {
        let a = [(0.0, 1.0), (1.0, 2.0)];
        let b = [(0.0, 2.0), (1.0, 1.0)];
        let s = line_chart(&[("up", &a), ("down", &b)], 20, 5);
        assert!(s.contains("* up"));
        assert!(s.contains("o down"));
    }

    #[test]
    fn line_chart_handles_empty_and_flat() {
        assert_eq!(line_chart(&[("e", &[])], 10, 4), "(no data)\n");
        let flat = [(0.0, 5.0), (1.0, 5.0)];
        let s = line_chart(&[("f", &flat)], 10, 4);
        assert!(s.contains('*'));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("a", 10.0), ("b", 5.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        let bars_a = lines[0].matches('█').count();
        let bars_b = lines[1].matches('█').count();
        assert_eq!(bars_a, 10);
        assert_eq!(bars_b, 5);
    }

    #[test]
    fn bar_chart_zero_values() {
        let s = bar_chart(&[("z", 0.0)], 10);
        assert!(!s.contains('█'));
    }
}
