//! Open-loop streaming workload: millions of short RPC flows in
//! O(active flows) memory.
//!
//! Unlike the closed-loop drivers in this crate (which start a fixed
//! flow population and wait for it), [`StreamApp`] models an *open*
//! system: each class draws Poisson arrivals at a fixed offered rate,
//! whether or not earlier flows have finished — the load does not slow
//! down because the fabric is congested, which is exactly the regime
//! the switch-assisted schemes are evaluated under.
//!
//! The future arrival list is never materialised. Each class keeps one
//! armed application timer whose token is the class index; when it
//! fires the app starts one flow (random source/destination pair, size
//! drawn from the class's empirical CDF), tags it with the class, and
//! re-arms the timer with the next exponential gap. The timing wheel
//! holds exactly one pending arrival per class at any instant, so a
//! billion-flow schedule costs the same resident memory as a ten-flow
//! one.
//!
//! Pair with [`simnet::sim::SimConfig::retire`]: completed flows retire
//! into per-class sketches and free their slab slots, which is what
//! keeps the *simulator* side O(active flows) too. The app itself holds
//! only per-class counters.

use metrics::PiecewiseCdf;
use rng::Rng;
use simnet::app::{Application, FlowEvent};
use simnet::endpoint::FlowSpec;
use simnet::packet::NodeId;
use simnet::sim::SimApi;
use simnet::units::Dur;

use crate::dist::{exp_interarrival, sample_size};

/// One traffic class of the open-loop mix.
#[derive(Debug, Clone)]
pub struct StreamClass {
    /// Class name (should match the retire config's class list).
    pub name: String,
    /// Mean Poisson interarrival gap of this class.
    pub mean_interarrival: Dur,
    /// Flow-size distribution.
    pub sizes: PiecewiseCdf,
    /// Transport weight tag for the class's flows.
    pub weight: u8,
}

/// Configuration of the open-loop generator.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Hosts to draw source/destination pairs from (uniformly, always
    /// distinct). Must hold at least two hosts.
    pub hosts: Vec<NodeId>,
    /// The traffic classes; class tag = index in this list.
    pub classes: Vec<StreamClass>,
    /// Stop the simulation once this many flows completed (`None` =
    /// run to the configured end time).
    pub target_completed: Option<u64>,
    /// Stop *launching* new flows at this simulated time (`None` =
    /// launch forever). In-flight flows still drain afterwards.
    pub horizon: Option<Dur>,
    /// Safety valve: shed (count, but do not start) arrivals while this
    /// many flows are in flight (0 = unlimited). An over-driven fabric
    /// otherwise accumulates unbounded active flows; a shed arrival
    /// keeps the open-loop clock honest — the next arrival is drawn
    /// from the same Poisson process.
    pub max_active: u64,
}

/// Per-class launch/completion counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Flows started.
    pub started: u64,
    /// Flows whose receiver got the full byte stream.
    pub completed: u64,
    /// Arrivals shed by the `max_active` valve.
    pub shed: u64,
}

/// The open-loop streaming workload driver.
#[derive(Debug)]
pub struct StreamApp {
    cfg: StreamConfig,
    counters: Vec<ClassCounters>,
    started_total: u64,
    completed_total: u64,
    launching: bool,
}

impl StreamApp {
    /// Builds the driver.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two hosts, no classes, or more than 256
    /// classes (the class tag is a `u8`).
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(cfg.hosts.len() >= 2, "need at least two hosts");
        assert!(!cfg.classes.is_empty(), "need at least one class");
        assert!(cfg.classes.len() <= 256, "class tag is a u8");
        let counters = vec![ClassCounters::default(); cfg.classes.len()];
        Self {
            cfg,
            counters,
            started_total: 0,
            completed_total: 0,
            launching: true,
        }
    }

    /// Per-class counters, indexed by class tag.
    pub fn class_counters(&self) -> &[ClassCounters] {
        &self.counters
    }

    /// Total flows started.
    pub fn started(&self) -> u64 {
        self.started_total
    }

    /// Total flows completed (receiver held the full stream).
    pub fn completed(&self) -> u64 {
        self.completed_total
    }

    /// Total arrivals shed by the `max_active` valve.
    pub fn shed(&self) -> u64 {
        self.counters.iter().map(|c| c.shed).sum()
    }

    /// Flows currently in flight (started minus completed).
    pub fn active(&self) -> u64 {
        self.started_total - self.completed_total
    }

    fn arm_next(&self, class: usize, api: &mut SimApi<'_>) {
        let gap = exp_interarrival(api.rng(), self.cfg.classes[class].mean_interarrival);
        api.set_timer(gap, class as u64);
    }

    fn launch(&mut self, class: usize, api: &mut SimApi<'_>) {
        if self.cfg.max_active > 0 && self.active() >= self.cfg.max_active {
            self.counters[class].shed += 1;
            return;
        }
        let n = self.cfg.hosts.len();
        let src = api.rng().gen_range(0..n);
        let mut dst = api.rng().gen_range(0..n - 1);
        if dst >= src {
            dst += 1;
        }
        let c = &self.cfg.classes[class];
        let bytes = sample_size(api.rng(), &c.sizes);
        let spec = FlowSpec::sized(self.cfg.hosts[src], self.cfg.hosts[dst], bytes)
            .with_weight(c.weight);
        let flow = api.start_flow(spec);
        api.set_flow_class(flow, class as u8);
        self.counters[class].started += 1;
        self.started_total += 1;
    }
}

impl Application for StreamApp {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for class in 0..self.cfg.classes.len() {
            self.arm_next(class, api);
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut SimApi<'_>) {
        let class = token as usize;
        if class >= self.cfg.classes.len() || !self.launching {
            return;
        }
        if let Some(h) = self.cfg.horizon {
            if api.now().nanos() >= h.as_nanos() {
                self.launching = false;
                return;
            }
        }
        self.launch(class, api);
        self.arm_next(class, api);
    }

    fn on_flow_event(&mut self, ev: FlowEvent, api: &mut SimApi<'_>) {
        if let FlowEvent::Completed(flow) = ev {
            let class = api.flow(flow).class as usize;
            if let Some(c) = self.counters.get_mut(class) {
                c.completed += 1;
            }
            self.completed_total += 1;
            if let Some(target) = self.cfg.target_completed {
                if self.completed_total >= target {
                    api.stop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{background_flow_sizes, cache_follower_flow_sizes};
    use simnet::sim::{SimConfig, Simulator};
    use simnet::topology::star;
    use simnet::units::Bandwidth;
    use transport::TcpStack;

    fn two_class_cfg(hosts: Vec<NodeId>) -> StreamConfig {
        StreamConfig {
            hosts,
            classes: vec![
                StreamClass {
                    name: "web-search".into(),
                    mean_interarrival: Dur::micros(60),
                    sizes: cache_follower_flow_sizes(),
                    weight: 1,
                },
                StreamClass {
                    name: "background".into(),
                    mean_interarrival: Dur::micros(200),
                    sizes: background_flow_sizes(),
                    weight: 1,
                },
            ],
            target_completed: Some(300),
            horizon: None,
            max_active: 0,
        }
    }

    #[test]
    fn open_loop_reaches_target_and_counts_classes() {
        let (t, hosts, _hub) = star(8, Bandwidth::gbps(10), Dur::micros(2));
        let net = t.build_drop_tail();
        let app = StreamApp::new(two_class_cfg(hosts));
        let mut sim = Simulator::new(
            net,
            Box::new(TcpStack::default()),
            app,
            SimConfig {
                seed: 42,
                ..Default::default()
            },
        );
        sim.run();
        let app = sim.app();
        assert!(app.completed() >= 300, "target reached: {}", app.completed());
        let per = app.class_counters();
        assert!(per[0].completed > 0 && per[1].completed > 0, "both classes ran");
        assert_eq!(
            per.iter().map(|c| c.started).sum::<u64>(),
            app.started(),
            "per-class counters reconcile"
        );
    }

    #[test]
    fn max_active_valve_sheds_instead_of_accumulating() {
        let (t, hosts, _hub) = star(4, Bandwidth::mbps(10), Dur::micros(50));
        let net = t.build_drop_tail();
        let mut cfg = two_class_cfg(hosts);
        cfg.target_completed = None;
        cfg.horizon = Some(Dur::millis(30));
        cfg.max_active = 8;
        let app = StreamApp::new(cfg);
        let mut sim = Simulator::new(
            net,
            Box::new(TcpStack::default()),
            app,
            SimConfig {
                seed: 7,
                end: Some(simnet::units::Time(Dur::millis(60).as_nanos())),
                ..Default::default()
            },
        );
        sim.run();
        let app = sim.app();
        assert!(app.shed() > 0, "a slow fabric must shed arrivals");
        assert!(app.active() <= 8 + 2, "active flows stay near the valve");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (t, hosts, _hub) = star(6, Bandwidth::gbps(10), Dur::micros(2));
            let net = t.build_drop_tail();
            let app = StreamApp::new(two_class_cfg(hosts));
            let mut sim = Simulator::new(
                net,
                Box::new(TcpStack::default()),
                app,
                SimConfig {
                    seed: 9,
                    ..Default::default()
                },
            );
            sim.run();
            (
                sim.core().now().nanos(),
                sim.app().started(),
                sim.app().completed(),
            )
        };
        assert_eq!(run(), run());
    }
}
