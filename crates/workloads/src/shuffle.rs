//! All-to-all shuffle: the MapReduce-style transfer the paper's
//! introduction motivates (batch frameworks as the counterpart to
//! Storm's streaming). Every mapper sends one sized partition to every
//! reducer; the job finishes when the last partition lands.

use std::collections::BTreeSet;

use simnet::app::{Application, FlowEvent};
use simnet::endpoint::FlowSpec;
use simnet::packet::{FlowId, NodeId};
use simnet::sim::SimApi;
use simnet::units::Time;

/// Shuffle parameters.
#[derive(Debug, Clone)]
pub struct ShuffleConfig {
    /// Hosts acting as mappers (sources).
    pub mappers: Vec<NodeId>,
    /// Hosts acting as reducers (destinations).
    pub reducers: Vec<NodeId>,
    /// Bytes per (mapper, reducer) partition.
    pub partition_bytes: u64,
    /// Cap on simultaneously open flows per mapper (real frameworks
    /// window their fetches; 0 = unlimited).
    pub per_mapper_parallelism: usize,
}

/// The shuffle application.
pub struct ShuffleApp {
    cfg: ShuffleConfig,
    /// Remaining (mapper_idx, reducer_idx) pairs not yet started.
    pending: Vec<(usize, usize)>,
    /// Open flows per mapper index.
    open_per_mapper: Vec<usize>,
    in_flight: BTreeSet<FlowId>,
    flow_mapper: std::collections::BTreeMap<FlowId, usize>,
    started: u64,
    completed: u64,
    finished_at: Option<Time>,
}

impl ShuffleApp {
    /// Creates the shuffle.
    ///
    /// # Panics
    ///
    /// Panics if mappers or reducers are empty, or any mapper equals any
    /// reducer (a host may not send to itself; disjoint sets keep the
    /// model simple).
    pub fn new(cfg: ShuffleConfig) -> Self {
        assert!(!cfg.mappers.is_empty() && !cfg.reducers.is_empty());
        for m in &cfg.mappers {
            assert!(!cfg.reducers.contains(m), "mapper {m:?} is also a reducer");
        }
        let mut pending = Vec::new();
        // Start order staggers reducers per mapper to avoid all mappers
        // hammering reducer 0 first.
        for (mi, _) in cfg.mappers.iter().enumerate() {
            for k in 0..cfg.reducers.len() {
                pending.push((mi, (mi + k) % cfg.reducers.len()));
            }
        }
        pending.reverse(); // pop() yields the natural order
        let n_mappers = cfg.mappers.len();
        Self {
            cfg,
            pending,
            open_per_mapper: vec![0; n_mappers],
            in_flight: BTreeSet::new(),
            flow_mapper: Default::default(),
            started: 0,
            completed: 0,
            finished_at: None,
        }
    }

    /// Total partitions in the job.
    pub fn total_partitions(&self) -> u64 {
        (self.cfg.mappers.len() * self.cfg.reducers.len()) as u64
    }

    /// Completed partitions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Job completion time, if the shuffle finished.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    /// Aggregate goodput of the whole shuffle, bits per second.
    pub fn goodput_bps(&self) -> f64 {
        match self.finished_at {
            Some(t) if t > Time::ZERO => {
                (self.completed * self.cfg.partition_bytes) as f64 * 8.0 / t.as_secs_f64()
            }
            _ => 0.0,
        }
    }

    fn launch_available(&mut self, api: &mut SimApi<'_>) {
        let limit = if self.cfg.per_mapper_parallelism == 0 {
            usize::MAX
        } else {
            self.cfg.per_mapper_parallelism
        };
        let mut deferred = Vec::new();
        while let Some((mi, ri)) = self.pending.pop() {
            if self.open_per_mapper[mi] >= limit {
                deferred.push((mi, ri));
                continue;
            }
            let flow = api.start_flow(FlowSpec::sized(
                self.cfg.mappers[mi],
                self.cfg.reducers[ri],
                self.cfg.partition_bytes,
            ));
            self.open_per_mapper[mi] += 1;
            self.in_flight.insert(flow);
            self.flow_mapper.insert(flow, mi);
            self.started += 1;
        }
        self.pending = deferred;
        self.pending.reverse();
    }
}

impl Application for ShuffleApp {
    fn start(&mut self, api: &mut SimApi<'_>) {
        self.launch_available(api);
    }

    fn on_flow_event(&mut self, ev: FlowEvent, api: &mut SimApi<'_>) {
        if let FlowEvent::Completed(flow) = ev {
            if self.in_flight.remove(&flow) {
                self.completed += 1;
                if let Some(mi) = self.flow_mapper.remove(&flow) {
                    self.open_per_mapper[mi] -= 1;
                }
                if self.completed == self.total_partitions() {
                    self.finished_at = Some(api.now());
                    api.stop();
                } else {
                    self.launch_available(api);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::policy::DropTail;
    use simnet::sim::{SimConfig, Simulator};
    use simnet::topology::star;
    use simnet::units::{Bandwidth, Dur};

    fn run(parallelism: usize) -> Simulator<ShuffleApp> {
        let (t, hosts, _) = star(6, Bandwidth::gbps(1), Dur::micros(1));
        let net = t.build(|_, _| Box::new(DropTail));
        let app = ShuffleApp::new(ShuffleConfig {
            mappers: hosts[..3].to_vec(),
            reducers: hosts[3..].to_vec(),
            partition_bytes: 100_000,
            per_mapper_parallelism: parallelism,
        });
        let mut sim = Simulator::new(
            net,
            Box::new(transport::TcpStack::default()),
            app,
            SimConfig::default(),
        );
        sim.run();
        sim
    }

    #[test]
    fn all_partitions_complete() {
        let sim = run(0);
        let app = sim.app();
        assert_eq!(app.completed(), 9);
        assert!(app.finished_at().is_some());
        assert!(app.goodput_bps() > 0.0);
    }

    #[test]
    fn parallelism_cap_respected_and_completes() {
        let sim = run(1);
        assert_eq!(sim.app().completed(), 9);
    }

    #[test]
    #[should_panic]
    fn overlapping_roles_rejected() {
        let h = NodeId(0);
        ShuffleApp::new(ShuffleConfig {
            mappers: vec![h],
            reducers: vec![h],
            partition_bytes: 1,
            per_mapper_parallelism: 0,
        });
    }
}
