//! The barrier-synchronised incast workload (§6.1.2 "Bursty Fan-in
//! traffic" and §6.2.1).
//!
//! A receiver requests fixed-size data blocks from `n` senders over
//! persistent connections. All senders respond synchronously; the
//! receiver cannot request the next round until every block of the
//! current round arrived — the classic TCP-incast pattern
//! [Vasudevan et al., SIGCOMM '09].

use std::collections::BTreeMap;

use simnet::app::{Application, FlowEvent};
use simnet::endpoint::FlowSpec;
use simnet::packet::{FlowId, NodeId};
use simnet::sim::SimApi;
use simnet::units::{Dur, Time};

/// Incast workload parameters.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// The sending hosts.
    pub senders: Vec<NodeId>,
    /// The requesting/receiving host.
    pub receiver: NodeId,
    /// Block size per sender per round, in bytes.
    pub block_bytes: u64,
    /// Number of request rounds.
    pub rounds: u32,
    /// One-way delay for the request to reach the senders (models the
    /// request packets without simulating them; the paper notes this
    /// "wastes a round").
    pub request_delay: Dur,
    /// When set, every round opens fresh connections (the classic incast
    /// setup of \[36\]); otherwise blocks are pushed on persistent
    /// connections.
    pub fresh_per_round: bool,
}

/// Per-round results.
#[derive(Debug, Clone, Copy)]
pub struct RoundStats {
    /// When the requests went out.
    pub requested_at: Time,
    /// When the last block arrived.
    pub completed_at: Time,
    /// Largest number of RTO timeouts any one flow suffered this round.
    pub max_timeouts: u64,
}

/// The incast application.
///
/// After `run`, read [`IncastApp::rounds_done`], [`IncastApp::stats`],
/// and [`IncastApp::goodput_bps`] for the figure series.
pub struct IncastApp {
    cfg: IncastConfig,
    flows: Vec<FlowId>,
    established: usize,
    /// Bytes delivered per flow in the current round.
    delivered: BTreeMap<FlowId, u64>,
    /// Timeout counter snapshot per flow at round start.
    timeouts_at_start: BTreeMap<FlowId, u64>,
    round: u32,
    stats: Vec<RoundStats>,
    requested_at: Time,
    first_request_at: Option<Time>,
    finished_at: Option<Time>,
}

const TOKEN_REQUEST: u64 = 1;

impl IncastApp {
    /// Creates the application.
    ///
    /// # Panics
    ///
    /// Panics if no senders are given or the receiver is among them.
    pub fn new(cfg: IncastConfig) -> Self {
        assert!(!cfg.senders.is_empty(), "incast needs senders");
        assert!(
            !cfg.senders.contains(&cfg.receiver),
            "receiver cannot be a sender"
        );
        Self {
            cfg,
            flows: Vec::new(),
            established: 0,
            delivered: BTreeMap::new(),
            timeouts_at_start: BTreeMap::new(),
            round: 0,
            stats: Vec::new(),
            requested_at: Time::ZERO,
            first_request_at: None,
            finished_at: None,
        }
    }

    /// Completed rounds.
    pub fn rounds_done(&self) -> u32 {
        self.round
    }

    /// Per-round statistics.
    pub fn stats(&self) -> &[RoundStats] {
        &self.stats
    }

    /// When the last round completed (`None` if unfinished).
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    /// Application-level goodput across all rounds, in bits per second:
    /// total block bytes over the span from the first request to the last
    /// block.
    pub fn goodput_bps(&self) -> f64 {
        let (Some(start), Some(end)) = (self.first_request_at, self.finished_at) else {
            return 0.0;
        };
        let total: u64 =
            self.cfg.block_bytes * self.cfg.senders.len() as u64 * u64::from(self.round);
        let span = end.since(start).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        total as f64 * 8.0 / span
    }

    /// Mean over rounds of the per-round max timeouts (Fig. 15b's
    /// "maximum timeouts per block").
    pub fn mean_max_timeouts_per_block(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats
            .iter()
            .map(|s| s.max_timeouts as f64)
            .sum::<f64>()
            / self.stats.len() as f64
    }

    fn request_round(&mut self, api: &mut SimApi<'_>) {
        self.requested_at = api.now();
        if self.first_request_at.is_none() {
            self.first_request_at = Some(self.requested_at);
        }
        for count in self.delivered.values_mut() {
            *count = 0;
        }
        for &flow in &self.flows {
            self.timeouts_at_start.insert(flow, api.flow(flow).timeouts);
        }
        // The request takes one one-way delay to reach the senders.
        api.set_timer(self.cfg.request_delay, TOKEN_REQUEST);
    }

    /// Ends the current round, records stats, and starts the next one.
    fn finish_round(&mut self, api: &mut SimApi<'_>) {
        let max_timeouts = self
            .flows
            .iter()
            .map(|&f| api.flow(f).timeouts - self.timeouts_at_start.get(&f).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        self.stats.push(RoundStats {
            requested_at: self.requested_at,
            completed_at: api.now(),
            max_timeouts,
        });
        self.round += 1;
        if self.round < self.cfg.rounds {
            if self.cfg.fresh_per_round {
                self.flows.clear();
                self.delivered.clear();
                self.timeouts_at_start.clear();
            }
            self.request_round(api);
        } else {
            self.finished_at = Some(api.now());
            api.stop();
        }
    }

    fn round_complete(&self) -> bool {
        self.flows.len() == self.cfg.senders.len()
            && self
                .flows
                .iter()
                .all(|f| self.delivered.get(f).copied().unwrap_or(0) >= self.cfg.block_bytes)
    }
}

impl Application for IncastApp {
    fn start(&mut self, api: &mut SimApi<'_>) {
        if self.cfg.fresh_per_round {
            // Fresh connections each round: no pre-established pool.
            self.request_round(api);
            return;
        }
        for &s in &self.cfg.senders.clone() {
            let flow = api.start_flow(FlowSpec {
                src: s,
                dst: self.cfg.receiver,
                bytes: None,
                weight: 1,
            });
            api.watch_delivery(flow);
            self.flows.push(flow);
            self.delivered.insert(flow, 0);
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut SimApi<'_>) {
        debug_assert_eq!(token, TOKEN_REQUEST);
        // The request arrived: every sender responds with a block.
        if self.cfg.fresh_per_round {
            for &s in &self.cfg.senders.clone() {
                let flow = api.start_flow(FlowSpec {
                    src: s,
                    dst: self.cfg.receiver,
                    bytes: Some(self.cfg.block_bytes),
                    weight: 1,
                });
                api.watch_delivery(flow);
                self.flows.push(flow);
                self.delivered.insert(flow, 0);
                self.timeouts_at_start.insert(flow, 0);
            }
            return;
        }
        for &flow in &self.flows.clone() {
            api.push_data(flow, self.cfg.block_bytes);
        }
    }

    fn on_flow_event(&mut self, ev: FlowEvent, api: &mut SimApi<'_>) {
        match ev {
            FlowEvent::Established(_) => {
                if self.cfg.fresh_per_round {
                    return;
                }
                self.established += 1;
                if self.established == self.cfg.senders.len() {
                    self.request_round(api);
                }
            }
            FlowEvent::Delivered { flow, bytes } => {
                *self.delivered.entry(flow).or_insert(0) += bytes;
                if self.round_complete() {
                    self.finish_round(api);
                }
            }
            FlowEvent::Completed(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::policy::DropTail;
    use simnet::sim::{SimConfig, Simulator};
    use simnet::topology::star;
    use simnet::units::Bandwidth;
    use transport::TcpStack;

    fn run_incast(n: usize, rounds: u32) -> Simulator<IncastApp> {
        let (t, hosts, _) = star(n + 1, Bandwidth::gbps(1), Dur::micros(1));
        let net = t.build(|_, _| Box::new(DropTail));
        let app = IncastApp::new(IncastConfig {
            senders: hosts[..n].to_vec(),
            receiver: hosts[n],
            block_bytes: 64 * 1024,
            rounds,
            request_delay: Dur::micros(15),
            fresh_per_round: false,
        });
        let mut sim = Simulator::new(
            net,
            Box::new(TcpStack::default()),
            app,
            SimConfig::default(),
        );
        sim.run();
        sim
    }

    #[test]
    fn completes_all_rounds() {
        let sim = run_incast(4, 3);
        let app = sim.app();
        assert_eq!(app.rounds_done(), 3);
        assert_eq!(app.stats().len(), 3);
        assert!(app.finished_at().is_some());
    }

    #[test]
    fn goodput_positive_and_bounded() {
        let sim = run_incast(4, 3);
        let g = sim.app().goodput_bps();
        assert!(g > 0.0);
        assert!(g < 1e9, "goodput {g} cannot exceed the link rate");
    }

    #[test]
    fn rounds_are_barrier_synchronised() {
        let sim = run_incast(3, 4);
        let stats = sim.app().stats();
        for w in stats.windows(2) {
            assert!(w[1].requested_at >= w[0].completed_at);
        }
    }

    #[test]
    #[should_panic]
    fn receiver_as_sender_rejected() {
        let h = NodeId(0);
        IncastApp::new(IncastConfig {
            senders: vec![h],
            receiver: h,
            block_bytes: 1,
            rounds: 1,
            request_delay: Dur::ZERO,
            fresh_per_round: false,
        });
    }
}
