//! The realistic benchmark workload of §6.1.2 / §6.2.2: a mix of query
//! incasts, short messages, and heavy-tailed background flows, with
//! Poisson arrivals, modelled on the measured web-search traffic of
//! DCTCP \[7\] (see [`crate::dist`] for the synthetic distributions).

use std::collections::BTreeSet;

use metrics::{FctCollector, PiecewiseCdf};
use rng::Rng;
use simnet::app::{Application, FlowEvent};
use simnet::endpoint::FlowSpec;
use simnet::packet::{FlowId, NodeId};
use simnet::sim::{SimApi, SimCore};
use simnet::units::{Dur, Time};

use crate::dist::{exp_interarrival, sample_size};

/// Flow class, for FCT reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// A 2 KB query response (part of an incast fan-in).
    Query,
    /// A short coordination message (50 KB – 1 MB in \[7\]).
    Short,
    /// A background flow with heavy-tailed size.
    Background,
}

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Participating hosts.
    pub hosts: Vec<NodeId>,
    /// Stop generating new flows after this time.
    pub horizon: Dur,
    /// Mean interarrival of query events (each triggers a full fan-in).
    pub query_interarrival: Dur,
    /// Bytes per query response (paper: 2 KB).
    pub query_bytes: u64,
    /// Responders per query (`None` = every other host, as in §6.2.2).
    pub query_fanout: Option<usize>,
    /// Mean interarrival of short messages.
    pub short_interarrival: Dur,
    /// Short-message size range (uniform), bytes.
    pub short_range: (u64, u64),
    /// Mean interarrival of background flows.
    pub bg_interarrival: Dur,
    /// Background flow size distribution.
    pub bg_sizes: PiecewiseCdf,
}

impl BenchmarkConfig {
    /// A testbed-scale default over the given hosts: moderate load on a
    /// 1 Gbps fabric.
    pub fn testbed(hosts: Vec<NodeId>) -> Self {
        Self {
            hosts,
            horizon: Dur::millis(500),
            query_interarrival: Dur::millis(10),
            query_bytes: 2_000,
            query_fanout: None,
            short_interarrival: Dur::millis(20),
            short_range: (50_000, 1_000_000),
            bg_interarrival: Dur::millis(8),
            bg_sizes: crate::dist::background_flow_sizes(),
        }
    }
}

const TOKEN_QUERY: u64 = 0;
const TOKEN_SHORT: u64 = 1;
const TOKEN_BG: u64 = 2;

/// The benchmark traffic generator.
pub struct BenchmarkApp {
    cfg: BenchmarkConfig,
    query_flows: BTreeSet<FlowId>,
    short_flows: BTreeSet<FlowId>,
    bg_flows: BTreeSet<FlowId>,
    queries_issued: u64,
    flows_started: u64,
}

impl BenchmarkApp {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two hosts.
    pub fn new(cfg: BenchmarkConfig) -> Self {
        assert!(cfg.hosts.len() >= 2, "benchmark needs at least two hosts");
        Self {
            cfg,
            query_flows: BTreeSet::new(),
            short_flows: BTreeSet::new(),
            bg_flows: BTreeSet::new(),
            queries_issued: 0,
            flows_started: 0,
        }
    }

    /// Number of query events issued.
    pub fn queries_issued(&self) -> u64 {
        self.queries_issued
    }

    /// Number of flows started in total.
    pub fn flows_started(&self) -> u64 {
        self.flows_started
    }

    /// The class of a flow started by this generator.
    pub fn class_of(&self, flow: FlowId) -> Option<FlowClass> {
        if self.query_flows.contains(&flow) {
            Some(FlowClass::Query)
        } else if self.short_flows.contains(&flow) {
            Some(FlowClass::Short)
        } else if self.bg_flows.contains(&flow) {
            Some(FlowClass::Background)
        } else {
            None
        }
    }

    /// Splits the simulator's completed-flow records by class.
    pub fn fct_by_class(&self, core: &SimCore) -> (FctCollector, FctCollector, FctCollector) {
        let mut query = FctCollector::new();
        let mut short = FctCollector::new();
        let mut bg = FctCollector::new();
        for (flow, state) in core.flows() {
            let Some(done) = state.receiver_done_at else {
                continue;
            };
            let rec = metrics::FlowRecord {
                bytes: state.spec.bytes.unwrap_or(state.delivered),
                start_ns: state.started_at.nanos(),
                end_ns: done.nanos(),
            };
            match self.class_of(flow) {
                Some(FlowClass::Query) => query.record(rec),
                Some(FlowClass::Short) => short.record(rec),
                Some(FlowClass::Background) => bg.record(rec),
                None => {}
            }
        }
        (query, short, bg)
    }

    fn within_horizon(&self, now: Time) -> bool {
        now.nanos() < self.cfg.horizon.as_nanos()
    }

    fn issue_query(&mut self, api: &mut SimApi<'_>) {
        let n = self.cfg.hosts.len();
        let target_idx = api.rng().gen_range(0..n);
        let target = self.cfg.hosts[target_idx];
        let fanout = self.cfg.query_fanout.unwrap_or(n - 1).min(n - 1);
        // Deterministic responder choice: the `fanout` hosts following
        // the target in ring order.
        let bytes = self.cfg.query_bytes;
        for k in 1..=fanout {
            let src = self.cfg.hosts[(target_idx + k) % n];
            let flow = api.start_flow(FlowSpec {
                src,
                dst: target,
                bytes: Some(bytes),
                weight: 1,
            });
            self.query_flows.insert(flow);
            self.flows_started += 1;
        }
        self.queries_issued += 1;
    }

    fn issue_pair(&mut self, api: &mut SimApi<'_>) -> (NodeId, NodeId) {
        let n = self.cfg.hosts.len();
        let a = api.rng().gen_range(0..n);
        let mut b = api.rng().gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        (self.cfg.hosts[a], self.cfg.hosts[b])
    }

    fn issue_short(&mut self, api: &mut SimApi<'_>) {
        let (src, dst) = self.issue_pair(api);
        let (lo, hi) = self.cfg.short_range;
        let bytes = api.rng().gen_range(lo..=hi);
        let flow = api.start_flow(FlowSpec {
            src,
            dst,
            bytes: Some(bytes),
            weight: 1,
        });
        self.short_flows.insert(flow);
        self.flows_started += 1;
    }

    fn issue_bg(&mut self, api: &mut SimApi<'_>) {
        let (src, dst) = self.issue_pair(api);
        let bytes = {
            let sizes = self.cfg.bg_sizes.clone();
            sample_size(api.rng(), &sizes)
        };
        let flow = api.start_flow(FlowSpec {
            src,
            dst,
            bytes: Some(bytes),
            weight: 1,
        });
        self.bg_flows.insert(flow);
        self.flows_started += 1;
    }

    fn schedule_next(&self, token: u64, api: &mut SimApi<'_>) {
        let mean = match token {
            TOKEN_QUERY => self.cfg.query_interarrival,
            TOKEN_SHORT => self.cfg.short_interarrival,
            _ => self.cfg.bg_interarrival,
        };
        let wait = exp_interarrival(api.rng(), mean);
        api.set_timer(wait, token);
    }
}

impl Application for BenchmarkApp {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for token in [TOKEN_QUERY, TOKEN_SHORT, TOKEN_BG] {
            self.schedule_next(token, api);
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut SimApi<'_>) {
        if !self.within_horizon(api.now()) {
            return; // Generation horizon passed; let flows drain.
        }
        match token {
            TOKEN_QUERY => self.issue_query(api),
            TOKEN_SHORT => self.issue_short(api),
            TOKEN_BG => self.issue_bg(api),
            _ => unreachable!("unknown benchmark timer"),
        }
        self.schedule_next(token, api);
    }

    fn on_flow_event(&mut self, _ev: FlowEvent, _api: &mut SimApi<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::policy::DropTail;
    use simnet::sim::{SimConfig, Simulator};
    use simnet::topology::star;
    use simnet::units::Bandwidth;
    use transport::TcpStack;

    fn run() -> Simulator<BenchmarkApp> {
        let (t, hosts, _) = star(6, Bandwidth::gbps(1), Dur::micros(1));
        let net = t.build(|_, _| Box::new(DropTail));
        let mut cfg = BenchmarkConfig::testbed(hosts);
        cfg.horizon = Dur::millis(100);
        let app = BenchmarkApp::new(cfg);
        let mut sim = Simulator::new(
            net,
            Box::new(TcpStack::default()),
            app,
            SimConfig {
                end: Some(Time(Dur::millis(400).as_nanos())),
                ..Default::default()
            },
        );
        sim.run();
        sim
    }

    #[test]
    fn generates_all_classes() {
        let sim = run();
        let app = sim.app();
        assert!(app.queries_issued() > 0);
        assert!(!app.short_flows.is_empty());
        assert!(!app.bg_flows.is_empty());
        // Each query fans in from all other hosts.
        assert_eq!(
            app.query_flows.len() as u64,
            app.queries_issued() * 5,
            "fanout of 5 responders per query on 6 hosts"
        );
    }

    #[test]
    fn fct_split_covers_classes() {
        let sim = run();
        let (q, s, b) = sim.app().fct_by_class(sim.core());
        assert!(!q.is_empty());
        assert!(!s.is_empty() || !b.is_empty());
        // Query FCTs are short transfers; their mean must be far below a
        // second.
        let qs = q.summary().unwrap();
        assert!(qs.mean_us < 1_000_000.0);
    }

    #[test]
    fn horizon_stops_generation() {
        let sim = run();
        // All flows were started within the horizon.
        for (_, st) in sim.core().flows() {
            assert!(st.started_at.nanos() <= Dur::millis(100).as_nanos());
        }
    }

    #[test]
    fn class_of_unknown_flow_is_none() {
        let sim = run();
        assert_eq!(sim.app().class_of(FlowId(u64::MAX)), None);
    }
}
