//! On-off (intermittently active) flows, as produced by frameworks like
//! Storm (§2, §4.2): connections stay open but alternate between
//! backlogged and silent. Used to validate that TFC's effective-flow
//! count tracks *active* flows only (Fig. 7).

use std::collections::BTreeMap;

use simnet::app::{Application, FlowEvent};
use simnet::endpoint::FlowSpec;
use simnet::packet::{FlowId, NodeId};
use simnet::sim::SimApi;
use simnet::units::Time;

/// One flow's activity schedule.
#[derive(Debug, Clone)]
pub struct OnOffFlow {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// `(on_ns, off_ns)` activity windows, non-overlapping ascending.
    /// While "on", the flow is kept backlogged; outside, it is silent.
    pub active: Vec<(u64, u64)>,
}

/// Keeps each flow backlogged during its active windows by feeding data
/// in chunks and topping up as deliveries drain the stream.
///
/// The chunk size bounds how long a flow keeps transmitting after its
/// window ends (the tail of already-pushed bytes must drain).
pub struct OnOffApp {
    flows_cfg: Vec<OnOffFlow>,
    chunk: u64,
    meter_window: Option<simnet::units::Dur>,
    flows: Vec<FlowId>,
    /// Bytes pushed minus bytes delivered, per flow.
    backlog: BTreeMap<FlowId, i64>,
}

impl OnOffApp {
    /// Creates the application; `chunk` is the feed granularity in bytes.
    pub fn new(flows_cfg: Vec<OnOffFlow>, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        Self {
            flows_cfg,
            chunk,
            meter_window: None,
            flows: Vec::new(),
            backlog: BTreeMap::new(),
        }
    }

    /// Attaches a goodput meter with the given window to every flow.
    pub fn with_meters(mut self, window: simnet::units::Dur) -> Self {
        self.meter_window = Some(window);
        self
    }

    /// Flow ids in config order (populated at start).
    pub fn flow_ids(&self) -> &[FlowId] {
        &self.flows
    }

    fn is_active(&self, idx: usize, now: Time) -> bool {
        self.flows_cfg[idx]
            .active
            .iter()
            .any(|&(on, off)| now.nanos() >= on && now.nanos() < off)
    }

    fn top_up(&mut self, idx: usize, api: &mut SimApi<'_>) {
        let flow = self.flows[idx];
        if !self.is_active(idx, api.now()) {
            return;
        }
        let backlog = self.backlog.get(&flow).copied().unwrap_or(0);
        if backlog < self.chunk as i64 {
            api.push_data(flow, self.chunk);
            *self.backlog.entry(flow).or_insert(0) += self.chunk as i64;
        }
    }
}

impl Application for OnOffApp {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for (idx, f) in self.flows_cfg.clone().into_iter().enumerate() {
            let flow = api.start_flow(FlowSpec {
                src: f.src,
                dst: f.dst,
                bytes: None,
                weight: 1,
            });
            api.watch_delivery(flow);
            if let Some(w) = self.meter_window {
                api.meter_flow(flow, w);
            }
            self.flows.push(flow);
            self.backlog.insert(flow, 0);
            // A wake-up at the start of every active window.
            for &(on, _) in &f.active {
                api.set_timer_at(Time(on), idx as u64);
            }
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut SimApi<'_>) {
        self.top_up(token as usize, api);
    }

    fn on_flow_event(&mut self, ev: FlowEvent, api: &mut SimApi<'_>) {
        if let FlowEvent::Delivered { flow, bytes } = ev {
            *self.backlog.entry(flow).or_insert(0) -= bytes as i64;
            if let Some(idx) = self.flows.iter().position(|&f| f == flow) {
                self.top_up(idx, api);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::policy::DropTail;
    use simnet::sim::{SimConfig, Simulator};
    use simnet::topology::star;
    use simnet::units::{Bandwidth, Dur};
    use transport::TcpStack;

    #[test]
    fn feeds_only_during_active_windows() {
        let (t, hosts, _) = star(3, Bandwidth::gbps(1), Dur::micros(1));
        let net = t.build(|_, _| Box::new(DropTail));
        let app = OnOffApp::new(
            vec![
                OnOffFlow {
                    src: hosts[0],
                    dst: hosts[2],
                    // Active for the first 2 ms only.
                    active: vec![(0, 2_000_000)],
                },
                OnOffFlow {
                    src: hosts[1],
                    dst: hosts[2],
                    // Active 4 ms .. 6 ms.
                    active: vec![(4_000_000, 6_000_000)],
                },
            ],
            64 * 1024,
        );
        let mut sim = Simulator::new(
            net,
            Box::new(TcpStack::default()),
            app,
            SimConfig {
                end: Some(Time(8_000_000)),
                ..Default::default()
            },
        );
        sim.run();
        let f0 = sim.app().flow_ids()[0];
        let f1 = sim.app().flow_ids()[1];
        let d0 = sim.core().flow(f0).delivered;
        let d1 = sim.core().flow(f1).delivered;
        // Each flow had ~2 ms alone on a 1 Gbps path: roughly 250 kB,
        // quantised by the chunk size; definitely far more than one chunk
        // and far less than the whole run's capacity.
        for d in [d0, d1] {
            assert!(d >= 128 * 1024, "delivered {d}");
            assert!(d < 450_000, "delivered {d}");
        }
    }

    #[test]
    fn silent_flow_sends_nothing() {
        let (t, hosts, _) = star(2, Bandwidth::gbps(1), Dur::micros(1));
        let net = t.build(|_, _| Box::new(DropTail));
        let app = OnOffApp::new(
            vec![OnOffFlow {
                src: hosts[0],
                dst: hosts[1],
                active: vec![(5_000_000, 6_000_000)],
            }],
            64 * 1024,
        );
        let mut sim = Simulator::new(
            net,
            Box::new(TcpStack::default()),
            app,
            SimConfig {
                end: Some(Time(4_000_000)),
                ..Default::default()
            },
        );
        sim.run();
        let f = sim.app().flow_ids()[0];
        assert_eq!(sim.core().flow(f).delivered, 0);
    }
}
