//! Traffic generators for the TFC reproduction.
//!
//! * [`incast`] — barrier-synchronised fan-in blocks (Figs. 12 and 15);
//! * [`onoff`] — intermittently active flows (Fig. 7, Storm-style);
//! * [`benchmark`] — the query / short-message / background mix of
//!   §6.1.2 and §6.2.2 (Figs. 13 and 16);
//! * [`shuffle`] — MapReduce-style all-to-all transfers;
//! * [`dist`] — Poisson arrivals and the synthetic stand-in for the
//!   DCTCP web-search flow-size distribution;
//! * [`stream`] — the open-loop streaming engine: per-class Poisson
//!   arrivals sustained indefinitely in O(active flows) memory, built
//!   to pair with the simulator's flow-retirement pipeline.

pub mod benchmark;
pub mod dist;
pub mod incast;
pub mod onoff;
pub mod shuffle;
pub mod stream;

pub use benchmark::{BenchmarkApp, BenchmarkConfig, FlowClass};
pub use incast::{IncastApp, IncastConfig, RoundStats};
pub use onoff::{OnOffApp, OnOffFlow};
pub use shuffle::{ShuffleApp, ShuffleConfig};
pub use stream::{ClassCounters, StreamApp, StreamClass, StreamConfig};
