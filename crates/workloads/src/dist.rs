//! Distributions for workload generation.

use metrics::PiecewiseCdf;
use rng::Rng;
use simnet::units::Dur;

/// Samples an exponential interarrival time with the given mean.
///
/// # Panics
///
/// Panics if `mean` is zero.
pub fn exp_interarrival(rng: &mut impl Rng, mean: Dur) -> Dur {
    assert!(mean.as_nanos() > 0, "zero mean interarrival");
    let u: f64 = rng.gen_range(1e-12..1.0);
    Dur((-u.ln() * mean.as_nanos() as f64) as u64)
}

/// A synthetic stand-in for the measured background-flow size
/// distribution of the DCTCP web-search workload (\[7\], used by the
/// paper's §6.1.2 benchmark).
///
/// We do not have the measured data from the 6000-server cluster; this
/// piecewise CDF reproduces its documented *shape*: most flows are a few
/// kilobytes (mice), a heavy tail of multi-megabyte flows (elephants)
/// carries most bytes, and all six size bins of Fig. 13b are populated.
/// See DESIGN.md for the substitution rationale.
pub fn background_flow_sizes() -> PiecewiseCdf {
    PiecewiseCdf::new(vec![
        (600.0, 0.10),
        (1_000.0, 0.15),
        (2_000.0, 0.25),
        (5_000.0, 0.40),
        (10_000.0, 0.52),
        (30_000.0, 0.63),
        (100_000.0, 0.72),
        (300_000.0, 0.80),
        (1_000_000.0, 0.87),
        (3_000_000.0, 0.93),
        (10_000_000.0, 0.97),
        (30_000_000.0, 1.00),
    ])
}

/// A synthetic stand-in for the measured cache-follower flow-size
/// distribution (Facebook memcached-style RPC traffic, as used by the
/// BFC and Homa evaluations): almost everything is a sub-kilobyte to
/// few-kilobyte object fetch, with a thin tail of larger responses and
/// essentially no elephants. Pairs with [`background_flow_sizes`] in
/// the streaming million-flow mix.
pub fn cache_follower_flow_sizes() -> PiecewiseCdf {
    PiecewiseCdf::new(vec![
        (300.0, 0.30),
        (500.0, 0.50),
        (700.0, 0.65),
        (1_000.0, 0.75),
        (2_000.0, 0.85),
        (5_000.0, 0.92),
        (10_000.0, 0.96),
        (50_000.0, 0.99),
        (200_000.0, 1.00),
    ])
}

/// Samples a flow size in bytes from a piecewise CDF.
pub fn sample_size(rng: &mut impl Rng, cdf: &PiecewiseCdf) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    cdf.inverse(u).round().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    #[test]
    fn exp_mean_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mean = Dur::millis(10);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| exp_interarrival(&mut rng, mean).as_nanos())
            .sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_nanos() as f64;
        assert!(
            (avg - expect).abs() / expect < 0.05,
            "sample mean {avg} vs {expect}"
        );
    }

    #[test]
    fn background_sizes_cover_all_bins() {
        use metrics::SizeBin;
        let mut rng = StdRng::seed_from_u64(3);
        let cdf = background_flow_sizes();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50_000 {
            seen.insert(SizeBin::of(sample_size(&mut rng, &cdf)));
        }
        assert_eq!(seen.len(), SizeBin::ALL.len(), "all bins populated");
    }

    #[test]
    fn background_sizes_are_heavy_tailed() {
        let cdf = background_flow_sizes();
        // Median a few kB, mean dominated by the elephants.
        assert!(cdf.inverse(0.5) < 20_000.0);
        assert!(cdf.mean() > 500_000.0);
    }

    #[test]
    fn cache_follower_sizes_are_mice() {
        let cdf = cache_follower_flow_sizes();
        assert!(cdf.inverse(0.5) <= 500.0, "median is a sub-kB object");
        assert!(cdf.mean() < 10_000.0, "no elephant tail");
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..10_000).all(|_| sample_size(&mut rng, &cdf) >= 1));
    }

    /// KS goodness-of-fit of a million Poisson interarrival draws
    /// against the analytic exponential CDF. The critical value for
    /// n = 10^6 at significance 0.001 is 1.95 / sqrt(n) ~ 0.00195; the
    /// threshold leaves headroom for the nanosecond truncation of
    /// `Dur`. Deterministic seed, so this either always passes or
    /// always fails.
    #[test]
    fn exp_interarrival_ks_fits_exponential_over_1e6_draws() {
        const N: usize = 1_000_000;
        let mut rng = StdRng::seed_from_u64(0xD157);
        let mean = Dur::micros(100);
        let m = mean.as_nanos() as f64;
        let mut xs: Vec<f64> = (0..N)
            .map(|_| exp_interarrival(&mut rng, mean).as_nanos() as f64)
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut d: f64 = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            let f = 1.0 - (-x / m).exp();
            let lo = i as f64 / N as f64;
            let hi = (i + 1) as f64 / N as f64;
            d = d.max((f - lo).abs()).max((hi - f).abs());
        }
        assert!(d < 0.0025, "KS statistic {d} too large for exponential fit");
        let sample_mean = xs.iter().sum::<f64>() / N as f64;
        assert!(
            (sample_mean - m).abs() / m < 0.005,
            "sample mean {sample_mean} vs analytic {m}"
        );
    }

    /// Chi-square goodness-of-fit of a million empirical-CDF draws
    /// against the knot-interval probabilities, for both flow-size
    /// mixes. 11 intervals + the atom at the first knot give at most
    /// 11 degrees of freedom; the 0.001 critical value is ~31.3.
    /// Also pins the sample mean to the analytic trapezoidal mean.
    #[test]
    fn flow_size_cdfs_match_analytic_shape_over_1e6_draws() {
        const N: usize = 1_000_000;
        for (name, cdf, seed) in [
            ("web-search", background_flow_sizes(), 11u64),
            ("cache-follower", cache_follower_flow_sizes(), 13u64),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            // Knot values and cumulative probabilities define the bins:
            // bin 0 is the atom at the first knot, bin i the half-open
            // interval (v_{i-1}, v_i].
            let knots = cdf.knots().to_vec();
            let mut counts = vec![0u64; knots.len()];
            let mut total = 0.0f64;
            for _ in 0..N {
                let s = sample_size(&mut rng, &cdf) as f64;
                total += s;
                let bin = knots.partition_point(|&(v, _)| v < s);
                counts[bin.min(knots.len() - 1)] += 1;
            }
            let mut chi2 = 0.0;
            let mut prev_p = 0.0;
            for (i, &(_, p)) in knots.iter().enumerate() {
                let expect = (p - prev_p) * N as f64;
                prev_p = p;
                let diff = counts[i] as f64 - expect;
                chi2 += diff * diff / expect;
            }
            assert!(chi2 < 40.0, "{name}: chi-square {chi2} rejects the CDF");
            let sample_mean = total / N as f64;
            let analytic = cdf.mean();
            assert!(
                (sample_mean - analytic).abs() / analytic < 0.02,
                "{name}: sample mean {sample_mean} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(42);
            let cdf = background_flow_sizes();
            (0..10)
                .map(|_| sample_size(&mut rng, &cdf))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
