//! Distributions for workload generation.

use metrics::PiecewiseCdf;
use rng::Rng;
use simnet::units::Dur;

/// Samples an exponential interarrival time with the given mean.
///
/// # Panics
///
/// Panics if `mean` is zero.
pub fn exp_interarrival(rng: &mut impl Rng, mean: Dur) -> Dur {
    assert!(mean.as_nanos() > 0, "zero mean interarrival");
    let u: f64 = rng.gen_range(1e-12..1.0);
    Dur((-u.ln() * mean.as_nanos() as f64) as u64)
}

/// A synthetic stand-in for the measured background-flow size
/// distribution of the DCTCP web-search workload (\[7\], used by the
/// paper's §6.1.2 benchmark).
///
/// We do not have the measured data from the 6000-server cluster; this
/// piecewise CDF reproduces its documented *shape*: most flows are a few
/// kilobytes (mice), a heavy tail of multi-megabyte flows (elephants)
/// carries most bytes, and all six size bins of Fig. 13b are populated.
/// See DESIGN.md for the substitution rationale.
pub fn background_flow_sizes() -> PiecewiseCdf {
    PiecewiseCdf::new(vec![
        (600.0, 0.10),
        (1_000.0, 0.15),
        (2_000.0, 0.25),
        (5_000.0, 0.40),
        (10_000.0, 0.52),
        (30_000.0, 0.63),
        (100_000.0, 0.72),
        (300_000.0, 0.80),
        (1_000_000.0, 0.87),
        (3_000_000.0, 0.93),
        (10_000_000.0, 0.97),
        (30_000_000.0, 1.00),
    ])
}

/// Samples a flow size in bytes from a piecewise CDF.
pub fn sample_size(rng: &mut impl Rng, cdf: &PiecewiseCdf) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    cdf.inverse(u).round().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    #[test]
    fn exp_mean_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mean = Dur::millis(10);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| exp_interarrival(&mut rng, mean).as_nanos())
            .sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_nanos() as f64;
        assert!(
            (avg - expect).abs() / expect < 0.05,
            "sample mean {avg} vs {expect}"
        );
    }

    #[test]
    fn background_sizes_cover_all_bins() {
        use metrics::SizeBin;
        let mut rng = StdRng::seed_from_u64(3);
        let cdf = background_flow_sizes();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50_000 {
            seen.insert(SizeBin::of(sample_size(&mut rng, &cdf)));
        }
        assert_eq!(seen.len(), SizeBin::ALL.len(), "all bins populated");
    }

    #[test]
    fn background_sizes_are_heavy_tailed() {
        let cdf = background_flow_sizes();
        // Median a few kB, mean dominated by the elephants.
        assert!(cdf.inverse(0.5) < 20_000.0);
        assert!(cdf.mean() > 500_000.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(42);
            let cdf = background_flow_sizes();
            (0..10)
                .map(|_| sample_size(&mut rng, &cdf))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
