//! Recovery metrics over exported run data.
//!
//! Everything here is a pure function over plain slices, so the same
//! code serves live experiments (reading simulator state) and the
//! `tfc-trace` CLI (reading exported JSON/CSV artifacts).

/// One fault event as read back from an exported event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEventRec {
    /// Event timestamp in ns.
    pub at_ns: u64,
    /// Fault kind label (`link_down`, `host_stall`, ...).
    pub kind: String,
    /// Whether this is the clearing half of the pair.
    pub cleared: bool,
    /// Node the fault applied to.
    pub node: u32,
    /// Port the fault applied to (0 for node-wide faults).
    pub port: u16,
    /// Kind-specific magnitude (bps, permille, or 0).
    pub value: u64,
}

/// A matched inject/clear pair (or an uncleaned injection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultWindow {
    /// Fault kind label.
    pub kind: String,
    /// Node the fault applied to.
    pub node: u32,
    /// Port the fault applied to.
    pub port: u16,
    /// When the fault was injected, ns.
    pub start_ns: u64,
    /// When it was cleared (`None` if still active at run end).
    pub end_ns: Option<u64>,
    /// Magnitude of the injection.
    pub value: u64,
}

/// Pairs `fault_injected` events with the matching `fault_cleared` by
/// `(kind, node, port)`, in time order. Rate renegotiations have no
/// clear event; each shows up as an open window.
pub fn pair_windows(events: &[FaultEventRec]) -> Vec<FaultWindow> {
    let mut windows: Vec<FaultWindow> = Vec::new();
    for ev in events {
        if ev.cleared {
            if let Some(w) = windows
                .iter_mut()
                .rev()
                .find(|w| w.end_ns.is_none() && w.kind == ev.kind && w.node == ev.node && w.port == ev.port)
            {
                w.end_ns = Some(ev.at_ns);
                continue;
            }
        } else {
            windows.push(FaultWindow {
                kind: ev.kind.clone(),
                node: ev.node,
                port: ev.port,
                start_ns: ev.at_ns,
                end_ns: None,
                value: ev.value,
            });
        }
    }
    windows
}

/// Summary of a goodput dip around one fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DipSummary {
    /// Mean delivery rate over the bins fully before the fault, bps.
    pub baseline_bps: f64,
    /// Lowest binned rate between fault start and recovery, bps.
    pub floor_bps: f64,
    /// `1 - floor/baseline` (0 = no dip, 1 = total stall).
    pub depth: f64,
    /// Time from fault clear until the binned rate first again reaches
    /// 90 % of baseline (`None` if it never does before the data ends).
    pub recovery_ns: Option<u64>,
}

/// Bins `(at_ns, bytes)` delivery events into `bin_ns` buckets and
/// measures the dip caused by a fault active over
/// `[fault_start_ns, fault_end_ns)`.
///
/// Returns `None` when there is no full pre-fault bin to take a
/// baseline from, or when the baseline is zero.
pub fn goodput_dip(
    deliveries: &[(u64, u64)],
    fault_start_ns: u64,
    fault_end_ns: u64,
    bin_ns: u64,
) -> Option<DipSummary> {
    assert!(bin_ns > 0, "bin width must be positive");
    let horizon = deliveries.iter().map(|&(t, _)| t).max()?;
    let n_bins = (horizon / bin_ns + 1) as usize;
    let mut bytes = vec![0u64; n_bins];
    for &(t, b) in deliveries {
        bytes[(t / bin_ns) as usize] += b;
    }
    let rate = |b: u64| b as f64 * 8.0 / (bin_ns as f64 / 1e9);
    // Baseline: bins that end at or before the fault starts.
    let pre_bins = (fault_start_ns / bin_ns) as usize;
    if pre_bins == 0 {
        return None;
    }
    let baseline_bps =
        bytes[..pre_bins.min(n_bins)].iter().map(|&b| rate(b)).sum::<f64>() / pre_bins as f64;
    if baseline_bps <= 0.0 {
        return None;
    }
    // Recovery: first bin starting at/after the clear whose rate is back
    // to 90 % of baseline.
    let first_after = (fault_end_ns / bin_ns) as usize;
    let mut recovery_ns = None;
    for (i, &b) in bytes.iter().enumerate().skip(first_after) {
        if rate(b) >= 0.9 * baseline_bps {
            let bin_end = (i as u64 + 1) * bin_ns;
            recovery_ns = Some(bin_end.saturating_sub(fault_end_ns));
            break;
        }
    }
    // Floor: lowest rate from fault start until recovery (or data end).
    let dip_from = (fault_start_ns / bin_ns) as usize;
    let dip_to = recovery_ns
        .map(|r| ((fault_end_ns + r) / bin_ns) as usize)
        .unwrap_or(n_bins)
        .min(n_bins);
    let floor_bps = bytes[dip_from.min(n_bins)..dip_to]
        .iter()
        .map(|&b| rate(b))
        .fold(f64::INFINITY, f64::min);
    let floor_bps = if floor_bps.is_finite() { floor_bps } else { baseline_bps };
    Some(DipSummary {
        baseline_bps,
        floor_bps,
        depth: (1.0 - floor_bps / baseline_bps).max(0.0),
        recovery_ns,
    })
}

/// Time for the binned delivery rate to *rise* to `target_bps` and stay
/// there for `sustain` consecutive bins, measured from `from_ns` to the
/// end of the first bin of the sustained run.
///
/// This is the headline metric for victim faults (one sender silenced):
/// the survivors' aggregate must climb from its pre-fault share to the
/// full link rate. A plain "first bin over target" check is fooled by
/// the bottleneck's queue backlog, which keeps serving the victim's
/// stale packets for a while after the fault — the sustain requirement
/// skips that mirage. A run that reaches the end of the data counts
/// even if it is shorter than `sustain`; returns `None` when the rate
/// never holds the target.
pub fn rise_time_ns(
    deliveries: &[(u64, u64)],
    from_ns: u64,
    target_bps: f64,
    bin_ns: u64,
    sustain: usize,
) -> Option<u64> {
    assert!(bin_ns > 0, "bin width must be positive");
    assert!(sustain > 0, "need at least one sustained bin");
    let horizon = deliveries.iter().map(|&(t, _)| t).max()?;
    let n_bins = (horizon / bin_ns + 1) as usize;
    let mut bytes = vec![0u64; n_bins];
    for &(t, b) in deliveries {
        bytes[(t / bin_ns) as usize] += b;
    }
    let rate = |b: u64| b as f64 * 8.0 / (bin_ns as f64 / 1e9);
    let mut run_start = None;
    let mut run_len = 0;
    for i in (from_ns / bin_ns) as usize..n_bins {
        if rate(bytes[i]) >= target_bps {
            run_start = run_start.or(Some(i as u64));
            run_len += 1;
            if run_len >= sustain {
                break;
            }
        } else {
            run_start = None;
            run_len = 0;
        }
    }
    run_start.map(|i0| ((i0 + 1) * bin_ns).saturating_sub(from_ns))
}

/// Time for a gauge series `(at_ns, value)` to fall to `target` or
/// below, measured from `fault_ns`. Used on the TFC `effective_flows`
/// (and token) slot gauges to measure §4.3 reclamation: after a host
/// stalls, E should drop to the surviving-flow count within two slots.
pub fn settle_time_ns(series: &[(u64, f64)], fault_ns: u64, target: f64) -> Option<u64> {
    series
        .iter()
        .find(|&&(t, v)| t >= fault_ns && v <= target)
        .map(|&(t, _)| t - fault_ns)
}

/// Time from `t_ns` to the first event timestamp at or after it —
/// e.g. window re-acquisition: the first `flow_window_acquired` after a
/// host resumes. `events` must be sorted ascending.
pub fn time_to_first_after(events: &[u64], t_ns: u64) -> Option<u64> {
    events.iter().find(|&&e| e >= t_ns).map(|&e| e - t_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, kind: &str, cleared: bool) -> FaultEventRec {
        FaultEventRec {
            at_ns: at,
            kind: kind.into(),
            cleared,
            node: 9,
            port: 1,
            value: 0,
        }
    }

    #[test]
    fn windows_pair_by_identity_in_order() {
        let events = vec![
            rec(100, "link_down", false),
            rec(150, "host_stall", false),
            rec(200, "link_down", true),
            rec(300, "link_down", false),
        ];
        let w = pair_windows(&events);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].end_ns, Some(200));
        assert_eq!(w[1].kind, "host_stall");
        assert_eq!(w[1].end_ns, None);
        assert_eq!(w[2].start_ns, 300);
        assert_eq!(w[2].end_ns, None);
    }

    #[test]
    fn dip_detects_depth_and_recovery() {
        // 10 bins of 1000 ns at 1000 B/bin, a dead window in bins 4-5,
        // then full rate again.
        let mut deliveries = Vec::new();
        for bin in 0..10u64 {
            let b = if (4..6).contains(&bin) { 0 } else { 1000 };
            if b > 0 {
                deliveries.push((bin * 1000 + 500, b));
            }
        }
        let s = goodput_dip(&deliveries, 4_000, 6_000, 1_000).unwrap();
        assert!((s.baseline_bps - 8e9).abs() < 1.0, "{}", s.baseline_bps);
        assert_eq!(s.floor_bps, 0.0);
        assert_eq!(s.depth, 1.0);
        // Bin 6 is already back at baseline: recovery by its end, 1000 ns
        // after the clear.
        assert_eq!(s.recovery_ns, Some(1_000));
    }

    #[test]
    fn dip_without_pre_fault_bins_is_none() {
        assert!(goodput_dip(&[(100, 10)], 0, 500, 1_000).is_none());
    }

    #[test]
    fn dip_that_never_recovers() {
        let deliveries = vec![(500, 1000), (1_500, 1000), (2_500, 0)];
        let s = goodput_dip(&deliveries, 2_000, 2_100, 1_000).unwrap();
        assert_eq!(s.recovery_ns, None);
        assert_eq!(s.depth, 1.0);
    }

    #[test]
    fn rise_time_skips_the_queue_mask_mirage() {
        // 1000 ns bins at 8 Gbps target-passing rate; bins 4-5 pass,
        // bin 6 dips (the masked collapse), bins 7+ hold.
        let mut deliveries = Vec::new();
        for bin in 0..12u64 {
            let b = if bin == 6 { 100 } else { 1000 };
            deliveries.push((bin * 1000 + 500, b));
        }
        // Sustain 3: the bins 4-5 run is broken by bin 6, so the real
        // rise is the run starting at bin 7 → end of bin 7 = 8000 ns.
        assert_eq!(rise_time_ns(&deliveries, 4_000, 7.9e9, 1_000, 3), Some(4_000));
        // Sustain 1 is fooled by the mirage run at bin 4.
        assert_eq!(rise_time_ns(&deliveries, 4_000, 7.9e9, 1_000, 1), Some(1_000));
    }

    #[test]
    fn rise_time_accepts_a_short_run_at_data_end() {
        let deliveries = vec![(500, 0), (1_500, 0), (2_500, 1000)];
        assert_eq!(rise_time_ns(&deliveries, 0, 7.9e9, 1_000, 5), Some(3_000));
        assert_eq!(rise_time_ns(&deliveries, 0, 9.0e9, 1_000, 5), None);
    }

    #[test]
    fn settle_time_finds_first_sample_at_or_below_target() {
        let series = vec![(100, 3.0), (200, 3.0), (300, 2.0), (400, 1.9)];
        assert_eq!(settle_time_ns(&series, 150, 2.0), Some(150));
        assert_eq!(settle_time_ns(&series, 150, 0.5), None);
    }

    #[test]
    fn first_after_measures_reacquisition() {
        let events = vec![100, 900, 2_000];
        assert_eq!(time_to_first_after(&events, 500), Some(400));
        assert_eq!(time_to_first_after(&events, 2_001), None);
    }
}
