//! Deterministic chaos: scripted fault timelines, seeded fault
//! generators, and recovery metrics.
//!
//! The simulator itself only understands one atomic
//! [`FaultAction`](simnet::fault::FaultAction) at a time; this crate
//! layers the experiment vocabulary on top:
//!
//! * [`FaultTimeline`] — an ordered script of `(time, action)` pairs
//!   with convenience constructors for the paired patterns (a link
//!   *flap* is a down + an up, a *loss burst* is a window + its end,
//!   ...). Installing the same timeline into runs with the same seed
//!   yields byte-identical results.
//! * [`ChaosGen`] — a seeded randomized timeline generator for chaos
//!   suites: reproducible "random" flaps and stalls.
//! * [`recovery`] — pure functions from exported run data (delivery
//!   events, TFC slot gauges, fault windows) to recovery metrics:
//!   goodput dip depth and duration, token-reclaim time, window
//!   re-acquisition time. They operate on plain slices so both live
//!   experiments and the `tfc-trace` artifact reader can use them.

pub mod gen;
pub mod recovery;
pub mod timeline;

pub use gen::ChaosGen;
pub use recovery::{DipSummary, FaultEventRec, FaultWindow};
pub use timeline::FaultTimeline;
