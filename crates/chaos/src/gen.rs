//! Seeded randomized chaos: reproducible "random" fault timelines.

use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use simnet::packet::NodeId;
use simnet::units::{Dur, Time};

use crate::timeline::FaultTimeline;

/// XOR tag deriving the generator's stream from an experiment seed, so
/// a chaos suite can reuse the run seed without correlating with the
/// simulator's own draws.
const GEN_TAG: u64 = 0xc4a0_5bad_c4a0_5bad;

/// A seeded generator of randomized fault timelines.
///
/// The same seed always produces the same timeline, so a randomized
/// chaos experiment is exactly as reproducible as a scripted one.
#[derive(Debug)]
pub struct ChaosGen {
    rng: StdRng,
}

impl ChaosGen {
    /// Creates a generator for `seed` (typically the experiment seed).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ GEN_TAG),
        }
    }

    /// Draws a time uniformly in `[lo, hi)`.
    fn time_in(&mut self, lo: Time, hi: Time) -> Time {
        Time(self.rng.gen_range(lo.nanos()..hi.nanos()))
    }

    /// `count` link flaps on links drawn from `links`, each starting
    /// uniformly inside `[horizon/8, horizon)` and lasting uniformly
    /// between `min_dur` and `max_dur`.
    pub fn link_flaps(
        &mut self,
        links: &[(NodeId, usize)],
        horizon: Time,
        count: usize,
        min_dur: Dur,
        max_dur: Dur,
    ) -> FaultTimeline {
        let mut tl = FaultTimeline::new();
        assert!(!links.is_empty(), "need at least one link to flap");
        for _ in 0..count {
            let (node, port) = links[self.rng.gen_range(0..links.len())];
            let at = self.time_in(Time(horizon.nanos() / 8), horizon);
            let dur = Dur(self.rng.gen_range(min_dur.as_nanos()..=max_dur.as_nanos()));
            tl = tl.link_flap(at, dur, node, port);
        }
        tl
    }

    /// `count` host stalls drawn from `hosts`, with the same placement
    /// rules as [`Self::link_flaps`].
    pub fn host_stalls(
        &mut self,
        hosts: &[NodeId],
        horizon: Time,
        count: usize,
        min_dur: Dur,
        max_dur: Dur,
    ) -> FaultTimeline {
        let mut tl = FaultTimeline::new();
        assert!(!hosts.is_empty(), "need at least one host to stall");
        for _ in 0..count {
            let node = hosts[self.rng.gen_range(0..hosts.len())];
            let at = self.time_in(Time(horizon.nanos() / 8), horizon);
            let dur = Dur(self.rng.gen_range(min_dur.as_nanos()..=max_dur.as_nanos()));
            tl = tl.host_stall(at, dur, node);
        }
        tl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaps(seed: u64) -> Vec<(u64, u64)> {
        let mut g = ChaosGen::new(seed);
        let tl = g.link_flaps(
            &[(NodeId(9), 0), (NodeId(9), 1), (NodeId(9), 2)],
            Time(10_000_000),
            4,
            Dur::micros(50),
            Dur::micros(500),
        );
        tl.plan()
            .iter()
            .map(|(t, a)| (t.nanos(), a.node().0 as u64 * 100 + a.port() as u64))
            .collect()
    }

    #[test]
    fn same_seed_same_timeline() {
        assert_eq!(flaps(7), flaps(7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(flaps(7), flaps(8));
    }

    #[test]
    fn stalls_stay_inside_horizon() {
        let mut g = ChaosGen::new(1);
        let tl = g.host_stalls(
            &[NodeId(0), NodeId(1)],
            Time(1_000_000),
            8,
            Dur::micros(1),
            Dur::micros(10),
        );
        for (t, _) in tl.plan() {
            assert!(t.nanos() >= 125_000 && t.nanos() < 1_000_000 + 10_000);
        }
    }
}
