//! Scripted fault timelines.

use simnet::fault::FaultAction;
use simnet::packet::NodeId;
use simnet::sim::SimCore;
use simnet::units::{Bandwidth, Dur, Time};

/// An ordered script of faults to apply to one run.
///
/// Entries are kept in insertion order; the simulator's event queue
/// breaks same-time ties by insertion order, so a timeline is applied
/// exactly as written, every run.
///
/// # Examples
///
/// ```
/// use simnet::packet::NodeId;
/// use simnet::units::{Dur, Time};
/// use tfc_chaos::FaultTimeline;
///
/// let tl = FaultTimeline::new()
///     .link_flap(Time(1_000_000), Dur::millis(2), NodeId(9), 1)
///     .host_stall(Time(5_000_000), Dur::millis(10), NodeId(0));
/// assert_eq!(tl.plan().len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultTimeline {
    plan: Vec<(Time, FaultAction)>,
}

impl FaultTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one raw `(time, action)` entry.
    pub fn at(mut self, at: Time, action: FaultAction) -> Self {
        self.plan.push((at, action));
        self
    }

    /// Link flap: down at `at`, back up after `dur`.
    pub fn link_flap(self, at: Time, dur: Dur, node: NodeId, port: usize) -> Self {
        self.at(at, FaultAction::LinkDown { node, port })
            .at(at + dur, FaultAction::LinkUp { node, port })
    }

    /// Host stall without FIN at `at`, resuming after `dur` (the §4.3
    /// token-reclamation case).
    pub fn host_stall(self, at: Time, dur: Dur, node: NodeId) -> Self {
        self.at(at, FaultAction::HostStall { node })
            .at(at + dur, FaultAction::HostResume { node })
    }

    /// Bursty loss window on a port: each crossing packet dropped with
    /// probability `permille`/1000 for `dur`.
    pub fn loss_burst(self, at: Time, dur: Dur, node: NodeId, port: usize, permille: u16) -> Self {
        self.at(
            at,
            FaultAction::LossWindow {
                node,
                port,
                permille,
            },
        )
        .at(at + dur, FaultAction::LossWindowEnd { node, port })
    }

    /// Rate renegotiation dip: the link trains down to `dip` at `at` and
    /// back to `restore` after `dur`.
    pub fn rate_dip(
        self,
        at: Time,
        dur: Dur,
        node: NodeId,
        port: usize,
        dip: Bandwidth,
        restore: Bandwidth,
    ) -> Self {
        self.at(at, FaultAction::LinkRate { node, port, rate: dip })
            .at(
                at + dur,
                FaultAction::LinkRate {
                    node,
                    port,
                    rate: restore,
                },
            )
    }

    /// Control-plane reboot of a switch port's policy state at `at`.
    pub fn policy_reset(self, at: Time, node: NodeId, port: usize) -> Self {
        self.at(at, FaultAction::PolicyReset { node, port })
    }

    /// The scripted `(time, action)` pairs, in insertion order.
    pub fn plan(&self) -> &[(Time, FaultAction)] {
        &self.plan
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Schedules every entry into a simulation (before or during a run).
    pub fn install(&self, core: &mut SimCore) {
        core.inject_faults(&self.plan);
    }

    /// Merges another timeline's entries after this one's.
    pub fn extend(mut self, other: FaultTimeline) -> Self {
        self.plan.extend(other.plan);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_constructors_emit_inject_then_clear() {
        let tl = FaultTimeline::new()
            .link_flap(Time(100), Dur(50), NodeId(1), 2)
            .loss_burst(Time(300), Dur(50), NodeId(1), 2, 200)
            .host_stall(Time(500), Dur(50), NodeId(3));
        let plan = tl.plan();
        assert_eq!(plan.len(), 6);
        for pair in plan.chunks(2) {
            let (t0, inject) = pair[0];
            let (t1, clear) = pair[1];
            assert!(!inject.is_clear());
            assert!(clear.is_clear());
            assert_eq!(inject.kind_label(), clear.kind_label());
            assert_eq!(t1, Time(t0.nanos() + 50));
        }
    }

    #[test]
    fn rate_dip_sets_both_rates() {
        let tl = FaultTimeline::new().rate_dip(
            Time(0),
            Dur(10),
            NodeId(0),
            0,
            Bandwidth::gbps(1),
            Bandwidth::gbps(10),
        );
        let values: Vec<u64> = tl.plan().iter().map(|(_, a)| a.value()).collect();
        assert_eq!(values, vec![1_000_000_000, 10_000_000_000]);
    }

    #[test]
    fn extend_preserves_order() {
        let a = FaultTimeline::new().policy_reset(Time(5), NodeId(9), 1);
        let b = FaultTimeline::new().policy_reset(Time(1), NodeId(9), 2);
        let merged = a.extend(b);
        assert_eq!(merged.plan().len(), 2);
        assert_eq!(merged.plan()[0].1.port(), 1);
    }
}
