//! Sim-wide event-loop counters and per-port TFC slot gauges.

/// Per-event-type counts and (optionally) cumulative wall-clock time
/// spent handling each type — the simulator's built-in profiling hook.
///
/// The name table is provided by the event-loop owner (the simulator
/// passes its `Event` kind names) so this crate stays below it.
#[derive(Debug)]
pub struct LoopStats {
    names: &'static [&'static str],
    counts: Vec<u64>,
    batches: Vec<u64>,
    nanos: Vec<u64>,
    profile: bool,
    /// Sharded-scheduler extraction windows opened (0 elsewhere).
    windows: u64,
    /// Per-shard `(pushes, drained)` queue counters, in shard-index
    /// order so the merged view is deterministic. Empty unless the
    /// sharded scheduler ran.
    shards: Vec<(u64, u64)>,
}

impl LoopStats {
    /// Creates stats for `names.len()` event types. `profile` enables
    /// wall-clock accumulation (the caller is expected to time handlers
    /// only when [`profiled`](Self::profiled) is true).
    pub fn new(names: &'static [&'static str], profile: bool) -> Self {
        Self {
            names,
            counts: vec![0; names.len()],
            batches: vec![0; names.len()],
            nanos: vec![0; names.len()],
            profile,
            windows: 0,
            shards: Vec::new(),
        }
    }

    /// Records the sharded scheduler's per-shard queue counters: the
    /// number of extraction windows opened plus `(pushes, drained)` per
    /// shard, already in shard-index order.
    pub fn set_shards(&mut self, windows: u64, shards: Vec<(u64, u64)>) {
        self.windows = windows;
        self.shards = shards;
    }

    /// Sharded-scheduler extraction windows, and per-shard
    /// `(pushes, drained)` rows in shard-index order (empty unless the
    /// sharded scheduler ran).
    pub fn shard_rows(&self) -> (u64, &[(u64, u64)]) {
        (self.windows, &self.shards)
    }

    /// Whether handler timing was requested.
    #[inline]
    pub fn profiled(&self) -> bool {
        self.profile
    }

    /// Counts one handled event of type `idx` (a batch of one).
    #[inline]
    pub fn count(&mut self, idx: usize) {
        self.count_batch(idx, 1);
    }

    /// Counts one dispatched batch of `n` events of type `idx`. When
    /// profiling, [`add_nanos`](Self::add_nanos) is expected once per
    /// batch, so `nanos / batches` is time per handler invocation and
    /// `counts / batches` the mean coalescing factor.
    #[inline]
    pub fn count_batch(&mut self, idx: usize, n: u64) {
        self.counts[idx] += n;
        self.batches[idx] += 1;
    }

    /// Adds handler wall-clock time for type `idx`.
    #[inline]
    pub fn add_nanos(&mut self, idx: usize, ns: u64) {
        self.nanos[idx] += ns;
    }

    /// `(name, count, batches, cumulative_ns)` per event type, in index
    /// order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, u64, u64, u64)> + '_ {
        self.names
            .iter()
            .zip(&self.counts)
            .zip(&self.batches)
            .zip(&self.nanos)
            .map(|(((n, c), b), t)| (*n, *c, *b, *t))
    }

    /// Total events counted across all types.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total dispatched batches across all types.
    pub fn total_batches(&self) -> u64 {
        self.batches.iter().sum()
    }

    /// Total handler wall-clock time across all types (0 unless
    /// profiling was on).
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

/// One per-port TFC gauge sample, taken when a token-engine slot closes.
///
/// Mirrors the paper's per-port state: the token `T[n]`, the effective
/// flow estimate `E[n]`, the utilisation counter rho, plus the delay
/// arbiter's held-ACK backlog and cumulative delay-function activations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortSlotSample {
    /// Slot-close simulation time in nanoseconds (filled by the
    /// simulator; policies leave it 0).
    pub at_ns: u64,
    /// The switch.
    pub node: u32,
    /// Egress port index.
    pub port: u16,
    /// Token `T[n]` in bytes after the adjustment.
    pub token_bytes: f64,
    /// Effective flow count `E[n]` after the slot.
    pub effective_flows: f64,
    /// Slot utilisation `rho` (arrived bytes / capacity).
    pub rho: f64,
    /// Per-flow window `W[n]` in bytes derived from the slot.
    pub window_bytes: u64,
    /// Base RTT estimate in nanoseconds.
    pub rtt_b_ns: u64,
    /// Measured slot RTT in nanoseconds.
    pub rtt_m_ns: u64,
    /// ACKs currently held by the delay arbiter.
    pub held_acks: u64,
    /// Cumulative ACKs ever delayed by the arbiter (activations).
    pub delayed_total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: [&str; 3] = ["a", "b", "c"];

    #[test]
    fn counts_and_nanos_accumulate_per_type() {
        let mut s = LoopStats::new(&NAMES, true);
        assert!(s.profiled());
        s.count(0);
        s.count(2);
        s.count(2);
        s.add_nanos(2, 40);
        s.add_nanos(2, 2);
        let rows: Vec<_> = s.rows().collect();
        assert_eq!(rows, vec![("a", 1, 1, 0), ("b", 0, 0, 0), ("c", 2, 2, 42)]);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn unprofiled_stats_still_count() {
        let mut s = LoopStats::new(&NAMES, false);
        assert!(!s.profiled());
        s.count(1);
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn batches_track_coalesced_dispatch() {
        let mut s = LoopStats::new(&NAMES, true);
        s.count_batch(0, 5);
        s.count_batch(0, 3);
        s.count(0);
        s.add_nanos(0, 90);
        let rows: Vec<_> = s.rows().collect();
        assert_eq!(rows[0], ("a", 9, 3, 90));
        assert_eq!(s.total(), 9);
        assert_eq!(s.total_batches(), 3);
    }
}
