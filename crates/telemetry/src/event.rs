//! Typed packet- and flow-lifecycle event records.
//!
//! The simulator emits one [`TraceEvent`] per interesting transition;
//! the [`EventLog`] stores them subject to a mode (off / bounded ring /
//! unbounded) and a deterministic sampling filter for the high-rate
//! packet events. Per-kind counts are exact regardless of sampling or
//! ring eviction, so exported counters always reconcile with simulator
//! ground truth even when the event list itself is thinned.
//!
//! This crate sits below the simulator, so node, flow, and time fields
//! are plain integers (`u32` node ids, `u64` flow ids, `u64`
//! nanoseconds) rather than simulator newtypes.

use std::collections::VecDeque;

use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};

/// Number of distinct [`TraceEvent`] kinds.
pub const EVENT_KIND_COUNT: usize = 17;

/// Kind names, indexed by [`TraceEvent::kind_index`]. These are the
/// `kind` strings written to `events.json` and the keys of the exported
/// per-kind counter object.
pub const EVENT_KIND_NAMES: [&str; EVENT_KIND_COUNT] = [
    "pkt_enqueue",
    "pkt_dequeue",
    "pkt_drop",
    "pkt_ecn_mark",
    "pkt_round_mark",
    "pkt_deliver",
    "pkt_ack",
    "flow_open",
    "flow_established",
    "flow_window_acquired",
    "flow_retransmit",
    "flow_rto",
    "flow_fin",
    "flow_rtt_sample",
    "fault_injected",
    "fault_cleared",
    "rerouted",
];

/// One structured telemetry event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A packet joined an output FIFO (host NIC or switch egress).
    PktEnqueue {
        /// Node owning the queue.
        node: u32,
        /// Port index at that node.
        port: u16,
        /// Flow id.
        flow: u64,
        /// Sequence number (0 for control packets).
        seq: u64,
        /// Wire bytes of the packet.
        bytes: u64,
        /// Queue backlog in bytes after the enqueue.
        queue_bytes: u64,
    },
    /// A packet left an output FIFO onto the wire.
    PktDequeue {
        /// Node owning the queue.
        node: u32,
        /// Port index at that node.
        port: u16,
        /// Flow id.
        flow: u64,
        /// Sequence number.
        seq: u64,
        /// Wire bytes of the packet.
        bytes: u64,
    },
    /// A packet was tail-dropped at a full FIFO.
    PktDrop {
        /// Node owning the queue.
        node: u32,
        /// Port index at that node.
        port: u16,
        /// Flow id.
        flow: u64,
        /// Sequence number.
        seq: u64,
        /// Wire bytes of the packet.
        bytes: u64,
    },
    /// A switch set the ECN Congestion Experienced codepoint.
    PktEcnMark {
        /// Marking switch.
        node: u32,
        /// Egress port.
        port: u16,
        /// Flow id.
        flow: u64,
        /// Sequence number.
        seq: u64,
    },
    /// A TFC round-mark (RM) packet passed a switch egress, carrying the
    /// window stamped so far along its path.
    PktRoundMark {
        /// The switch.
        node: u32,
        /// Egress port.
        port: u16,
        /// Flow id.
        flow: u64,
        /// Sequence number.
        seq: u64,
        /// Window field after this hop's min-clamp, in bytes.
        window: u64,
    },
    /// In-order payload reached the receiving application.
    PktDeliver {
        /// Receiving host.
        node: u32,
        /// Flow id.
        flow: u64,
        /// Newly delivered payload bytes.
        bytes: u64,
    },
    /// An ACK arrived at a host.
    PktAck {
        /// Receiving host.
        node: u32,
        /// Flow id.
        flow: u64,
        /// Cumulative acknowledgement number.
        ack: u64,
    },
    /// A flow was started by the application.
    FlowOpen {
        /// Flow id.
        flow: u64,
        /// Source host.
        src: u32,
        /// Destination host.
        dst: u32,
        /// Flow size in bytes (0 = open-ended).
        bytes: u64,
    },
    /// The connection handshake completed.
    FlowEstablished {
        /// Flow id.
        flow: u64,
    },
    /// The sender adopted a new congestion window (TFC: from an RMA
    /// stamp; TCP: on loss recovery).
    FlowWindowAcquired {
        /// Flow id.
        flow: u64,
        /// The adopted window in bytes.
        window: u64,
    },
    /// The sender retransmitted a packet.
    FlowRetransmit {
        /// Flow id.
        flow: u64,
    },
    /// A retransmission timeout fired.
    FlowRto {
        /// Flow id.
        flow: u64,
    },
    /// The sender finished (all data acknowledged, FIN acked).
    FlowFin {
        /// Flow id.
        flow: u64,
        /// Bytes delivered to the receiver when the sender finished.
        delivered: u64,
    },
    /// The sender measured one round-trip time.
    FlowRttSample {
        /// Flow id.
        flow: u64,
        /// Measured RTT in nanoseconds.
        nanos: u64,
    },
    /// A chaos fault took effect (link down, host stall, loss window,
    /// rate change, policy reset, ...).
    FaultInjected {
        /// Stable fault-kind label (e.g. `"link_down"`, `"host_stall"`).
        kind: &'static str,
        /// Node the fault applies to (host or switch).
        node: u32,
        /// Port at that node (0 for node-wide faults).
        port: u16,
        /// Kind-specific magnitude: new rate in bps for rate changes,
        /// loss probability in permille for loss windows, 0 otherwise.
        value: u64,
    },
    /// A previously injected fault was lifted (link up, host resume,
    /// loss window end, ...).
    FaultCleared {
        /// Stable fault-kind label matching the injection.
        kind: &'static str,
        /// Node the fault applied to.
        node: u32,
        /// Port at that node (0 for node-wide faults).
        port: u16,
        /// Kind-specific magnitude (see [`TraceEvent::FaultInjected`]).
        value: u64,
    },
    /// A link-down made surviving equal-cost members absorb traffic at a
    /// switch: deterministic ECMP route repair took effect. Emitted once
    /// per switch end of the downed link, right after its
    /// [`TraceEvent::FaultInjected`] record.
    Rerouted {
        /// The switch whose route table is affected.
        node: u32,
        /// The downed port at that switch.
        port: u16,
        /// Destinations whose equal-cost set contains the port alongside
        /// at least one surviving member (0 = nothing to absorb, e.g. a
        /// tree link with a unique path).
        dests: u64,
    },
}

impl TraceEvent {
    /// Dense kind index into [`EVENT_KIND_NAMES`].
    pub fn kind_index(&self) -> usize {
        match self {
            TraceEvent::PktEnqueue { .. } => 0,
            TraceEvent::PktDequeue { .. } => 1,
            TraceEvent::PktDrop { .. } => 2,
            TraceEvent::PktEcnMark { .. } => 3,
            TraceEvent::PktRoundMark { .. } => 4,
            TraceEvent::PktDeliver { .. } => 5,
            TraceEvent::PktAck { .. } => 6,
            TraceEvent::FlowOpen { .. } => 7,
            TraceEvent::FlowEstablished { .. } => 8,
            TraceEvent::FlowWindowAcquired { .. } => 9,
            TraceEvent::FlowRetransmit { .. } => 10,
            TraceEvent::FlowRto { .. } => 11,
            TraceEvent::FlowFin { .. } => 12,
            TraceEvent::FlowRttSample { .. } => 13,
            TraceEvent::FaultInjected { .. } => 14,
            TraceEvent::FaultCleared { .. } => 15,
            TraceEvent::Rerouted { .. } => 16,
        }
    }

    /// The kind's export name.
    pub fn kind_name(&self) -> &'static str {
        EVENT_KIND_NAMES[self.kind_index()]
    }

    /// Whether this is a per-packet event (subject to sampling) rather
    /// than a per-flow lifecycle event (always kept).
    pub fn is_packet(&self) -> bool {
        self.kind_index() <= 6
    }

    /// The flow involved (0 for flow-less events such as faults).
    pub fn flow(&self) -> u64 {
        match *self {
            TraceEvent::PktEnqueue { flow, .. }
            | TraceEvent::PktDequeue { flow, .. }
            | TraceEvent::PktDrop { flow, .. }
            | TraceEvent::PktEcnMark { flow, .. }
            | TraceEvent::PktRoundMark { flow, .. }
            | TraceEvent::PktDeliver { flow, .. }
            | TraceEvent::PktAck { flow, .. }
            | TraceEvent::FlowOpen { flow, .. }
            | TraceEvent::FlowEstablished { flow }
            | TraceEvent::FlowWindowAcquired { flow, .. }
            | TraceEvent::FlowRetransmit { flow }
            | TraceEvent::FlowRto { flow }
            | TraceEvent::FlowFin { flow, .. }
            | TraceEvent::FlowRttSample { flow, .. } => flow,
            TraceEvent::FaultInjected { .. }
            | TraceEvent::FaultCleared { .. }
            | TraceEvent::Rerouted { .. } => 0,
        }
    }
}

/// A [`TraceEvent`] plus its simulation timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Simulation time in nanoseconds.
    pub at_ns: u64,
    /// The event.
    pub event: TraceEvent,
}

/// How the event list is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogMode {
    /// Record nothing (per-kind counts stay zero too). The default.
    #[default]
    Off,
    /// Keep only the most recent `N` records (counts stay exact).
    Ring(usize),
    /// Keep every record.
    Full,
}

/// The structured event log: bounded or unbounded record storage with
/// exact per-kind counters and a deterministic sampling filter.
///
/// Sampling applies to packet-class events only ([`TraceEvent::is_packet`]);
/// flow-lifecycle events are always stored. Per-kind counts are
/// incremented *before* sampling and eviction, so they are exact.
#[derive(Debug)]
pub struct EventLog {
    mode: LogMode,
    one_in: u64,
    rng: StdRng,
    records: VecDeque<EventRecord>,
    counts: [u64; EVENT_KIND_COUNT],
    evicted: u64,
    sampled_out: u64,
}

impl EventLog {
    /// Creates a log. `one_in` is the packet-event sampling rate (keep
    /// one in `n`; 0 and 1 both mean keep all), drawn from a dedicated
    /// RNG seeded with `seed` so runs are reproducible.
    pub fn new(mode: LogMode, one_in: u64, seed: u64) -> Self {
        Self {
            mode,
            one_in,
            rng: StdRng::seed_from_u64(seed),
            records: VecDeque::new(),
            counts: [0; EVENT_KIND_COUNT],
            evicted: 0,
            sampled_out: 0,
        }
    }

    /// A disabled log (the hot-path guard [`enabled`](Self::enabled)
    /// returns `false`).
    pub fn disabled() -> Self {
        Self::new(LogMode::Off, 1, 0)
    }

    /// Whether events should be offered at all. Callers guard event
    /// construction with this so a disabled log costs one branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode != LogMode::Off
    }

    /// Offers an event at `at_ns` simulation time.
    pub fn record(&mut self, at_ns: u64, event: TraceEvent) {
        if !self.enabled() {
            return;
        }
        self.counts[event.kind_index()] += 1;
        if self.one_in > 1 && event.is_packet() && self.rng.gen_range(0..self.one_in) != 0 {
            self.sampled_out += 1;
            return;
        }
        if let LogMode::Ring(cap) = self.mode {
            if cap == 0 {
                self.evicted += 1;
                return;
            }
            if self.records.len() == cap {
                self.records.pop_front();
                self.evicted += 1;
            }
        }
        self.records.push_back(EventRecord { at_ns, event });
    }

    /// The stored records, oldest first.
    pub fn records(&self) -> &VecDeque<EventRecord> {
        &self.records
    }

    /// Exact per-kind counts (index with [`TraceEvent::kind_index`] or
    /// zip with [`EVENT_KIND_NAMES`]).
    pub fn counts(&self) -> &[u64; EVENT_KIND_COUNT] {
        &self.counts
    }

    /// Exact count of one kind by export name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in [`EVENT_KIND_NAMES`].
    pub fn count_of(&self, name: &str) -> u64 {
        let idx = EVENT_KIND_NAMES
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown event kind {name:?}"));
        self.counts[idx]
    }

    /// Records dropped from a full ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Packet events skipped by the sampling filter.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(flow: u64, seq: u64) -> TraceEvent {
        TraceEvent::PktEnqueue {
            node: 2,
            port: 1,
            flow,
            seq,
            bytes: 1500,
            queue_bytes: 3000,
        }
    }

    #[test]
    fn kind_names_cover_every_variant() {
        let samples = [
            enq(1, 0),
            TraceEvent::PktDequeue {
                node: 0,
                port: 0,
                flow: 1,
                seq: 0,
                bytes: 64,
            },
            TraceEvent::PktDrop {
                node: 0,
                port: 0,
                flow: 1,
                seq: 0,
                bytes: 64,
            },
            TraceEvent::PktEcnMark {
                node: 0,
                port: 0,
                flow: 1,
                seq: 0,
            },
            TraceEvent::PktRoundMark {
                node: 0,
                port: 0,
                flow: 1,
                seq: 0,
                window: 1460,
            },
            TraceEvent::PktDeliver {
                node: 0,
                flow: 1,
                bytes: 10,
            },
            TraceEvent::PktAck {
                node: 0,
                flow: 1,
                ack: 10,
            },
            TraceEvent::FlowOpen {
                flow: 1,
                src: 0,
                dst: 1,
                bytes: 0,
            },
            TraceEvent::FlowEstablished { flow: 1 },
            TraceEvent::FlowWindowAcquired { flow: 1, window: 2920 },
            TraceEvent::FlowRetransmit { flow: 1 },
            TraceEvent::FlowRto { flow: 1 },
            TraceEvent::FlowFin {
                flow: 1,
                delivered: 10,
            },
            TraceEvent::FlowRttSample { flow: 1, nanos: 99 },
            TraceEvent::FaultInjected {
                kind: "link_down",
                node: 9,
                port: 2,
                value: 0,
            },
            TraceEvent::FaultCleared {
                kind: "link_down",
                node: 9,
                port: 2,
                value: 0,
            },
            TraceEvent::Rerouted {
                node: 9,
                port: 2,
                dests: 12,
            },
        ];
        assert_eq!(samples.len(), EVENT_KIND_COUNT);
        for (i, ev) in samples.iter().enumerate() {
            assert_eq!(ev.kind_index(), i);
            assert_eq!(ev.kind_name(), EVENT_KIND_NAMES[i]);
            // Fault and reroute events carry no flow; everything else
            // was built with flow 1.
            assert_eq!(ev.flow(), if i < 14 { 1 } else { 0 });
            assert_eq!(ev.is_packet(), i <= 6);
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        assert!(!log.enabled());
        log.record(5, enq(1, 0));
        assert!(log.is_empty());
        assert_eq!(log.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn full_mode_keeps_everything_in_order() {
        let mut log = EventLog::new(LogMode::Full, 1, 7);
        for i in 0..100 {
            log.record(i, enq(1, i));
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.count_of("pkt_enqueue"), 100);
        assert_eq!(log.evicted(), 0);
        let times: Vec<u64> = log.records().iter().map(|r| r.at_ns).collect();
        assert_eq!(times, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ring_wraps_keeping_newest_and_exact_counts() {
        let mut log = EventLog::new(LogMode::Ring(16), 1, 7);
        for i in 0..100u64 {
            log.record(i, enq(1, i));
        }
        assert_eq!(log.len(), 16);
        assert_eq!(log.evicted(), 84);
        // The newest 16 survive, oldest first.
        let seqs: Vec<u64> = log
            .records()
            .iter()
            .map(|r| match r.event {
                TraceEvent::PktEnqueue { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, (84..100).collect::<Vec<_>>());
        // Counts stay exact despite eviction.
        assert_eq!(log.count_of("pkt_enqueue"), 100);
    }

    #[test]
    fn zero_capacity_ring_stores_nothing_but_counts() {
        let mut log = EventLog::new(LogMode::Ring(0), 1, 7);
        for i in 0..10u64 {
            log.record(i, enq(1, i));
        }
        assert!(log.is_empty());
        assert_eq!(log.count_of("pkt_enqueue"), 10);
        assert_eq!(log.evicted(), 10);
    }

    #[test]
    fn sampling_is_deterministic_under_a_fixed_seed() {
        let run = |seed: u64| {
            let mut log = EventLog::new(LogMode::Full, 8, seed);
            for i in 0..10_000u64 {
                log.record(i, enq(1, i));
            }
            log.records()
                .iter()
                .map(|r| r.at_ns)
                .collect::<Vec<u64>>()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must keep the same events");
        let c = run(43);
        assert_ne!(a, c, "different seeds should sample differently");
        // Roughly one in eight survives.
        assert!(a.len() > 800 && a.len() < 1_800, "kept {}", a.len());
    }

    #[test]
    fn sampling_spares_flow_events_and_counts_stay_exact() {
        let mut log = EventLog::new(LogMode::Full, 1_000_000, 1);
        for i in 0..1_000u64 {
            log.record(i, enq(1, i));
            log.record(i, TraceEvent::FlowRetransmit { flow: 1 });
        }
        // Virtually every packet event is sampled away; every flow event
        // survives; both counts are exact.
        assert_eq!(log.count_of("pkt_enqueue"), 1_000);
        assert_eq!(log.count_of("flow_retransmit"), 1_000);
        let flows = log
            .records()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::FlowRetransmit { .. }))
            .count();
        assert_eq!(flows, 1_000);
        assert_eq!(log.sampled_out() + (log.len() as u64 - 1_000), 1_000);
    }
}
