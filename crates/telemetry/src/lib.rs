//! Structured telemetry for the TFC reproduction.
//!
//! Three pieces, all opt-in and near-zero-cost when disabled:
//!
//! * [`event::EventLog`] — typed packet/flow lifecycle records with a
//!   bounded ring mode and a deterministic sampling filter;
//! * [`counters::LoopStats`] and [`counters::PortSlotSample`] — sim-wide
//!   per-event-type counters (with an optional wall-clock profiling
//!   hook) and per-port TFC gauges sampled at every slot close;
//! * [`span::SpanTracker`] — causal per-packet lifecycle spans (queue
//!   wait, wire, token wait, end-to-end) aggregated per hop into
//!   streaming quantile sketches, behind a [`TraceConfig`];
//! * [`export`] — per-run artifact writers (`results/<run>/`:
//!   manifest, counters, events, flows, slot CSV, span sketches)
//!   consumed by the `tfc-trace` binary.
//!
//! The crate is a leaf below the simulator: node/flow/time fields are
//! plain integers, and the simulator, protocols, and experiments all
//! depend on it rather than the other way round. The [`json`] module
//! (shared with `tfc_bench`) lives here for the same reason.

pub mod counters;
pub mod event;
pub mod export;
pub mod json;
pub mod span;

pub use counters::{LoopStats, PortSlotSample};
pub use event::{EventLog, EventRecord, LogMode, TraceEvent, EVENT_KIND_NAMES};
pub use export::{FlowSummary, RetiredClass, RetiredFlows, RunManifest, SimMeta};
pub use span::{SpanTracker, TraceConfig};

/// What a simulation run should collect and where it should go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Event-list storage mode (off by default).
    pub events: LogMode,
    /// Keep one in `n` packet events (0/1 = keep all). Flow-lifecycle
    /// events are never sampled away.
    pub sample_one_in: u64,
    /// Collect per-port TFC slot gauges from switch policies.
    pub tfc_gauges: bool,
    /// Time event-loop handlers per event type (wall clock).
    pub profile: bool,
    /// Per-packet lifecycle spans aggregated into streaming sketches
    /// (off by default; `Off` is asserted byte-identical and
    /// zero-record by regression tests).
    pub trace: TraceConfig,
    /// Export artifacts under `results/<name>/` after the run (driven
    /// by the experiment harness, not the simulator itself).
    pub export: Option<String>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            events: LogMode::Off,
            sample_one_in: 1,
            tfc_gauges: false,
            profile: false,
            trace: TraceConfig::Off,
            export: None,
        }
    }
}

impl TelemetryConfig {
    /// Everything off (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Full tracing with artifact export: unbounded unsampled event
    /// list, TFC gauges, lifecycle spans for every flow, and the
    /// event-loop profile.
    pub fn full(run: impl Into<String>) -> Self {
        Self {
            events: LogMode::Full,
            sample_one_in: 1,
            tfc_gauges: true,
            profile: true,
            trace: TraceConfig::Full,
            export: Some(run.into()),
        }
    }
}

/// The per-run telemetry state owned by the simulator core.
#[derive(Debug)]
pub struct Telemetry {
    /// The structured event log.
    pub log: EventLog,
    /// Event-loop counters / profile.
    pub loop_stats: LoopStats,
    /// TFC per-port slot gauges, in slot-close order.
    pub slots: Vec<PortSlotSample>,
    /// Packet-lifecycle spans aggregated into streaming sketches.
    pub spans: SpanTracker,
    gauges: bool,
}

impl Telemetry {
    /// Builds the state for one run. The event log's sampling RNG is
    /// derived from `seed` so identical runs keep identical samples;
    /// `loop_names` is the simulator's event-kind name table.
    pub fn new(cfg: &TelemetryConfig, seed: u64, loop_names: &'static [&'static str]) -> Self {
        Self {
            // XOR a fixed tag so the sampling stream never aliases the
            // simulator's own RNG stream for the same seed.
            log: EventLog::new(cfg.events, cfg.sample_one_in, seed ^ 0x7e1e_6e72_7261_ce00),
            loop_stats: LoopStats::new(loop_names, cfg.profile),
            slots: Vec::new(),
            spans: SpanTracker::new(cfg.trace),
            gauges: cfg.tfc_gauges,
        }
    }

    /// Whether TFC slot gauges are being collected.
    #[inline]
    pub fn gauges_enabled(&self) -> bool {
        self.gauges
    }

    /// Stores a slot sample if gauge collection is on.
    #[inline]
    pub fn push_slot_sample(&mut self, s: PortSlotSample) {
        if self.gauges {
            self.slots.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: [&str; 2] = ["a", "b"];

    fn sample() -> PortSlotSample {
        PortSlotSample {
            at_ns: 1,
            node: 0,
            port: 0,
            token_bytes: 0.0,
            effective_flows: 1.0,
            rho: 0.5,
            window_bytes: 1460,
            rtt_b_ns: 0,
            rtt_m_ns: 0,
            held_acks: 0,
            delayed_total: 0,
        }
    }

    #[test]
    fn default_config_is_all_off() {
        let t = Telemetry::new(&TelemetryConfig::default(), 1, &NAMES);
        assert!(!t.log.enabled());
        assert!(!t.gauges_enabled());
        assert!(!t.loop_stats.profiled());
        assert!(!t.spans.enabled());
    }

    #[test]
    fn full_config_enables_everything() {
        let cfg = TelemetryConfig::full("run1");
        assert_eq!(cfg.export.as_deref(), Some("run1"));
        let mut t = Telemetry::new(&cfg, 1, &NAMES);
        assert!(t.log.enabled());
        assert!(t.loop_stats.profiled());
        assert!(t.spans.enabled());
        t.push_slot_sample(sample());
        assert_eq!(t.slots.len(), 1);
    }

    #[test]
    fn gauges_off_drops_slot_samples() {
        let mut t = Telemetry::new(&TelemetryConfig::default(), 1, &NAMES);
        t.push_slot_sample(sample());
        assert!(t.slots.is_empty());
    }
}
