//! A minimal JSON value type, writer, parser, and `json!` macro.
//!
//! The figure dumps used to go through `serde_json`; that was the only
//! registry dependency in the workspace's default build graph, so it is
//! replaced by this hand-rolled equivalent. It supports exactly what
//! the dumps and telemetry artifacts need — objects, arrays, numbers,
//! strings, bools, null — with deterministic (sorted-key) pretty output
//! and a strict recursive-descent [`parse`] so exporters' artifacts can
//! be read back by `tfc-trace`.
//!
//! This module lives in `tfc-telemetry` (the lowest crate that writes
//! artifacts) and is re-exported as `tfc_bench::json` for the figure
//! harness.
//!
//! # Examples
//!
//! ```
//! use tfc_telemetry::json;
//!
//! let v = json!({"flows": [1, 2], "goodput_bps": 9.4e8, "note": "ok"});
//! assert!(v.pretty().contains("\"flows\""));
//! let back = json::parse(&v.pretty()).unwrap();
//! assert_eq!(back.get("note").unwrap().as_str(), Some("ok"));
//! assert_eq!(back.get("goodput_bps").unwrap().as_f64(), Some(9.4e8));
//! ```
//!
//! Note the writer prints integral floats without a decimal point, so
//! `parse` may return [`Value::Int`] where the writer saw a float; the
//! numeric accessors ([`Value::as_i64`], [`Value::as_f64`]) accept both.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Object storage. `BTreeMap` keeps dump output key-sorted and thus
/// byte-stable across runs.
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Floating number (non-finite values print as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Mutable array access, `None` for non-arrays.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Array items, `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String content, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer content (`Int`, or a `Float` with integral value).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric content as `f64` (`Int` or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Object-member lookup, `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (newline-terminated).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where `parse` failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (the inverse of [`Value::pretty`]).
///
/// Strict: exactly one value, trailing whitespace only. Numbers without
/// `.`, `e`, or `E` that fit an `i64` become [`Value::Int`]; everything
/// else numeric becomes [`Value::Float`].
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free ASCII/UTF-8 run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs are never produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        // Called just past the 'u'; consumes exactly four hex digits.
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        // Counters in this workspace are far below 2^63; fall back to
        // the float form rather than wrapping if one ever is not.
        i64::try_from(v).map_or(Value::Float(v as f64), Value::Int)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Self {
        Value::Array(vec![a.into(), b.into()])
    }
}

impl<T: Into<Value> + Copy> From<&T> for Value {
    fn from(v: &T) -> Self {
        (*v).into()
    }
}

/// Builds a [`Value`] from JSON-shaped syntax, mirroring the subset of
/// `serde_json::json!` the figure dumps use: object literals (keys are
/// string literals), array literals, and arbitrary expressions whose
/// types implement `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ([]) => { $crate::json::Value::Array(::std::vec::Vec::new()) };
    ([ $($elem:expr),+ $(,)? ]) => {
        $crate::json::Value::Array(::std::vec![ $($crate::json!($elem)),+ ])
    };
    ({}) => { $crate::json::Value::Object($crate::json::Map::new()) };
    ({ $($body:tt)+ }) => {{
        let mut map = $crate::json::Map::new();
        $crate::json_entries!(map, $($body)+);
        $crate::json::Value::Object(map)
    }};
    ($other:expr) => { $crate::json::Value::from($other) };
}

/// Internal muncher for `json!` object bodies. Nested `{...}` and
/// `[...]` values must be matched as token trees before the general
/// expression arm: a JSON object literal is not a valid Rust block
/// expression, and a mixed-type array literal is not a valid Rust
/// array expression.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident, $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : { $($inner:tt)* }) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ]) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
    };
    ($map:ident, $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::json!($value));
    };
    ($map:ident,) => {};
    ($map:ident) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(json!(null).pretty(), "null");
        assert_eq!(json!(3).pretty(), "3");
        assert_eq!(json!(2.5).pretty(), "2.5");
        assert_eq!(json!(true).pretty(), "true");
        assert_eq!(json!("hi").pretty(), "\"hi\"");
        assert_eq!(json!(f64::NAN).pretty(), "null");
    }

    #[test]
    fn object_and_array_shapes() {
        let v = json!({
            "pair": [1, 2.5],
            "nested": {"inner": "x"},
            "none": Option::<u64>::None,
            "some": Some(7u64),
        });
        let s = v.pretty();
        assert!(s.contains("\"pair\": [\n    1,\n    2.5\n  ]"));
        assert!(s.contains("\"inner\": \"x\""));
        assert!(s.contains("\"none\": null"));
        assert!(s.contains("\"some\": 7"));
    }

    #[test]
    fn from_tuple_vec_and_refs() {
        let pts: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.0)];
        let v: Value = pts.iter().collect::<Vec<_>>().into();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Array(vec![Value::Int(1), Value::Float(0.5)]),
                Value::Array(vec![Value::Int(2), Value::Float(1.0)]),
            ])
        );
    }

    #[test]
    fn keys_are_sorted_and_escaped() {
        let mut m = Map::new();
        m.insert("b\"x".into(), json!(1));
        m.insert("a".into(), json!(2));
        let s = Value::Object(m).pretty();
        let a = s.find("\"a\"").unwrap();
        let b = s.find("\"b\\\"x\"").unwrap();
        assert!(a < b);
    }

    #[test]
    fn as_array_mut_pushes() {
        let mut v = json!([]);
        v.as_array_mut().unwrap().push(json!(1));
        assert_eq!(v, Value::Array(vec![Value::Int(1)]));
        assert_eq!(json!(3).as_array_mut(), None);
    }

    #[test]
    fn big_u64_degrades_to_float() {
        let v: Value = u64::MAX.into();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parse_roundtrips_pretty_output() {
        let pts: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let v = json!({
            "counts": {"drop": 3, "enqueue": 1000},
            "name": "incast \"smoke\"\n",
            "pts": pts,
            "ratio": 0.97,
            "none": Option::<u64>::None,
            "big": u64::MAX,
        });
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = json!({"a": [1, "x"], "f": 2.0});
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_str(), Some("x"));
        assert_eq!(v.get("f").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.as_i64(), None);
    }
}
