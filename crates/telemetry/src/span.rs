//! Causal packet-lifecycle spans.
//!
//! Every tracked packet's life is split into segments — host NIC queue
//! wait, per-hop switch queue wait, per-hop wire time, TFC token/window
//! acquire wait, and end-to-end latency — and each completed segment is
//! recorded straight into a per-`(stage, hop)` streaming
//! [`QuantileSketch`]. Nothing per-packet is retained after delivery or
//! drop, so resident memory is O(in-flight packets of sampled flows)
//! plus a fixed set of sketches, no matter how many flows a run pushes.
//!
//! The tracker is keyed by the simulator's arena `PacketId` (packed to
//! `u64` by the caller) and driven from the existing
//! enqueue/dequeue/drop/ECN/deliver seams; it never iterates its hash
//! map, so hash order cannot leak into artifacts. Under
//! [`TraceConfig::Off`] every hook is a single branch and records
//! nothing — enforced by the [`thread_span_records`] counter mirroring
//! the packet-clone regression counter.

use std::cell::Cell;
use std::collections::HashMap;

use metrics::sketch::{QuantileSketch, DEFAULT_ALPHA};

use crate::json::{Map, Value};

/// Which flows get lifecycle spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceConfig {
    /// No spans; hooks cost one branch and artifacts are byte-identical
    /// to a build without the subsystem.
    Off,
    /// Trace a deterministic pseudo-random subset of flows: flow `f` is
    /// tracked iff `splitmix64(f ^ seed) % 1000 < permille`. The choice
    /// depends only on `(flow, seed)`, never on RNG state, so the same
    /// flows are sampled across scheduler backends and reruns.
    SampledFlows {
        /// Tracked flows per thousand (0 = none, ≥1000 = all).
        permille: u16,
        /// Sampling-hash seed.
        seed: u64,
    },
    /// Trace every flow.
    Full,
}

impl TraceConfig {
    /// Stable human/manifest form (`off`, `sampled(64/1000,seed=9)`,
    /// `full`).
    pub fn describe(&self) -> String {
        match self {
            TraceConfig::Off => "off".into(),
            TraceConfig::SampledFlows { permille, seed } => {
                format!("sampled({permille}/1000,seed={seed})")
            }
            TraceConfig::Full => "full".into(),
        }
    }
}

/// Lifecycle segment kinds. `hop` disambiguates within a stage: hop 0
/// is the sending host's NIC, hop `h ≥ 1` is the `h`-th switch on the
/// path (wire `h` is the link *into* hop `h`; the final wire into the
/// receiving host gets `last hop + 1`).
pub const STAGE_NAMES: [&str; 6] = [
    "host_q",     // sender NIC queue wait (enqueue → dequeue, hop 0)
    "sw_q",       // switch queue wait per hop (enqueue → dequeue)
    "wire",       // propagation + serialization per hop
    "token_wait", // TFC delay-arbiter hold (token/window acquire wait)
    "e2e_data",   // data-packet end-to-end (emit → deliver)
    "e2e_ctrl",   // control-packet end-to-end (ACK/SYN/FIN/RM)
];

/// Index of `host_q` in [`STAGE_NAMES`].
pub const STAGE_HOST_Q: u8 = 0;
/// Index of `sw_q`.
pub const STAGE_SW_Q: u8 = 1;
/// Index of `wire`.
pub const STAGE_WIRE: u8 = 2;
/// Index of `token_wait`.
pub const STAGE_TOKEN_WAIT: u8 = 3;
/// Index of `e2e_data`.
pub const STAGE_E2E_DATA: u8 = 4;
/// Index of `e2e_ctrl`.
pub const STAGE_E2E_CTRL: u8 = 5;

thread_local! {
    static SPAN_RECORDS: Cell<u64> = const { Cell::new(0) };
}

/// Total span segments recorded on this thread (ever). The
/// zero-overhead regression test asserts this stays flat across a run
/// with [`TraceConfig::Off`], mirroring `packet::thread_packet_clones`.
pub fn thread_span_records() -> u64 {
    SPAN_RECORDS.with(|c| c.get())
}

#[inline]
fn bump_records() {
    SPAN_RECORDS.with(|c| c.set(c.get() + 1));
}

/// splitmix64 finalizer — the sampling hash.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hasher for the in-flight map: one splitmix64 round over the already
/// run-unique packet key. The map is probed on every enqueue/dequeue
/// seam — for *untracked* packets too, since only the key survives past
/// span start — so the default SipHash would dominate the traced-run
/// profile (measured >1.5x on the leaf-spine scale bench).
#[derive(Default)]
struct KeyHash(u64);

impl std::hash::Hasher for KeyHash {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Keys are hashed via `write_u64`; keep a correct fallback.
        for &b in bytes {
            self.0 = mix64(self.0 ^ u64::from(b));
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = mix64(v);
    }
}

type ActiveMap = HashMap<u64, PacketSpan, std::hash::BuildHasherDefault<KeyHash>>;

/// In-flight per-packet state (dropped at deliver/drop/free). The flow
/// id is not retained: sampling is a stateless hash of the flow id, so
/// every seam re-derives the verdict from the id the caller holds —
/// untracked packets then never touch this map at all.
#[derive(Debug, Clone, Copy)]
struct PacketSpan {
    data: bool,
    /// Current hop: 0 at the sender NIC, +1 per switch entered.
    hop: u8,
    /// When the packet entered the current queue (ns).
    q_start: u64,
    /// When the packet was dequeued onto the wire (ns); meaningful only
    /// while in flight between nodes.
    wire_start: u64,
}

/// Aggregates packet lifecycle segments into per-`(stage, hop)`
/// sketches. Owned by [`crate::Telemetry`]; see the module docs for the
/// seam-to-stage mapping.
#[derive(Debug)]
pub struct SpanTracker {
    cfg: TraceConfig,
    active: ActiveMap,
    /// Stage-major dense store: `sketches[stage][hop]`. The stage axis
    /// is fixed ([`STAGE_NAMES`]); the hop axis grows to the deepest
    /// hop seen. Plain indexing keeps the per-segment record path free
    /// of tree walks — this is probed for every segment of every
    /// tracked packet.
    sketches: [Vec<Option<QuantileSketch>>; STAGE_NAMES.len()],
    drops: std::collections::BTreeMap<u8, u64>,
    ecn: std::collections::BTreeMap<u8, u64>,
    tracked_packets: u64,
    dropped_packets: u64,
}

impl SpanTracker {
    /// Builds a tracker for one run.
    pub fn new(cfg: TraceConfig) -> Self {
        Self {
            cfg,
            active: ActiveMap::default(),
            sketches: std::array::from_fn(|_| Vec::new()),
            drops: std::collections::BTreeMap::new(),
            ecn: std::collections::BTreeMap::new(),
            tracked_packets: 0,
            dropped_packets: 0,
        }
    }

    /// Whether any tracing is configured. All hooks bail on this first,
    /// so `Off` costs one predictable branch per seam.
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self.cfg, TraceConfig::Off)
    }

    /// The active configuration.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Whether `flow`'s packets are sampled under the current config.
    #[inline]
    pub fn tracked_flow(&self, flow: u64) -> bool {
        match self.cfg {
            TraceConfig::Off => false,
            TraceConfig::Full => true,
            TraceConfig::SampledFlows { permille, seed } => {
                u16::try_from(mix64(flow ^ seed) % 1000).expect("mod 1000 fits") < permille
            }
        }
    }

    #[inline]
    fn record(&mut self, stage: u8, hop: u8, nanos: u64) {
        let row = &mut self.sketches[stage as usize];
        let hop = hop as usize;
        if hop >= row.len() {
            row.resize_with(hop + 1, || None);
        }
        row[hop]
            .get_or_insert_with(|| QuantileSketch::new(DEFAULT_ALPHA))
            .record(nanos as f64);
        bump_records();
    }

    /// Packet entered a queue: the sender's NIC (`is_host`) or a switch
    /// port. First sight of a key starts its span; a revisit closes the
    /// preceding wire segment and advances the hop.
    #[inline]
    pub fn on_enqueue(&mut self, key: u64, flow: u64, data: bool, is_host: bool, now: u64) {
        if !self.enabled() || !self.tracked_flow(flow) {
            return;
        }
        match self.active.get_mut(&key) {
            Some(span) => {
                span.hop = span.hop.saturating_add(1);
                let (hop, wire_start) = (span.hop, span.wire_start);
                span.q_start = now;
                self.record(STAGE_WIRE, hop, now.saturating_sub(wire_start));
            }
            None => {
                self.active.insert(
                    key,
                    PacketSpan {
                        data,
                        // Policy-injected packets (e.g. arbiter-released
                        // ACKs) first appear at a switch: that's hop 1.
                        hop: if is_host { 0 } else { 1 },
                        q_start: now,
                        wire_start: now,
                    },
                );
                self.tracked_packets += 1;
                bump_records();
            }
        }
    }

    /// Packet left its queue onto the wire: closes the queue-wait
    /// segment for the current hop.
    #[inline]
    pub fn on_dequeue(&mut self, key: u64, flow: u64, now: u64) {
        if !self.enabled() || !self.tracked_flow(flow) {
            return;
        }
        let Some(span) = self.active.get_mut(&key) else {
            return;
        };
        let (stage, hop) = if span.hop == 0 {
            (STAGE_HOST_Q, 0)
        } else {
            (STAGE_SW_Q, span.hop)
        };
        let wait = now.saturating_sub(span.q_start);
        span.wire_start = now;
        self.record(stage, hop, wait);
    }

    /// Packet delivered to the receiving host. Closes the final wire
    /// segment and the end-to-end span (`sent_ns` is the emit stamp the
    /// packet carries), then forgets the key.
    #[inline]
    pub fn on_deliver(&mut self, key: u64, flow: u64, sent_ns: u64, now: u64) {
        if !self.enabled() || !self.tracked_flow(flow) {
            return;
        }
        let Some(span) = self.active.remove(&key) else {
            return;
        };
        self.record(STAGE_WIRE, span.hop.saturating_add(1), now.saturating_sub(span.wire_start));
        let e2e = if span.data { STAGE_E2E_DATA } else { STAGE_E2E_CTRL };
        self.record(e2e, 0, now.saturating_sub(sent_ns));
    }

    /// Packet dropped (queue overflow, fault, down link, stalled host):
    /// counts the drop against the hop it died at and forgets the key.
    #[inline]
    pub fn on_drop(&mut self, key: u64, flow: u64) {
        if !self.enabled() || !self.tracked_flow(flow) {
            return;
        }
        if let Some(span) = self.active.remove(&key) {
            *self.drops.entry(span.hop).or_insert(0) += 1;
            self.dropped_packets += 1;
            bump_records();
        }
    }

    /// Packet consumed on purpose (e.g. a TFC-held ACK absorbed by the
    /// delay arbiter): forgets the key without counting a drop.
    #[inline]
    pub fn on_consumed(&mut self, key: u64, flow: u64) {
        if !self.enabled() || !self.tracked_flow(flow) {
            return;
        }
        self.active.remove(&key);
    }

    /// ECN CE mark applied at the packet's current hop.
    #[inline]
    pub fn on_ecn(&mut self, key: u64, flow: u64) {
        if !self.enabled() || !self.tracked_flow(flow) {
            return;
        }
        if let Some(span) = self.active.get(&key) {
            let hop = span.hop;
            *self.ecn.entry(hop).or_insert(0) += 1;
            bump_records();
        }
    }

    /// TFC token/window acquire wait reported by the delay arbiter for
    /// `flow` (keyed by flow, not packet: the held packet is a policy
    /// copy, not an arena resident).
    #[inline]
    pub fn on_token_wait(&mut self, flow: u64, waited_ns: u64) {
        if !self.enabled() || !self.tracked_flow(flow) {
            return;
        }
        self.record(STAGE_TOKEN_WAIT, 0, waited_ns);
    }

    /// Packets whose spans were started.
    pub fn tracked_packets(&self) -> u64 {
        self.tracked_packets
    }

    /// In-flight spans currently held (memory diagnostics; 0 after a
    /// drained run).
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Read access to a stage sketch, if any segment was recorded.
    pub fn sketch(&self, stage: u8, hop: u8) -> Option<&QuantileSketch> {
        self.sketches
            .get(stage as usize)?
            .get(hop as usize)?
            .as_ref()
    }

    /// Live `(stage, hop, sketch)` triples in canonical (stage-major,
    /// then hop) order.
    fn sketch_iter(&self) -> impl Iterator<Item = (u8, u8, &QuantileSketch)> {
        self.sketches.iter().enumerate().flat_map(|(stage, row)| {
            row.iter().enumerate().filter_map(move |(hop, s)| {
                s.as_ref().map(|s| (stage as u8, hop as u8, s))
            })
        })
    }

    /// The `spans.json` document: schema, config echo, per-hop drops and
    /// ECN marks, and one row per `(stage, hop)` sketch in canonical
    /// order. Deterministic for a deterministic run.
    pub fn to_json(&self) -> Value {
        let stages: Vec<Value> = self
            .sketch_iter()
            .map(|(stage, hop, s)| sketch_row(stage, hop, s))
            .collect();
        let drops: Vec<Value> = self
            .drops
            .iter()
            .map(|(&hop, &count)| crate::json!({"hop": hop, "count": count}))
            .collect();
        let ecn: Vec<Value> = self
            .ecn
            .iter()
            .map(|(&hop, &marks)| crate::json!({"hop": hop, "marks": marks}))
            .collect();
        crate::json!({
            "schema": "tfc-spans/v1",
            "trace": self.cfg.describe().as_str(),
            "alpha": DEFAULT_ALPHA,
            "tracked_packets": self.tracked_packets,
            "dropped_packets": self.dropped_packets,
            "incomplete": self.active.len() as u64,
            "stages": Value::Array(stages),
            "drops": Value::Array(drops),
            "ecn": Value::Array(ecn),
        })
    }
}

fn sketch_row(stage: u8, hop: u8, s: &QuantileSketch) -> Value {
    let q = |p: f64| Value::from(s.quantile(p).unwrap_or(0.0));
    let buckets: Vec<Value> = s
        .bucket_entries()
        .into_iter()
        .map(|(k, c)| Value::Array(vec![Value::from(i64::from(k)), Value::from(c)]))
        .collect();
    let mut m = Map::new();
    m.insert("stage".into(), STAGE_NAMES[stage as usize].into());
    m.insert("hop".into(), u64::from(hop).into());
    m.insert("count".into(), s.count().into());
    m.insert("zero".into(), s.zero_count().into());
    m.insert("sum_ns".into(), s.sum().into());
    m.insert("min_ns".into(), s.min().unwrap_or(0.0).into());
    m.insert("max_ns".into(), s.max().unwrap_or(0.0).into());
    m.insert("p50".into(), q(0.50));
    m.insert("p90".into(), q(0.90));
    m.insert("p99".into(), q(0.99));
    m.insert("p999".into(), q(0.999));
    m.insert("buckets".into(), Value::Array(buckets));
    Value::Object(m)
}

/// Rebuilds a sketch from a `spans.json` stage row (inverse of the
/// exporter; used by `tfc-trace diff` to compare quantiles).
pub fn sketch_from_json(row: &Value) -> Result<QuantileSketch, String> {
    let num = |k: &str| -> Result<f64, String> {
        row.get(k)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("stage row missing numeric '{k}'"))
    };
    let zero = num("zero")? as u64;
    let entries: Vec<(i32, u64)> = row
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or("stage row missing 'buckets'")?
        .iter()
        .map(|pair| {
            let p = pair.as_array().filter(|p| p.len() == 2).ok_or("bad bucket pair")?;
            let k = p[0].as_i64().ok_or("bad bucket key")? as i32;
            let c = p[1].as_i64().ok_or("bad bucket count")? as u64;
            Ok::<(i32, u64), String>((k, c))
        })
        .collect::<Result<_, _>>()?;
    Ok(QuantileSketch::from_parts(
        DEFAULT_ALPHA,
        zero,
        &entries,
        num("sum_ns")?,
        num("min_ns")?,
        num("max_ns")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing_and_counts_nothing() {
        let before = thread_span_records();
        let mut t = SpanTracker::new(TraceConfig::Off);
        assert!(!t.enabled());
        t.on_enqueue(1, 7, true, true, 100);
        t.on_dequeue(1, 7, 200);
        t.on_ecn(1, 7);
        t.on_deliver(1, 7, 100, 900);
        t.on_drop(1, 7);
        t.on_token_wait(7, 55);
        assert_eq!(thread_span_records(), before);
        assert_eq!(t.tracked_packets(), 0);
        assert_eq!(t.active_len(), 0);
        assert!(t.to_json().get("stages").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn full_tracks_a_two_hop_lifecycle() {
        let mut t = SpanTracker::new(TraceConfig::Full);
        // Host enqueue at 100, dequeue 150 (host_q 50), switch enqueue
        // 250 (wire 100 into hop 1), dequeue 300 (sw_q 50), deliver 420
        // (wire 120 into hop 2), e2e from emit stamp 90.
        t.on_enqueue(1, 7, true, true, 100);
        t.on_dequeue(1, 7, 150);
        t.on_enqueue(1, 7, true, false, 250);
        t.on_ecn(1, 7);
        t.on_dequeue(1, 7, 300);
        t.on_deliver(1, 7, 90, 420);
        assert_eq!(t.active_len(), 0);
        assert_eq!(t.tracked_packets(), 1);
        let near = |s: &QuantileSketch, v: f64| {
            let m = s.quantile(0.5).unwrap();
            assert!((m - v).abs() <= v * 0.011, "got {m}, want ~{v}");
        };
        near(t.sketch(STAGE_HOST_Q, 0).unwrap(), 50.0);
        near(t.sketch(STAGE_WIRE, 1).unwrap(), 100.0);
        near(t.sketch(STAGE_SW_Q, 1).unwrap(), 50.0);
        near(t.sketch(STAGE_WIRE, 2).unwrap(), 120.0);
        near(t.sketch(STAGE_E2E_DATA, 0).unwrap(), 330.0);
        assert!(t.sketch(STAGE_E2E_CTRL, 0).is_none());
        let j = t.to_json();
        assert_eq!(j.get("tracked_packets").unwrap().as_i64(), Some(1));
        let ecn = j.get("ecn").unwrap().as_array().unwrap();
        assert_eq!(ecn[0].get("hop").unwrap().as_i64(), Some(1));
        assert_eq!(ecn[0].get("marks").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn drops_count_against_the_current_hop() {
        let mut t = SpanTracker::new(TraceConfig::Full);
        t.on_enqueue(9, 1, true, true, 0);
        t.on_dequeue(9, 1, 10);
        t.on_enqueue(9, 1, true, false, 20);
        t.on_drop(9, 1);
        t.on_drop(9, 1); // double-drop is a no-op
        assert_eq!(t.active_len(), 0);
        let j = t.to_json();
        let drops = j.get("drops").unwrap().as_array().unwrap();
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].get("hop").unwrap().as_i64(), Some(1));
        assert_eq!(drops[0].get("count").unwrap().as_i64(), Some(1));
        assert_eq!(j.get("dropped_packets").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn sampled_flows_is_deterministic_and_proportional() {
        let cfg = TraceConfig::SampledFlows { permille: 250, seed: 42 };
        let t = SpanTracker::new(cfg);
        let t2 = SpanTracker::new(cfg);
        let picked: Vec<u64> = (0..4_000).filter(|&f| t.tracked_flow(f)).collect();
        let picked2: Vec<u64> = (0..4_000).filter(|&f| t2.tracked_flow(f)).collect();
        assert_eq!(picked, picked2, "sampling must be stateless");
        let frac = picked.len() as f64 / 4_000.0;
        assert!((0.20..0.30).contains(&frac), "got fraction {frac}");
        // A different seed picks a different subset.
        let t3 = SpanTracker::new(TraceConfig::SampledFlows { permille: 250, seed: 43 });
        let picked3: Vec<u64> = (0..4_000).filter(|&f| t3.tracked_flow(f)).collect();
        assert_ne!(picked, picked3);
        // Untracked flows never allocate span state.
        let mut t4 = SpanTracker::new(cfg);
        let untracked: Vec<u64> = (0..4_000).filter(|&f| !t4.tracked_flow(f)).take(10).collect();
        for f in untracked {
            t4.on_enqueue(f, f, true, true, 0);
        }
        assert_eq!(t4.active_len(), 0);
    }

    #[test]
    fn consumed_packets_are_forgotten_without_a_drop() {
        let mut t = SpanTracker::new(TraceConfig::Full);
        t.on_enqueue(5, 2, false, true, 0);
        t.on_consumed(5, 2);
        assert_eq!(t.active_len(), 0);
        assert!(t.to_json().get("drops").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn stage_rows_roundtrip_through_json() {
        let mut t = SpanTracker::new(TraceConfig::Full);
        for i in 0..500u64 {
            t.on_enqueue(i, 3, true, true, 0);
            t.on_dequeue(i, 3, 100 + i * 17);
            t.on_deliver(i, 3, 0, 200 + i * 29);
        }
        let j = t.to_json();
        for row in j.get("stages").unwrap().as_array().unwrap() {
            let s = sketch_from_json(row).unwrap();
            let stage = row.get("stage").unwrap().as_str().unwrap();
            let hop = row.get("hop").unwrap().as_i64().unwrap();
            let idx = STAGE_NAMES.iter().position(|n| *n == stage).unwrap() as u8;
            let orig = t.sketch(idx, hop as u8).unwrap();
            assert_eq!(s.count(), orig.count(), "{stage}@{hop}");
            for q in [0.5, 0.99, 0.999] {
                assert_eq!(s.quantile(q), orig.quantile(q), "{stage}@{hop} q{q}");
            }
        }
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TraceConfig::Off.describe(), "off");
        assert_eq!(TraceConfig::Full.describe(), "full");
        assert_eq!(
            TraceConfig::SampledFlows { permille: 64, seed: 9 }.describe(),
            "sampled(64/1000,seed=9)"
        );
    }
}
